//! The multi-tenant campaign service: one long-lived process hosting many
//! concurrent fuzzing campaigns.
//!
//! A fuzzing cluster does not run one campaign per process invocation — it
//! runs a *server* that accepts campaign submissions, multiplexes them
//! over a bounded worker pool, survives restarts, and answers status
//! queries. This module is that layer, built entirely on top of the
//! single-campaign machinery: a [`Service`] owns a set of *tenants* (one
//! admitted [`CampaignSpec`] each) and a pool of scheduler threads that
//! drive each tenant's [`EpochSession`](crate::shard) one *grant* at a
//! time.
//!
//! # Scheduling model
//!
//! The shard epoch barrier is the preemption point. Between two
//! [`step_epoch`](crate::shard::EpochSession::step_epoch) calls a campaign
//! is fully merged and (since the service always checkpoints) durable on
//! disk, so parking it there costs nothing and changes nothing. The
//! scheduler exploits exactly that: a *grant* is
//! [`ServiceConfig::epoch_grant`] epochs, and each free worker hands the
//! next grant to the runnable tenant with the **fewest simulated cycles
//! consumed so far** (ties to the earliest-admitted tenant). That is
//! fair-share over *simulated* time — the resource campaigns actually
//! compete for — and it is deterministic: [`fair_pick`] is a pure
//! function of the tenants' cycle counters.
//!
//! Because every campaign is an independent deterministic state machine,
//! the interleaving chosen by the scheduler (and the OS threads beneath
//! it) can never change any campaign's result — only *when* it finishes.
//!
//! # Durability and churn
//!
//! Admission persists the spec (`spec.bin`, wire-encoded) in the tenant's
//! directory before the campaign first runs; every grant leaves behind the
//! usual shard snapshots and journals. Killing the whole service process
//! at an arbitrary point therefore loses nothing:
//! [`Service::restore`] re-reads every `spec.bin`, re-admits every
//! tenant, and resumes each campaign from its newest valid snapshot plus
//! journal tail — to the bit-identical [`CampaignResult`] the unkilled
//! service would have produced (compare with
//! [`CampaignResult::sans_resume`]). The decoded-image sidecar written
//! next to each tenant's snapshots makes that restore cheap: the first
//! resumed tenant revives the image from the sidecar and every later
//! tenant over the same target hits the process-wide cache, so a
//! thousand-campaign restore decodes the module at most once (see
//! [`vmos::decode_counters`]).
//!
//! # Health
//!
//! Each grant appends a progress sample to the tenant's history;
//! [`CampaignHandle::health`] folds that history into a [`HealthReport`]
//! — coverage-growth stall, queue staleness, and mutation yield, the
//! observables Görz et al. recommend watching instead of raw exec/s.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use closurex::executor::ExecutorFactory;

use crate::campaign::CampaignConfig;
use crate::checkpoint::{CheckpointConfig, FsyncPolicy, ResumeReport};
use crate::shard::{
    EpochSession, EpochStatus, SessionProgress, SessionStart, ShardPlan, DEFAULT_LANES,
    DEFAULT_SYNC_EPOCHS,
};
use crate::stats::CampaignResult;
use crate::supervise::SupervisorConfig;

/// `spec.bin` wire-format version; bump on any layout change.
const SPEC_VERSION: u32 = 1;
/// `spec.bin` magic.
const SPEC_MAGIC: &[u8; 4] = b"CXSP";
/// The spec file's name inside a tenant directory.
const SPEC_FILE: &str = "spec.bin";

/// Resolves the opaque [`CampaignSpec::factory_spec`] bytes into an
/// executor factory. The service itself is target-agnostic — what a spec
/// *means* is the embedding application's business (the bench harness
/// resolves `(mechanism, target name)` pairs; a test resolves whatever it
/// compiled). Must be deterministic: restore re-resolves every spec and
/// expects factories over the bit-identical module.
pub trait SpecResolver: Send + Sync {
    /// Build the factory `factory_spec` describes.
    ///
    /// # Errors
    /// A human-readable message when the bytes are malformed or name an
    /// unknown target; surfaced as [`AdmissionError::Resolver`].
    fn resolve(
        &self,
        factory_spec: &[u8],
    ) -> Result<Box<dyn ExecutorFactory + Send + Sync>, String>;
}

/// Everything the service needs to run one campaign — the one
/// serializable campaign description, shared by live submission
/// ([`Service::submit`]) and churn recovery ([`Service::restore`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Tenant name: names the on-disk directory, must be unique within a
    /// service and match `[A-Za-z0-9._-]+`.
    pub name: String,
    /// Opaque factory recipe, interpreted by the service's
    /// [`SpecResolver`].
    pub factory_spec: Vec<u8>,
    /// Seed corpus.
    pub seeds: Vec<Vec<u8>>,
    /// Campaign parameters (budget, RNG seed, stage shape, …).
    pub cfg: CampaignConfig,
    /// Logical lanes (the determinism unit; default [`DEFAULT_LANES`]).
    pub lanes: usize,
    /// Worker threads *within* this campaign's epochs (the throughput
    /// knob; clamped to `[1, lanes]`).
    pub shards: usize,
    /// Merge barriers across the budget (default
    /// [`DEFAULT_SYNC_EPOCHS`]); also the preemption granularity.
    pub sync_epochs: u64,
    /// Run the decode-time FIR optimizer (default `true`; see
    /// [`crate::Campaign::decode_opt`]).
    pub decode_opt: bool,
    /// Snapshot generations to retain in the tenant directory.
    pub keep_snapshots: usize,
}

impl CampaignSpec {
    /// A spec with the standard sharding shape and retention defaults.
    pub fn new(
        name: impl Into<String>,
        factory_spec: Vec<u8>,
        seeds: Vec<Vec<u8>>,
        cfg: CampaignConfig,
    ) -> Self {
        CampaignSpec {
            name: name.into(),
            factory_spec,
            seeds,
            cfg,
            lanes: DEFAULT_LANES,
            shards: 1,
            sync_epochs: DEFAULT_SYNC_EPOCHS,
            decode_opt: true,
            keep_snapshots: 2,
        }
    }

    /// Wire-encode (the `spec.bin` format).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = vmos::Writer::new();
        w.put_bytes(SPEC_MAGIC);
        w.put_u32(SPEC_VERSION);
        w.put_str(&self.name);
        w.put_bytes(&self.factory_spec);
        w.put_usize(self.seeds.len());
        for s in &self.seeds {
            w.put_bytes(s);
        }
        self.cfg.encode(&mut w);
        w.put_usize(self.lanes);
        w.put_usize(self.shards);
        w.put_u64(self.sync_epochs);
        w.put_bool(self.decode_opt);
        w.put_usize(self.keep_snapshots);
        w.into_bytes()
    }

    /// Decode a [`CampaignSpec::encode`] image.
    ///
    /// # Errors
    /// [`vmos::WireError`] on truncation, bad magic/version, or trailing
    /// bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, vmos::WireError> {
        let mut r = vmos::Reader::new(bytes);
        if r.get_bytes()? != SPEC_MAGIC {
            return Err(vmos::WireError::Malformed("bad campaign spec magic"));
        }
        if r.get_u32()? != SPEC_VERSION {
            return Err(vmos::WireError::Malformed("campaign spec version"));
        }
        let name = r.get_str()?;
        let factory_spec = r.get_bytes()?.to_vec();
        let n = r.get_len()?;
        let mut seeds = Vec::with_capacity(n);
        for _ in 0..n {
            seeds.push(r.get_bytes()?.to_vec());
        }
        let cfg = CampaignConfig::decode(&mut r)?;
        let lanes = r.get_count()?;
        let shards = r.get_count()?;
        let sync_epochs = r.get_u64()?;
        let decode_opt = r.get_bool()?;
        let keep_snapshots = r.get_count()?;
        if !r.is_empty() {
            return Err(vmos::WireError::Malformed("trailing campaign spec bytes"));
        }
        Ok(CampaignSpec {
            name,
            factory_spec,
            seeds,
            cfg,
            lanes,
            shards,
            sync_epochs,
            decode_opt,
            keep_snapshots,
        })
    }

    fn plan(&self) -> ShardPlan {
        let lanes = self.lanes.max(1);
        ShardPlan {
            lanes,
            workers: self.shards.clamp(1, lanes),
            sync_epochs: self.sync_epochs.max(1),
        }
    }
}

/// Why [`Service::submit`] refused a campaign.
#[derive(Debug)]
pub enum AdmissionError {
    /// The service already hosts [`ServiceConfig::max_campaigns`] live
    /// campaigns — back off and resubmit later.
    Full {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// A tenant with this name already exists (names are directory names:
    /// unique for the service's lifetime, finished or not).
    Duplicate(String),
    /// The spec is structurally unusable (bad name, no seeds, …).
    InvalidSpec(&'static str),
    /// The service's [`SpecResolver`] could not build a factory.
    Resolver(String),
    /// Persisting `spec.bin` failed — the campaign was *not* admitted
    /// (admission is durable or it did not happen).
    Io(std::io::Error),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Full { capacity } => {
                write!(f, "service is at capacity ({capacity} campaigns)")
            }
            AdmissionError::Duplicate(name) => {
                write!(f, "a campaign named {name:?} already exists")
            }
            AdmissionError::InvalidSpec(msg) => write!(f, "invalid campaign spec: {msg}"),
            AdmissionError::Resolver(msg) => write!(f, "spec resolver failed: {msg}"),
            AdmissionError::Io(e) => write!(f, "could not persist campaign spec: {e}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Why a [`CampaignHandle`] operation could not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The campaign was killed (simulated SIGKILL or
    /// [`CampaignHandle::kill`]) after `execs` executions; it is resumable
    /// via [`CampaignHandle::resume`] or a service restart.
    Killed {
        /// Executions journaled before the kill.
        execs: u64,
    },
    /// The campaign errored out (factory failure, corrupt checkpoint, …).
    Failed(String),
    /// The service shut down before the campaign reached a terminal
    /// state.
    ShutDown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Killed { execs } => {
                write!(f, "campaign killed after {execs} executions (resumable)")
            }
            ServiceError::Failed(msg) => write!(f, "campaign failed: {msg}"),
            ServiceError::ShutDown => write!(f, "service shut down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Where a campaign stands, as reported by [`CampaignHandle::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignState {
    /// Admitted; no grant has run yet.
    Queued,
    /// Live: parked between grants or currently being stepped.
    Running,
    /// Parked by [`CampaignHandle::pause`]; resumable instantly.
    Paused,
    /// Dead but resumable from disk (simulated SIGKILL or
    /// [`CampaignHandle::kill`]).
    Killed {
        /// Executions journaled before the kill.
        execs: u64,
    },
    /// Done; [`CampaignHandle::await_result`] returns the result.
    Finished,
    /// Errored out; the message is in
    /// [`ServiceError::Failed`].
    Failed,
}

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Root directory; each tenant gets `dir/<name>/` for its spec,
    /// snapshots, journals, and decoded-image sidecar.
    pub dir: PathBuf,
    /// Scheduler threads — the bound on campaigns stepping concurrently
    /// (each campaign additionally uses its own `shards` threads while
    /// stepping).
    pub workers: usize,
    /// Admission bound: maximum live (not finished, not failed) campaigns.
    pub max_campaigns: usize,
    /// Epochs per scheduling grant. Smaller = finer-grained fairness,
    /// more scheduling overhead.
    pub epoch_grant: u64,
    /// Simulated-SIGKILL torture hook, armed onto *every* tenant's
    /// checkpoint config: each campaign dies abruptly after this many
    /// executions (see [`CheckpointConfig::kill_after_execs`]). The
    /// churn-identity evaluation arms this, kills the service, and
    /// restores with it disarmed.
    pub kill_after_execs: Option<u64>,
    /// Checkpoint flush policy for every tenant.
    pub fsync: FsyncPolicy,
    /// Lane supervision config for every tenant.
    pub supervision: SupervisorConfig,
    /// Health-driven rotation: when `Some(n)`, a tenant whose
    /// [`HealthReport::stalled_grants`] reaches `n` at park time is cooled
    /// for [`ServiceConfig::stall_cooldown_grants`] scheduling grants, so
    /// plateaued campaigns stop starving tenants that are still finding
    /// coverage. Work-conserving: cooled tenants still run when nothing
    /// hotter is runnable. `None` (the default) disables rotation.
    pub stall_threshold: Option<u64>,
    /// How many service-wide grants a rotated-out tenant sits out.
    pub stall_cooldown_grants: u64,
    /// Terminal-campaign retention budget: when `Some(n)` and more than
    /// `n` terminal (killed / finished / failed) tenants exist, the oldest
    /// beyond the budget are archived — checkpoint generations rotated
    /// down to the single newest sealed snapshot (plus the journals that
    /// resume it). Killed tenants stay resumable from that snapshot.
    /// Sweep failures are warnings, never fatal. `None` disables.
    pub retain_terminal: Option<usize>,
}

impl ServiceConfig {
    /// Defaults: 2 workers, 8 campaigns, 1-epoch grants, no kill hook,
    /// no stall rotation, no terminal archival.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ServiceConfig {
            dir: dir.into(),
            workers: 2,
            max_campaigns: 8,
            epoch_grant: 1,
            kill_after_execs: None,
            fsync: FsyncPolicy::default(),
            supervision: SupervisorConfig::default(),
            stall_threshold: None,
            stall_cooldown_grants: 4,
            retain_terminal: None,
        }
    }
}

/// Per-campaign health, folded from the per-grant progress history (the
/// campaign-introspection observables of Görz et al.: watch coverage
/// growth and corpus dynamics, not raw exec/s).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct HealthReport {
    /// Barriers completed / total.
    pub epoch: u64,
    /// Total barriers this campaign will run.
    pub epochs: u64,
    /// Executions across all lanes.
    pub execs: u64,
    /// Simulated cycles consumed.
    pub clock_cycles: u64,
    /// Edges in the merged virgin map.
    pub edges_found: u64,
    /// Merged queue length.
    pub queue_len: u64,
    /// Merged unique crash sites.
    pub crashes: u64,
    /// Mutation yield: edges found per million executions. Decaying yield
    /// is the expected coverage-over-time shape; a sudden collapse to 0
    /// together with a growing `stalled_grants` marks a plateaued
    /// campaign worth rotating out.
    pub edges_per_megaexec: f64,
    /// Consecutive trailing grants with zero new edges.
    pub stalled_grants: u64,
    /// Consecutive trailing grants with an unchanged queue (no new
    /// interesting inputs — staler than `stalled_grants` alone, since
    /// queue growth without new edges still feeds the splice stage).
    pub stale_queue_grants: u64,
}

fn health_from(history: &[SessionProgress]) -> Option<HealthReport> {
    let last = history.last()?;
    let trailing = |same: &dyn Fn(&SessionProgress, &SessionProgress) -> bool| -> u64 {
        history
            .windows(2)
            .rev()
            .take_while(|w| same(&w[0], &w[1]))
            .count() as u64
    };
    Some(HealthReport {
        epoch: last.epoch,
        epochs: last.epochs,
        execs: last.execs,
        clock_cycles: last.clock_cycles,
        edges_found: last.edges_found,
        queue_len: last.queue_len as u64,
        crashes: last.crashes as u64,
        edges_per_megaexec: if last.execs == 0 {
            0.0
        } else {
            last.edges_found as f64 * 1_000_000.0 / last.execs as f64
        },
        stalled_grants: trailing(&|a, b| a.edges_found == b.edges_found),
        stale_queue_grants: trailing(&|a, b| a.queue_len == b.queue_len),
    })
}

/// A service-wide counter snapshot ([`Service::stats`]).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct ServiceStats {
    /// Campaigns ever admitted (including restored ones).
    pub admitted: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Tenants with no grant run yet.
    pub queued: usize,
    /// Live tenants (parked between grants or stepping).
    pub running: usize,
    /// Paused tenants.
    pub paused: usize,
    /// Killed-but-resumable tenants.
    pub killed: usize,
    /// Finished tenants.
    pub finished: usize,
    /// Failed tenants.
    pub failed: usize,
    /// Scheduling grants handed out.
    pub epoch_grants: u64,
    /// Simulated cycles consumed across all tenants.
    pub cycles_granted: u64,
    /// Executions across all tenants.
    pub total_execs: u64,
    /// Stall rotations: times a plateaued tenant was cooled out of the
    /// scheduler (see [`ServiceConfig::stall_threshold`]).
    pub stall_rotations: u64,
    /// Terminal tenants archived down to one sealed snapshot (see
    /// [`ServiceConfig::retain_terminal`]).
    pub archived_tenants: u64,
    /// Non-fatal failures during archival sweeps (files that could not be
    /// listed or removed; the tenant stays archived, extra files linger).
    pub archive_warnings: u64,
    /// Process-wide decoded-image counters — the restore-decodes-once
    /// story is asserted through this (see [`vmos::decode_counters`]).
    pub decode: vmos::DecodeCounters,
}

/// Pause/kill requests, checked by the stepping worker at every epoch
/// barrier (the preemption point) without taking the scheduler lock.
#[derive(Default)]
struct TenantFlags {
    pause: AtomicBool,
    kill: AtomicBool,
}

/// Tenant lifecycle phase (internal; [`CampaignState`] is the public
/// projection).
enum Phase {
    /// Runnable: waiting for a worker grant.
    Ready,
    /// A worker holds the session and is stepping it.
    Stepping,
    Paused,
    Killed { execs: u64 },
    Finished,
    Failed,
}

struct Tenant {
    spec: CampaignSpec,
    /// Taken (moved out) by the stepping worker, put back at park.
    factory: Option<Box<dyn ExecutorFactory + Send + Sync>>,
    /// The live session, parked between grants. `None` before the first
    /// grant, while stepping, and after a kill.
    session: Option<Box<EpochSession>>,
    /// With no live session: `true` when on-disk state exists and the
    /// next grant must [`EpochSession::resume`] rather than `start`.
    needs_resume: bool,
    phase: Phase,
    flags: Arc<TenantFlags>,
    /// Fair-share key: simulated cycles this campaign has consumed.
    granted_cycles: u64,
    grants: u64,
    history: Vec<SessionProgress>,
    /// The newest resume's report, embedded into the final result.
    resume_report: Option<ResumeReport>,
    result: Option<CampaignResult>,
    error: Option<String>,
    /// Stall rotation: this tenant is deprioritised until the service-wide
    /// grant counter passes this value (0 = never cooled).
    cooldown_until_grant: u64,
    /// The terminal-retention sweep already rotated this tenant's
    /// checkpoints down to one sealed snapshot (once per tenant).
    archived: bool,
}

impl Tenant {
    fn state(&self) -> CampaignState {
        match self.phase {
            Phase::Ready if self.grants == 0 => CampaignState::Queued,
            Phase::Ready | Phase::Stepping => CampaignState::Running,
            Phase::Paused => CampaignState::Paused,
            Phase::Killed { execs } => CampaignState::Killed { execs },
            Phase::Finished => CampaignState::Finished,
            Phase::Failed => CampaignState::Failed,
        }
    }

    fn live(&self) -> bool {
        !matches!(self.phase, Phase::Finished | Phase::Failed)
    }

    fn last_execs(&self) -> u64 {
        self.history.last().map_or(0, |p| p.execs)
    }
}

struct State {
    tenants: Vec<Tenant>,
    shutdown: bool,
    admitted: u64,
    rejected: u64,
    epoch_grants: u64,
    stall_rotations: u64,
    archived_tenants: u64,
    archive_warnings: u64,
}

struct Shared {
    cfg: ServiceConfig,
    resolver: Arc<dyn SpecResolver>,
    state: Mutex<State>,
    /// Workers wait here for runnable tenants.
    work: Condvar,
    /// [`CampaignHandle::await_result`] waiters wait here.
    done: Condvar,
}

/// Pick the next tenant to grant: among `candidates = (id, granted
/// simulated cycles)` of runnable tenants, the minimum cycles, ties to
/// the smallest id. Pure — the whole fair-share policy in one testable
/// function.
pub fn fair_pick(candidates: &[(usize, u64)]) -> Option<usize> {
    candidates
        .iter()
        .min_by_key(|(id, cycles)| (*cycles, *id))
        .map(|(id, _)| *id)
}

/// The long-lived multi-tenant campaign server. See the module docs.
///
/// Dropping the service is a *graceful* shutdown: in-flight grants finish
/// their epoch, workers exit, campaigns stay durable on disk. The abrupt
/// death the churn evaluation exercises is simulated with
/// [`ServiceConfig::kill_after_execs`], which kills mid-epoch with torn
/// journal tails.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Start an empty service over `cfg.dir` (created if missing).
    ///
    /// # Errors
    /// [`std::io::Error`] when the root directory cannot be created.
    pub fn new(
        cfg: ServiceConfig,
        resolver: Arc<dyn SpecResolver>,
    ) -> std::io::Result<Service> {
        fs::create_dir_all(&cfg.dir)?;
        let workers_n = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cfg,
            resolver,
            state: Mutex::new(State {
                tenants: Vec::new(),
                shutdown: false,
                admitted: 0,
                rejected: 0,
                epoch_grants: 0,
                stall_rotations: 0,
                archived_tenants: 0,
                archive_warnings: 0,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..workers_n)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Service { shared, workers })
    }

    /// Restart a service over a directory a previous (possibly killed)
    /// service used: every persisted `spec.bin` is re-admitted — capacity
    /// is not enforced against prior commitments — and every campaign
    /// with on-disk state resumes from its newest valid snapshot. Tenant
    /// directories without checkpoint state (admitted, never granted)
    /// start from scratch.
    ///
    /// # Errors
    /// [`AdmissionError::Io`] when the directory cannot be scanned or a
    /// spec cannot be read; [`AdmissionError::InvalidSpec`] /
    /// [`AdmissionError::Resolver`] when a persisted spec no longer
    /// resolves (the deployment changed underneath the data).
    pub fn restore(
        cfg: ServiceConfig,
        resolver: Arc<dyn SpecResolver>,
    ) -> Result<Service, AdmissionError> {
        let service = Service::new(cfg, resolver).map_err(AdmissionError::Io)?;
        let mut names = Vec::new();
        let entries = fs::read_dir(&service.shared.cfg.dir).map_err(AdmissionError::Io)?;
        for entry in entries {
            let entry = entry.map_err(AdmissionError::Io)?;
            if entry.path().join(SPEC_FILE).is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        // Deterministic re-admission order — tenant ids (the fair-share
        // tie-breaker) must not depend on directory iteration order.
        names.sort();
        for name in names {
            let dir = service.shared.cfg.dir.join(&name);
            let bytes = fs::read(dir.join(SPEC_FILE)).map_err(AdmissionError::Io)?;
            let spec = CampaignSpec::decode(&bytes)
                .map_err(|_| AdmissionError::InvalidSpec("corrupt spec.bin"))?;
            // On-disk campaign state = any shard snapshot generation.
            let has_state = fs::read_dir(&dir).map_err(AdmissionError::Io)?.any(|e| {
                e.map(|e| e.file_name().to_string_lossy().starts_with("shard-"))
                    .unwrap_or(false)
            });
            service.admit(spec, has_state, false)?;
        }
        Ok(service)
    }

    /// Admit a campaign. On `Ok` the spec is durable on disk and the
    /// campaign will be scheduled; the returned handle observes and
    /// controls it.
    ///
    /// # Errors
    /// [`AdmissionError`] — capacity, duplicate name, structural
    /// problems, resolver failure, or spec-persistence I/O. A rejected
    /// campaign leaves no trace.
    pub fn submit(&self, spec: CampaignSpec) -> Result<CampaignHandle, AdmissionError> {
        self.admit(spec, false, true)
    }

    fn admit(
        &self,
        spec: CampaignSpec,
        needs_resume: bool,
        enforce_capacity: bool,
    ) -> Result<CampaignHandle, AdmissionError> {
        let reject = |st: &mut State, e: AdmissionError| {
            st.rejected += 1;
            Err(e)
        };
        let mut st = self.shared.state.lock().expect("service state poisoned");
        if spec.name.is_empty()
            || !spec
                .name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'-' || b == b'_')
        {
            return reject(
                &mut st,
                AdmissionError::InvalidSpec("tenant names are [A-Za-z0-9._-]+"),
            );
        }
        if spec.seeds.is_empty() {
            return reject(&mut st, AdmissionError::InvalidSpec("no seeds"));
        }
        if st.tenants.iter().any(|t| t.spec.name == spec.name) {
            return reject(&mut st, AdmissionError::Duplicate(spec.name));
        }
        let capacity = self.shared.cfg.max_campaigns;
        if enforce_capacity && st.tenants.iter().filter(|t| t.live()).count() >= capacity {
            return reject(&mut st, AdmissionError::Full { capacity });
        }
        let factory = match self.shared.resolver.resolve(&spec.factory_spec) {
            Ok(f) => f,
            Err(msg) => return reject(&mut st, AdmissionError::Resolver(msg)),
        };
        // Durable admission: spec.bin reaches the tenant directory before
        // the tenant exists in memory, so a service killed right here
        // restores the campaign instead of forgetting it.
        let dir = self.shared.cfg.dir.join(&spec.name);
        if let Err(e) = write_spec(&dir, &spec) {
            return reject(&mut st, AdmissionError::Io(e));
        }
        let id = st.tenants.len();
        st.tenants.push(Tenant {
            spec,
            factory: Some(factory),
            session: None,
            needs_resume,
            phase: Phase::Ready,
            flags: Arc::new(TenantFlags::default()),
            granted_cycles: 0,
            grants: 0,
            history: Vec::new(),
            resume_report: None,
            result: None,
            error: None,
            cooldown_until_grant: 0,
            archived: false,
        });
        st.admitted += 1;
        drop(st);
        self.shared.work.notify_one();
        Ok(CampaignHandle {
            shared: Arc::clone(&self.shared),
            id,
        })
    }

    /// The handle for an admitted campaign, by tenant name.
    pub fn handle(&self, name: &str) -> Option<CampaignHandle> {
        let st = self.shared.state.lock().expect("service state poisoned");
        st.tenants
            .iter()
            .position(|t| t.spec.name == name)
            .map(|id| CampaignHandle {
                shared: Arc::clone(&self.shared),
                id,
            })
    }

    /// The admitted spec for a tenant, by name. The RPC front end uses
    /// this to deduplicate retried `Submit`s against the durable
    /// admission (`spec.bin` lands before any ack).
    pub fn spec(&self, name: &str) -> Option<CampaignSpec> {
        let st = self.shared.state.lock().expect("service state poisoned");
        st.tenants
            .iter()
            .find(|t| t.spec.name == name)
            .map(|t| t.spec.clone())
    }

    /// The service root directory (tenant state lives under it; the RPC
    /// reply journal sits beside the tenant directories).
    pub fn dir(&self) -> &Path {
        &self.shared.cfg.dir
    }

    /// Handles for every admitted campaign, in admission order.
    pub fn handles(&self) -> Vec<CampaignHandle> {
        let st = self.shared.state.lock().expect("service state poisoned");
        (0..st.tenants.len())
            .map(|id| CampaignHandle {
                shared: Arc::clone(&self.shared),
                id,
            })
            .collect()
    }

    /// A service-wide counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let st = self.shared.state.lock().expect("service state poisoned");
        let mut s = ServiceStats {
            admitted: st.admitted,
            rejected: st.rejected,
            epoch_grants: st.epoch_grants,
            stall_rotations: st.stall_rotations,
            archived_tenants: st.archived_tenants,
            archive_warnings: st.archive_warnings,
            decode: vmos::decode_counters(),
            ..ServiceStats::default()
        };
        for t in &st.tenants {
            match t.state() {
                CampaignState::Queued => s.queued += 1,
                CampaignState::Running => s.running += 1,
                CampaignState::Paused => s.paused += 1,
                CampaignState::Killed { .. } => s.killed += 1,
                CampaignState::Finished => s.finished += 1,
                CampaignState::Failed => s.failed += 1,
            }
            s.cycles_granted += t.granted_cycles;
            s.total_execs += t.last_execs();
        }
        s
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("service state poisoned");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Wake await_result callers on other threads so they observe
        // `ShutDown` instead of blocking forever.
        self.shared.done.notify_all();
    }
}

/// Observe and control one admitted campaign. Clonable, independent of
/// the [`Service`] value's lifetime (it holds the shared state alive);
/// after the service is dropped, control operations become no-ops and
/// waits report [`ServiceError::ShutDown`].
#[derive(Clone)]
pub struct CampaignHandle {
    shared: Arc<Shared>,
    id: usize,
}

impl std::fmt::Debug for CampaignHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignHandle")
            .field("name", &self.name())
            .field("status", &self.status())
            .finish_non_exhaustive()
    }
}

impl CampaignHandle {
    /// The tenant name.
    pub fn name(&self) -> String {
        let st = self.shared.state.lock().expect("service state poisoned");
        st.tenants[self.id].spec.name.clone()
    }

    /// Where the campaign stands right now.
    pub fn status(&self) -> CampaignState {
        let st = self.shared.state.lock().expect("service state poisoned");
        st.tenants[self.id].state()
    }

    /// The campaign's health, folded from its per-grant progress history
    /// (`None` before the first grant completes).
    pub fn health(&self) -> Option<HealthReport> {
        let st = self.shared.state.lock().expect("service state poisoned");
        health_from(&st.tenants[self.id].history)
    }

    /// Park the campaign at its next epoch barrier. Idempotent; no-op on
    /// terminal states. The campaign's durable state is unaffected —
    /// pausing is purely a scheduling exclusion.
    pub fn pause(&self) {
        let mut st = self.shared.state.lock().expect("service state poisoned");
        let t = &mut st.tenants[self.id];
        t.flags.pause.store(true, Ordering::SeqCst);
        if matches!(t.phase, Phase::Ready) {
            t.phase = Phase::Paused;
        }
    }

    /// Make the campaign runnable again: un-pauses a paused campaign,
    /// resurrects a killed one (its next grant resumes from the
    /// checkpoint). No-op on running, finished, or failed campaigns.
    pub fn resume(&self) {
        let mut st = self.shared.state.lock().expect("service state poisoned");
        let t = &mut st.tenants[self.id];
        t.flags.pause.store(false, Ordering::SeqCst);
        t.flags.kill.store(false, Ordering::SeqCst);
        match t.phase {
            Phase::Paused | Phase::Killed { .. } => {
                t.phase = Phase::Ready;
                drop(st);
                self.shared.work.notify_one();
            }
            _ => {}
        }
    }

    /// Stop the campaign at its next epoch barrier and release its
    /// in-memory session. The on-disk state stays; [`Self::resume`] or a
    /// service restart brings it back. Idempotent; no-op on terminal
    /// states.
    pub fn kill(&self) {
        let mut st = self.shared.state.lock().expect("service state poisoned");
        let t = &mut st.tenants[self.id];
        t.flags.kill.store(true, Ordering::SeqCst);
        match t.phase {
            Phase::Ready | Phase::Paused => {
                let execs = t.session.as_ref().map_or(t.last_execs(), |s| {
                    s.progress().execs
                });
                // A parked session is at a barrier: its state is already
                // durable, dropping it loses nothing.
                let had_state = t.session.take().is_some() || t.needs_resume;
                t.needs_resume = had_state;
                t.phase = Phase::Killed { execs };
                drop(st);
                self.shared.done.notify_all();
            }
            _ => {}
        }
    }

    /// Block until the campaign reaches a terminal state and return its
    /// result.
    ///
    /// # Errors
    /// [`ServiceError::Killed`] when the campaign was killed (it is still
    /// resumable — this is a state report, not a loss),
    /// [`ServiceError::Failed`] when it errored out, and
    /// [`ServiceError::ShutDown`] when the service stopped first. A
    /// paused campaign never terminates on its own; pair this with
    /// [`Self::resume`].
    pub fn await_result(&self) -> Result<CampaignResult, ServiceError> {
        let mut st = self.shared.state.lock().expect("service state poisoned");
        loop {
            match &st.tenants[self.id].phase {
                Phase::Finished => {
                    return Ok(st.tenants[self.id]
                        .result
                        .clone()
                        .expect("finished tenant has a result"));
                }
                Phase::Failed => {
                    return Err(ServiceError::Failed(
                        st.tenants[self.id].error.clone().unwrap_or_default(),
                    ));
                }
                Phase::Killed { execs } => return Err(ServiceError::Killed { execs: *execs }),
                _ if st.shutdown => return Err(ServiceError::ShutDown),
                _ => {
                    st = self
                        .shared
                        .done
                        .wait(st)
                        .expect("service state poisoned");
                }
            }
        }
    }
}

/// Atomically persist `spec.bin` into the tenant directory.
fn write_spec(dir: &std::path::Path, spec: &CampaignSpec) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let tmp = dir.join("spec.bin.tmp");
    fs::write(&tmp, spec.encode())?;
    fs::rename(&tmp, dir.join(SPEC_FILE))
}

/// What a worker carries out of the scheduler lock for one grant.
struct Grant {
    id: usize,
    spec: CampaignSpec,
    factory: Box<dyn ExecutorFactory + Send + Sync>,
    session: Option<Box<EpochSession>>,
    needs_resume: bool,
    flags: Arc<TenantFlags>,
}

/// How the grant left the tenant.
enum Parked {
    Ready(Box<EpochSession>),
    Paused(Box<EpochSession>),
    Killed { execs: u64 },
    Finished(Box<CampaignResult>),
    Failed(String),
}

fn worker_loop(shared: &Shared) {
    loop {
        let grant = {
            let mut st = shared.state.lock().expect("service state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                // Stall rotation: tenants in cooldown only run when no
                // hot (uncooled) tenant is runnable — deprioritised, not
                // starved (the rotation is work-conserving).
                let now = st.epoch_grants;
                let collect = |st: &State, include_cooled: bool| -> Vec<(usize, u64)> {
                    st.tenants
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| {
                            matches!(t.phase, Phase::Ready)
                                && (include_cooled || t.cooldown_until_grant <= now)
                        })
                        .map(|(id, t)| (id, t.granted_cycles))
                        .collect()
                };
                let mut candidates = collect(&st, false);
                if candidates.is_empty() {
                    candidates = collect(&st, true);
                }
                if let Some(id) = fair_pick(&candidates) {
                    let t = &mut st.tenants[id];
                    t.phase = Phase::Stepping;
                    st.epoch_grants += 1;
                    let t = &mut st.tenants[id];
                    break Grant {
                        id,
                        spec: t.spec.clone(),
                        factory: t.factory.take().expect("ready tenant keeps its factory"),
                        session: t.session.take(),
                        needs_resume: t.needs_resume,
                        flags: Arc::clone(&t.flags),
                    };
                }
                st = shared.work.wait(st).expect("service state poisoned");
            }
        };
        let id = grant.id;
        let (parked, factory, resume_report) = run_grant(shared, grant);
        let archive: Vec<String> = {
            let mut st = shared.state.lock().expect("service state poisoned");
            let now = st.epoch_grants;
            let mut rotated = false;
            let t = &mut st.tenants[id];
            t.factory = Some(factory);
            t.grants += 1;
            if let Some(r) = resume_report {
                t.resume_report = Some(r);
            }
            let paused = matches!(parked, Parked::Paused(_));
            match parked {
                Parked::Ready(s) | Parked::Paused(s) => {
                    let p = s.progress();
                    t.granted_cycles = p.clock_cycles;
                    t.history.push(p);
                    t.session = Some(s);
                    t.needs_resume = false;
                    t.phase = if paused { Phase::Paused } else { Phase::Ready };
                    // Health-driven rotation: a plateaued tenant parks
                    // into a cooldown window instead of re-entering the
                    // fair-share race immediately.
                    if let Some(threshold) = shared.cfg.stall_threshold {
                        let stalled = health_from(&t.history)
                            .is_some_and(|h| h.stalled_grants >= threshold);
                        if !paused && stalled && t.cooldown_until_grant <= now {
                            t.cooldown_until_grant = now + shared.cfg.stall_cooldown_grants;
                            rotated = true;
                        }
                    }
                }
                Parked::Killed { execs } => {
                    // The session died mid-epoch (simulated SIGKILL or
                    // storage crash) or was killed at a barrier; either
                    // way the in-memory object is gone and the next grant
                    // resumes from disk.
                    t.session = None;
                    t.needs_resume = true;
                    t.phase = Phase::Killed { execs };
                }
                Parked::Finished(result) => {
                    let mut result = *result;
                    result.resume = t.resume_report.clone();
                    let p = SessionProgress {
                        epoch: t.spec.sync_epochs.max(1),
                        epochs: t.spec.sync_epochs.max(1),
                        execs: result.execs,
                        clock_cycles: result.clock_cycles,
                        edges_found: result.edges_found as u64,
                        queue_len: result.queue_len,
                        crashes: result.crashes.len(),
                    };
                    t.granted_cycles = p.clock_cycles;
                    t.history.push(p);
                    t.result = Some(result);
                    t.phase = Phase::Finished;
                }
                Parked::Failed(msg) => {
                    t.error = Some(msg);
                    t.phase = Phase::Failed;
                }
            }
            if rotated {
                st.stall_rotations += 1;
            }
            let archive = plan_archival(&shared.cfg, &mut st);
            let more = st
                .tenants
                .iter()
                .any(|t| matches!(t.phase, Phase::Ready));
            drop(st);
            shared.done.notify_all();
            if more {
                shared.work.notify_one();
            }
            archive
        };
        // Sweep outside the scheduler lock — directory pruning must not
        // stall grant scheduling. The victims are already claimed
        // (`archived = true`), so concurrent workers never double-sweep.
        for name in archive {
            let (_, warnings) = crate::shard::archive_shard_dir(&shared.cfg.dir.join(&name));
            let mut st = shared.state.lock().expect("service state poisoned");
            st.archived_tenants += 1;
            st.archive_warnings += warnings;
        }
    }
}

/// Under the scheduler lock: claim terminal tenants beyond the
/// [`ServiceConfig::retain_terminal`] budget for archival, oldest
/// (smallest tenant id) first, and return their names. Each tenant is
/// claimed at most once for the service's lifetime.
fn plan_archival(cfg: &ServiceConfig, st: &mut State) -> Vec<String> {
    let Some(budget) = cfg.retain_terminal else {
        return Vec::new();
    };
    let terminal: Vec<usize> = st
        .tenants
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            matches!(
                t.phase,
                Phase::Killed { .. } | Phase::Finished | Phase::Failed
            )
        })
        .map(|(id, _)| id)
        .collect();
    if terminal.len() <= budget {
        return Vec::new();
    }
    let mut names = Vec::new();
    for &id in &terminal[..terminal.len() - budget] {
        let t = &mut st.tenants[id];
        if !t.archived {
            t.archived = true;
            names.push(t.spec.name.clone());
        }
    }
    names
}

/// Step one tenant for one grant, outside the scheduler lock. Returns how
/// the tenant parks, its factory (always handed back), and the resume
/// report if this grant had to revive the campaign from disk.
fn run_grant(
    shared: &Shared,
    grant: Grant,
) -> (
    Parked,
    Box<dyn ExecutorFactory + Send + Sync>,
    Option<ResumeReport>,
) {
    let Grant {
        id: _,
        spec,
        factory,
        session,
        needs_resume,
        flags,
    } = grant;
    // The decode-opt switch is thread-local and lane workers inherit it;
    // pin it per grant since this thread steps many tenants.
    let _opt_off = (!spec.decode_opt).then(vmos::DecodeOptGuard::new);
    let ck = tenant_checkpoint(&shared.cfg, &spec);
    let plan = spec.plan();
    let mut resume_report = None;
    let mut session = match session {
        Some(s) => s,
        None => {
            let started = if needs_resume {
                EpochSession::resume(
                    &*factory,
                    &spec.seeds,
                    &spec.cfg,
                    &plan,
                    &ck,
                    &shared.cfg.supervision,
                )
                .map(|(start, report)| {
                    resume_report = Some(report);
                    start
                })
            } else {
                EpochSession::start(
                    &*factory,
                    &spec.seeds,
                    &spec.cfg,
                    &plan,
                    Some(&ck),
                    &shared.cfg.supervision,
                )
            };
            match started {
                Ok(SessionStart::Live(s)) => s,
                Ok(SessionStart::Dead { execs }) => {
                    return (Parked::Killed { execs }, factory, resume_report)
                }
                Err(e) => return (Parked::Failed(e.to_string()), factory, resume_report),
            }
        }
    };
    for _ in 0..shared.cfg.epoch_grant.max(1) {
        if flags.kill.load(Ordering::SeqCst) {
            let execs = session.progress().execs;
            return (Parked::Killed { execs }, factory, resume_report);
        }
        match session.step_epoch(&*factory) {
            Ok(EpochStatus::Running) => {
                if flags.pause.load(Ordering::SeqCst) {
                    return (Parked::Paused(session), factory, resume_report);
                }
            }
            Ok(EpochStatus::Killed { execs }) => {
                return (Parked::Killed { execs }, factory, resume_report)
            }
            Ok(EpochStatus::Finished) => {
                let result = Box::new(session.finish());
                return (Parked::Finished(result), factory, resume_report);
            }
            Err(e) => return (Parked::Failed(e.to_string()), factory, resume_report),
        }
    }
    if flags.pause.load(Ordering::SeqCst) {
        return (Parked::Paused(session), factory, resume_report);
    }
    (Parked::Ready(session), factory, resume_report)
}

/// The tenant's checkpoint config: its directory under the service root,
/// service-wide fsync/kill policy, per-spec retention.
fn tenant_checkpoint(cfg: &ServiceConfig, spec: &CampaignSpec) -> CheckpointConfig {
    let mut ck = CheckpointConfig::new(cfg.dir.join(&spec.name));
    ck.keep_snapshots = spec.keep_snapshots.max(1);
    ck.fsync = cfg.fsync;
    ck.kill_after_execs = cfg.kill_after_execs;
    ck
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_pick_minimizes_cycles_then_id() {
        assert_eq!(fair_pick(&[]), None);
        assert_eq!(fair_pick(&[(3, 10)]), Some(3));
        assert_eq!(fair_pick(&[(0, 10), (1, 5), (2, 7)]), Some(1));
        assert_eq!(fair_pick(&[(2, 5), (0, 5), (1, 9)]), Some(0), "tie → lowest id");
    }

    #[test]
    fn spec_roundtrips_exactly() {
        let mut spec = CampaignSpec::new(
            "tenant-a",
            vec![3, 1, 4, 1, 5],
            vec![b"seed".to_vec(), b"corpus!".to_vec()],
            CampaignConfig {
                budget_cycles: 123_456,
                seed: 42,
                ..CampaignConfig::default()
            },
        );
        spec.lanes = 3;
        spec.shards = 2;
        spec.sync_epochs = 7;
        spec.decode_opt = false;
        spec.keep_snapshots = 5;
        let decoded = CampaignSpec::decode(&spec.encode()).expect("roundtrip");
        assert_eq!(decoded.name, spec.name);
        assert_eq!(decoded.factory_spec, spec.factory_spec);
        assert_eq!(decoded.seeds, spec.seeds);
        assert_eq!(decoded.cfg.budget_cycles, 123_456);
        assert_eq!(decoded.cfg.seed, 42);
        assert_eq!(decoded.lanes, 3);
        assert_eq!(decoded.shards, 2);
        assert_eq!(decoded.sync_epochs, 7);
        assert!(!decoded.decode_opt);
        assert_eq!(decoded.keep_snapshots, 5);
    }

    #[test]
    fn spec_decode_rejects_corruption() {
        let spec = CampaignSpec::new(
            "t",
            vec![1],
            vec![b"s".to_vec()],
            CampaignConfig::default(),
        );
        let good = spec.encode();
        assert!(CampaignSpec::decode(&good[..good.len() - 1]).is_err(), "truncated");
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(CampaignSpec::decode(&trailing).is_err(), "trailing bytes");
        let mut bad_magic = good;
        bad_magic[4] = b'X'; // first magic byte (after the length prefix)
        assert!(CampaignSpec::decode(&bad_magic).is_err(), "bad magic");
    }

    #[test]
    fn health_folds_stall_and_staleness() {
        let p = |epoch, edges, queue| SessionProgress {
            epoch,
            epochs: 8,
            execs: epoch * 100,
            clock_cycles: epoch * 1000,
            edges_found: edges,
            queue_len: queue,
            crashes: 0,
        };
        assert_eq!(health_from(&[]), None);
        let h = health_from(&[p(1, 10, 3), p(2, 12, 4), p(3, 12, 4), p(4, 12, 4)])
            .expect("has history");
        assert_eq!(h.edges_found, 12);
        assert_eq!(h.stalled_grants, 2, "two trailing grants without new edges");
        assert_eq!(h.stale_queue_grants, 2);
        assert!((h.edges_per_megaexec - 12.0 * 1e6 / 400.0).abs() < 1e-9);
    }
}
