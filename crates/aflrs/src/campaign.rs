//! The campaign driver: one "trial" of the paper's evaluation.
//!
//! Runs a coverage-guided loop against any execution mechanism until a
//! simulated-cycle budget is exhausted, recording throughput, coverage
//! growth, and deduplicated crashes with discovery times.
//!
//! The loop is structured as an explicit **state machine**: every piece of
//! state that influences future behavior — the stage position ([`Stage`]),
//! the queue and its round-robin cursor, both RNG streams, the virgin map,
//! and every counter — lives in the [`Driver`] and is serializable. That is
//! what makes crash-safe checkpointing (see [`crate::checkpoint`]) exact: a
//! campaign killed at any execution boundary and resumed from disk takes
//! the same decisions, in the same order, as one that never died.

use std::collections::HashMap;

use closurex::executor::{ExecStatus, Executor};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vmos::cov::VirginMap;
use vmos::CrashKind;

use crate::mutate;
use crate::queue::{Queue, QueueEntry};
use crate::stats::{CampaignResult, CrashRecord, ResilienceCounters};

/// Havoc iterations per scheduled queue entry (AFL's stage cycle).
pub(crate) const HAVOC_ITERS: u32 = 32;

/// Salt mixed into the campaign seed for the independent backoff-jitter
/// stream, so backoff draws never perturb the mutation schedule.
const BACKOFF_SEED_SALT: u64 = 0x6261_636b_6f66_6621; // "backoff!"

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Cycle budget (the "24 hours" analog).
    pub budget_cycles: u64,
    /// RNG seed (one per trial).
    pub seed: u64,
    /// Run AFL's deterministic stage on fresh queue entries.
    pub deterministic_stage: bool,
    /// Stop early after this many deduplicated crashes (0 = never).
    pub stop_after_crashes: usize,
    /// Re-execute an input up to this many times when the *harness* (not
    /// the target) faults — transient fork refusals usually clear.
    pub max_retries: u32,
    /// Consecutive-hang watchdog: after this many hangs in a row, abandon
    /// the current mutation batch (0 = watchdog off). A wedged substrate
    /// burns the whole budget on fuel exhaustion otherwise.
    pub max_consecutive_hangs: u64,
    /// Base backoff (simulated cycles) charged before each harness-fault
    /// retry; doubles per attempt, plus deterministic seeded jitter in
    /// `[0, base)`. Hammering a faulting substrate with immediate retries
    /// just re-triggers the same transient fault; the delay — charged to
    /// the campaign clock as management overhead — gives it room to clear.
    /// 0 disables backoff.
    pub retry_backoff_cycles: u64,
    /// Replay each first-discovery crash in the revalidation executor (a
    /// fresh process, see [`crate::Campaign::revalidator`]); records whose
    /// crash does not reproduce at the same site are tagged
    /// [`CrashRecord::flaky`] rather than dropped.
    pub revalidate_crashes: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            budget_cycles: 200_000_000,
            seed: 1,
            deterministic_stage: true,
            stop_after_crashes: 0,
            max_retries: 3,
            max_consecutive_hangs: 32,
            retry_backoff_cycles: 2_000,
            revalidate_crashes: false,
        }
    }
}

impl CampaignConfig {
    /// Encode for transfer to a worker process — a lane's behavior is a
    /// pure function of its config, so the child must receive every field.
    pub(crate) fn encode(&self, w: &mut vmos::Writer) {
        w.put_u64(self.budget_cycles);
        w.put_u64(self.seed);
        w.put_bool(self.deterministic_stage);
        w.put_usize(self.stop_after_crashes);
        w.put_u32(self.max_retries);
        w.put_u64(self.max_consecutive_hangs);
        w.put_u64(self.retry_backoff_cycles);
        w.put_bool(self.revalidate_crashes);
    }

    /// Decode a config written by [`CampaignConfig::encode`].
    pub(crate) fn decode(r: &mut vmos::Reader<'_>) -> Result<Self, vmos::WireError> {
        Ok(CampaignConfig {
            budget_cycles: r.get_u64()?,
            seed: r.get_u64()?,
            deterministic_stage: r.get_bool()?,
            stop_after_crashes: r.get_count()?,
            max_retries: r.get_u32()?,
            max_consecutive_hangs: r.get_u64()?,
            retry_backoff_cycles: r.get_u64()?,
            revalidate_crashes: r.get_bool()?,
        })
    }
}

/// Where in the campaign loop the driver stands. Every variant carries the
/// indices needed to resume mid-stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stage {
    /// Running the initial seed corpus; the index is the next seed to run.
    Seeds(usize),
    /// Choosing the next queue entry (round-robin).
    Pick,
    /// Deterministic stage on `entry`; `mutant` is the next mutant index.
    Det {
        /// Queue entry being mutated.
        entry: usize,
        /// Next deterministic-mutant index to execute.
        mutant: usize,
    },
    /// Havoc stage on `entry`; `iter` is the next havoc iteration.
    Havoc {
        /// Queue entry being mutated.
        entry: usize,
        /// Next havoc iteration (0..[`HAVOC_ITERS`]).
        iter: u32,
    },
    /// Budget exhausted (or early-stop); no further executions.
    Done,
}

/// What one [`Driver::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepOutcome {
    /// Exactly one test case was executed.
    Ran,
    /// The campaign is finished; no execution happened.
    Finished,
}

/// Mutable campaign state, threaded through every execution. All
/// behavior-relevant fields are plain data (see module docs); the
/// checkpoint layer serializes them wholesale.
pub(crate) struct Driver<'e> {
    pub(crate) executor: &'e mut dyn Executor,
    /// Fresh-process executor crashes are replayed in when
    /// [`CampaignConfig::revalidate_crashes`] is set.
    pub(crate) revalidator: Option<&'e mut dyn Executor>,
    pub(crate) cfg: CampaignConfig,
    pub(crate) seeds: Vec<Vec<u8>>,
    pub(crate) stage: Stage,
    pub(crate) rng: SmallRng,
    pub(crate) backoff_rng: SmallRng,
    pub(crate) queue: Queue,
    pub(crate) virgin: VirginMap,
    pub(crate) clock: u64,
    pub(crate) execs: u64,
    pub(crate) hangs: u64,
    pub(crate) mgmt_cycles: u64,
    pub(crate) exec_cycles: u64,
    /// Lookup only — never iterated, so the map's order cannot influence
    /// campaign behavior, and it is rebuilt from `crashes` on resume.
    pub(crate) crash_sites: HashMap<(CrashKind, String, u32), usize>,
    pub(crate) crashes: Vec<CrashRecord>,
    pub(crate) retries: u64,
    pub(crate) dropped_inputs: u64,
    pub(crate) harness_faults: u64,
    pub(crate) consecutive_hangs: u64,
    pub(crate) watchdog_trips: u64,
    /// Deterministic mutants of the entry currently in [`Stage::Det`].
    /// Pure function of the entry's data — never serialized, rebuilt
    /// lazily after a resume.
    det_cache: Option<(usize, Vec<Vec<u8>>)>,
    /// When set, per-execution deltas are accumulated for the journal.
    pub(crate) track_deltas: bool,
    /// Virgin-map bytes changed since the last delta was taken.
    pub(crate) pending_virgin: Vec<(usize, u8)>,
    /// Queue indices whose `det_done` flipped since the last delta.
    pub(crate) pending_det_done: Vec<usize>,
    /// `(crash index, absolute hit count)` updates since the last delta.
    pub(crate) pending_crash_hits: Vec<(usize, u64)>,
    /// Queue length already covered by emitted deltas.
    pub(crate) journaled_queue_len: usize,
    /// Crash count already covered by emitted deltas.
    pub(crate) journaled_crash_len: usize,
}

impl<'e> Driver<'e> {
    pub(crate) fn new(
        executor: &'e mut dyn Executor,
        revalidator: Option<&'e mut dyn Executor>,
        seeds: &[Vec<u8>],
        cfg: &CampaignConfig,
        track_deltas: bool,
    ) -> Self {
        Driver {
            executor,
            revalidator,
            cfg: cfg.clone(),
            seeds: seeds.to_vec(),
            stage: Stage::Seeds(0),
            rng: SmallRng::seed_from_u64(cfg.seed),
            backoff_rng: SmallRng::seed_from_u64(cfg.seed ^ BACKOFF_SEED_SALT),
            queue: Queue::new(),
            virgin: VirginMap::new(),
            clock: 0,
            execs: 0,
            hangs: 0,
            mgmt_cycles: 0,
            exec_cycles: 0,
            crash_sites: HashMap::new(),
            crashes: Vec::new(),
            retries: 0,
            dropped_inputs: 0,
            harness_faults: 0,
            consecutive_hangs: 0,
            watchdog_trips: 0,
            det_cache: None,
            track_deltas,
            pending_virgin: Vec::new(),
            pending_det_done: Vec::new(),
            pending_crash_hits: Vec::new(),
            journaled_queue_len: 0,
            journaled_crash_len: 0,
        }
    }

    /// Rebuild the crash-site dedup index from the crash records (after a
    /// checkpoint load).
    pub(crate) fn rebuild_crash_sites(&mut self) {
        self.crash_sites = self
            .crashes
            .iter()
            .enumerate()
            .map(|(i, r)| (r.crash.site_key(), i))
            .collect();
    }

    /// Replay a first-discovery crash in the revalidation executor; returns
    /// `true` when it reproduced at the same site. The replay's cycles are
    /// campaign machinery overhead, charged to the clock as management.
    ///
    /// Sites are compared modulo the persistent-mode entry-point rename
    /// (`main` → `target_main`): the revalidator typically runs the
    /// *untransformed* module, where the same faulting block lives in the
    /// original function name.
    fn crash_reproduces(&mut self, input: &[u8], key: &(CrashKind, String, u32)) -> bool {
        fn canonical(key: &(CrashKind, String, u32)) -> (CrashKind, &str, u32) {
            (key.0, key.1.strip_prefix("target_").unwrap_or(&key.1), key.2)
        }
        let Some(rv) = self.revalidator.as_deref_mut() else {
            // No revalidator wired up: nothing to contradict the record.
            return true;
        };
        let out = rv.run(input);
        self.clock += out.total_cycles();
        self.mgmt_cycles += out.total_cycles();
        match out.status.crash() {
            Some(c) => canonical(&c.site_key()) == canonical(key),
            None => false,
        }
    }

    /// Execute one input, fold its results into the campaign state, and
    /// enqueue it if it produced new coverage. Harness faults are retried
    /// up to `max_retries` times — they mean the machinery hiccuped, not
    /// that the input is interesting — and dropped if they never clear.
    /// Each retry waits out an exponential backoff (in simulated cycles)
    /// with seeded jitter before re-executing.
    fn run_one(&mut self, input: &[u8]) {
        let mut attempts = 0;
        let out = loop {
            let out = self.executor.run(input);
            self.execs += 1;
            self.clock += out.total_cycles();
            self.mgmt_cycles += out.mgmt_cycles;
            self.exec_cycles += out.exec_cycles;
            if out.status.fault().is_none() {
                break out;
            }
            self.harness_faults += 1;
            if attempts >= self.cfg.max_retries {
                self.dropped_inputs += 1;
                return;
            }
            attempts += 1;
            self.retries += 1;
            if self.cfg.retry_backoff_cycles > 0 {
                let base = self.cfg.retry_backoff_cycles;
                let delay =
                    (base << u64::from(attempts - 1).min(10)) + self.backoff_rng.gen_range(0..base);
                self.clock += delay;
                self.mgmt_cycles += delay;
            }
        };
        match &out.status {
            ExecStatus::Crash(c) => {
                self.consecutive_hangs = 0;
                let key = c.site_key();
                if let Some(&idx) = self.crash_sites.get(&key) {
                    self.crashes[idx].hits += 1;
                    if self.track_deltas && idx < self.journaled_crash_len {
                        self.pending_crash_hits.push((idx, self.crashes[idx].hits));
                    }
                } else {
                    let found_at_cycles = self.clock;
                    let flaky =
                        self.cfg.revalidate_crashes && !self.crash_reproduces(input, &key);
                    self.crash_sites.insert(key, self.crashes.len());
                    self.crashes.push(CrashRecord {
                        crash: c.clone(),
                        found_at_cycles,
                        input: input.to_vec(),
                        hits: 1,
                        flaky,
                    });
                }
            }
            ExecStatus::Hang => {
                self.hangs += 1;
                self.consecutive_hangs += 1;
            }
            ExecStatus::Exit(_) => self.consecutive_hangs = 0,
            ExecStatus::Fault(_) => unreachable!("faults handled by retry loop"),
        }
        // Crashes and hangs are saved in their own buckets (AFL's
        // crashes/ and hangs/ dirs); only clean coverage-increasing
        // inputs become queue seeds.
        let clean = matches!(out.status, ExecStatus::Exit(_));
        let edges_before = self.virgin.edges_found();
        let new_cov = if self.track_deltas {
            self.virgin
                .merge_tracked(self.executor.coverage(), &mut self.pending_virgin)
        } else {
            self.virgin.merge(self.executor.coverage())
        };
        if new_cov && clean {
            self.queue.push(QueueEntry {
                data: input.to_vec(),
                exec_cycles: out.total_cycles(),
                found_at: self.clock,
                det_done: false,
                // A brand-new edge (not just a new bucket) marks the entry
                // favored; round-robin scheduling ignores the bit, so
                // unsharded behavior is unchanged.
                favored: self.virgin.edges_found() > edges_before,
            });
        }
    }

    /// Has the consecutive-hang watchdog fired? If so, reset it and record
    /// the trip; the caller abandons its current mutation batch.
    fn watchdog_tripped(&mut self) -> bool {
        if self.cfg.max_consecutive_hangs > 0
            && self.consecutive_hangs >= self.cfg.max_consecutive_hangs
        {
            self.watchdog_trips += 1;
            self.consecutive_hangs = 0;
            return true;
        }
        false
    }

    fn exhausted(&self) -> bool {
        self.clock >= self.cfg.budget_cycles
            || (self.cfg.stop_after_crashes > 0 && self.crashes.len() >= self.cfg.stop_after_crashes)
    }

    /// Advance the campaign by **at most one execution**: internal stage
    /// transitions (picking the next entry, finishing a mutant batch) are
    /// folded in until either one test case has run or the campaign is
    /// done. The one-exec granularity is the checkpoint journal's unit.
    pub(crate) fn step(&mut self) -> StepOutcome {
        loop {
            match self.stage {
                Stage::Seeds(i) => {
                    if i < self.seeds.len() {
                        // The seed corpus always runs in full, budget or
                        // not — a campaign with no baseline coverage has
                        // nothing to mutate.
                        self.stage = Stage::Seeds(i + 1);
                        let s = self.seeds[i].clone();
                        self.run_one(&s);
                        return StepOutcome::Ran;
                    }
                    if self.queue.is_empty() {
                        // Guarantee a mutation base even if no seed added
                        // coverage.
                        self.queue.push(QueueEntry {
                            data: self.seeds.first().cloned().unwrap_or_else(|| vec![0]),
                            exec_cycles: 1,
                            found_at: 0,
                            det_done: true,
                            favored: false,
                        });
                    }
                    self.stage = Stage::Pick;
                }
                Stage::Pick => {
                    if self.exhausted() {
                        self.stage = Stage::Done;
                        continue;
                    }
                    // The queue is seeded above and only grows, but a
                    // campaign must never panic on machinery trouble —
                    // bail out instead.
                    let Some(idx) = self.queue.next_index() else {
                        self.stage = Stage::Done;
                        continue;
                    };
                    let det_pending = self.cfg.deterministic_stage
                        && !self.queue.get(idx).map(|e| e.det_done).unwrap_or(true);
                    if det_pending {
                        // Deterministic stage, once per entry.
                        if let Some(e) = self.queue.get_mut(idx) {
                            e.det_done = true;
                        }
                        if self.track_deltas {
                            self.pending_det_done.push(idx);
                        }
                        self.stage = Stage::Det {
                            entry: idx,
                            mutant: 0,
                        };
                    } else {
                        self.stage = Stage::Havoc {
                            entry: idx,
                            iter: 0,
                        };
                    }
                }
                Stage::Det { entry, mutant } => {
                    if self.det_cache.as_ref().map(|(e, _)| *e) != Some(entry) {
                        let base = self
                            .queue
                            .get(entry)
                            .map(|e| e.data.clone())
                            .unwrap_or_default();
                        self.det_cache = Some((entry, mutate::deterministic(&base)));
                    }
                    let total = self.det_cache.as_ref().map_or(0, |(_, m)| m.len());
                    if mutant >= total {
                        self.stage = Stage::Pick;
                        continue;
                    }
                    if self.exhausted() || self.watchdog_tripped() {
                        self.stage = Stage::Pick;
                        continue;
                    }
                    // Bounce, don't abort, if the cache slot is somehow
                    // gone — the campaign control path must never panic.
                    let Some(m) = self
                        .det_cache
                        .as_ref()
                        .and_then(|(_, ms)| ms.get(mutant))
                        .cloned()
                    else {
                        self.stage = Stage::Pick;
                        continue;
                    };
                    self.stage = Stage::Det {
                        entry,
                        mutant: mutant + 1,
                    };
                    self.run_one(&m);
                    return StepOutcome::Ran;
                }
                Stage::Havoc { entry, iter } => {
                    if iter >= HAVOC_ITERS {
                        self.stage = Stage::Pick;
                        continue;
                    }
                    if self.exhausted() || self.watchdog_tripped() {
                        self.stage = Stage::Pick;
                        continue;
                    }
                    let Some(base) = self.queue.get(entry).map(|e| e.data.clone()) else {
                        self.stage = Stage::Pick;
                        continue;
                    };
                    let other = if self.queue.len() > 1 && self.rng.gen_bool(0.2) {
                        let j = self.rng.gen_range(0..self.queue.len());
                        self.queue.get(j).map(|e| e.data.clone())
                    } else {
                        None
                    };
                    let mutant = mutate::havoc(&base, other.as_deref(), &mut self.rng);
                    self.stage = Stage::Havoc {
                        entry,
                        iter: iter + 1,
                    };
                    self.run_one(&mutant);
                    return StepOutcome::Ran;
                }
                Stage::Done => return StepOutcome::Finished,
            }
        }
    }

    /// Assemble the final [`CampaignResult`]. The executor's own
    /// [`closurex::ResilienceReport`] is embedded verbatim — no
    /// field-by-field copying, one source of truth.
    pub(crate) fn finish(&mut self) -> CampaignResult {
        CampaignResult {
            executor: self.executor.name().to_string(),
            execs: self.execs,
            clock_cycles: self.clock,
            edges_found: self.virgin.edges_found(),
            coverage_hash: vmos::wire::fnv1a(self.virgin.as_bytes()),
            crashes: self.crashes.clone(),
            queue_len: self.queue.len(),
            hangs: self.hangs,
            mgmt_cycles: self.mgmt_cycles,
            exec_cycles: self.exec_cycles,
            queue_inputs: self.queue.inputs(),
            resilience: ResilienceCounters {
                executor: self.executor.resilience(),
                harness_faults: self.harness_faults,
                retries: self.retries,
                dropped_inputs: self.dropped_inputs,
                watchdog_trips: self.watchdog_trips,
                supervision: Default::default(),
                storage: Default::default(),
            },
            resume: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Campaign;
    use closurex::forkserver::ForkServerExecutor;
    use closurex::fresh::FreshProcessExecutor;
    use closurex::harness::{ClosureXConfig, ClosureXExecutor};
    use closurex::naive::NaivePersistentExecutor;

    fn run(ex: &mut dyn Executor, seeds: &[Vec<u8>], cfg: &CampaignConfig) -> CampaignResult {
        Campaign::new(seeds, cfg)
            .executor(ex)
            .run()
            .unwrap()
            .finished()
            .expect("no kill configured")
    }

    const TARGET: &str = r#"
        global total;
        fn main() {
            var f = fopen("/fuzz/input", 0);
            if (f == 0) { exit(1); }
            var buf[32];
            var n = fread(buf, 1, 32, f);
            fclose(f);
            if (n < 4) { exit(2); }
            if (load8(buf) == 'F') {
                if (load8(buf + 1) == 'U') {
                    if (load8(buf + 2) == 'Z') {
                        if (load8(buf + 3) == 'Z') {
                            return load64(0); // planted crash
                        }
                        return 3;
                    }
                    return 2;
                }
                return 1;
            }
            total = total + n;
            return 0;
        }
    "#;

    #[test]
    fn campaign_finds_planted_magic_crash() {
        let m = minic::compile("t", TARGET).unwrap();
        let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        let cfg = CampaignConfig {
            budget_cycles: 80_000_000,
            seed: 11,
            deterministic_stage: true,
            stop_after_crashes: 1,
            ..CampaignConfig::default()
        };
        let res = run(&mut ex, &[b"FAAA".to_vec()], &cfg);
        assert!(
            !res.crashes.is_empty(),
            "magic-byte crash should be found: edges={} execs={}",
            res.edges_found,
            res.execs
        );
        assert_eq!(res.crashes[0].crash.kind, vmos::CrashKind::NullPtrDeref);
        assert!(!res.crashes[0].flaky, "revalidation off: never tagged");
        assert!(res.queue_len >= 2, "coverage ladder must grow the queue");
    }

    #[test]
    fn closurex_outruns_forkserver_on_same_budget() {
        let m = minic::compile("t", TARGET).unwrap();
        let budget = 40_000_000;
        let cfg = |seed| CampaignConfig {
            budget_cycles: budget,
            seed,
            deterministic_stage: false,
            stop_after_crashes: 0,
            ..CampaignConfig::default()
        };
        let mut cx = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        let r_cx = run(&mut cx, &[b"AAAA".to_vec()], &cfg(5));
        let mut fk = ForkServerExecutor::new(&m).unwrap();
        let r_fk = run(&mut fk, &[b"AAAA".to_vec()], &cfg(5));
        assert!(
            r_cx.execs > r_fk.execs * 2,
            "closurex {} execs vs forkserver {} execs",
            r_cx.execs,
            r_fk.execs
        );
    }

    #[test]
    fn identical_seeds_give_identical_campaigns() {
        let m = minic::compile("t", TARGET).unwrap();
        let cfg = CampaignConfig {
            budget_cycles: 10_000_000,
            seed: 99,
            deterministic_stage: true,
            stop_after_crashes: 0,
            ..CampaignConfig::default()
        };
        let mut a = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        let ra = run(&mut a, &[b"seed".to_vec()], &cfg);
        let mut b = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        let rb = run(&mut b, &[b"seed".to_vec()], &cfg);
        assert_eq!(ra.execs, rb.execs);
        assert_eq!(ra.edges_found, rb.edges_found);
        assert_eq!(ra.coverage_hash, rb.coverage_hash);
    }

    #[test]
    fn delta_tracking_does_not_change_campaign_behavior() {
        // The journaling hooks must be pure observation: a driver with
        // delta tracking on takes the exact same decisions.
        let m = minic::compile("t", TARGET).unwrap();
        let cfg = CampaignConfig {
            budget_cycles: 8_000_000,
            seed: 42,
            ..CampaignConfig::default()
        };
        let mut a = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        let ra = run(&mut a, &[b"seed".to_vec()], &cfg);
        let mut b = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        let mut d = Driver::new(&mut b, None, &[b"seed".to_vec()], &cfg, true);
        while d.step() == StepOutcome::Ran {}
        let rb = d.finish();
        assert_eq!(ra.execs, rb.execs);
        assert_eq!(ra.clock_cycles, rb.clock_cycles);
        assert_eq!(ra.coverage_hash, rb.coverage_hash);
        assert_eq!(ra.queue_inputs, rb.queue_inputs);
    }

    #[test]
    fn retry_backoff_charges_deterministic_cycles() {
        // Under constant fork refusal every input faults through all
        // retries; with backoff the clock must advance strictly faster
        // than without, and identically across runs with the same seed.
        let m = minic::compile("t", "fn main() { return load64(0); }").unwrap();
        let run = |backoff| {
            let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
            ex.inject_faults(vmos::FaultPlan {
                seed: 5,
                fork_fail: 1.0,
                ..vmos::FaultPlan::none()
            });
            let cfg = CampaignConfig {
                budget_cycles: 2_000_000,
                seed: 7,
                retry_backoff_cycles: backoff,
                ..CampaignConfig::default()
            };
            run(&mut ex, &[b"X".to_vec()], &cfg)
        };
        let with = run(10_000);
        let with2 = run(10_000);
        let without = run(0);
        assert!(with.resilience.retries > 0, "faults must trigger retries");
        assert_eq!(
            with.clock_cycles, with2.clock_cycles,
            "jittered backoff must still be deterministic"
        );
        assert!(
            with.execs < without.execs,
            "backoff must slow the retry hammer: {} vs {}",
            with.execs,
            without.execs
        );
    }

    #[test]
    fn stateful_crash_tagged_flaky_by_revalidation() {
        // Naive persistent execution accumulates `count` across runs; the
        // crash only fires from stale state, so a fresh-process replay
        // cannot reproduce it — exactly what the flaky tag is for.
        let src = r#"
            global count;
            fn main() {
                count = count + 1;
                if (count > 1) { return load64(0); }
                return 0;
            }
        "#;
        let m = minic::compile("t", src).unwrap();
        let mut ex = NaivePersistentExecutor::new(&m).unwrap();
        let mut rv = FreshProcessExecutor::new(&m).unwrap();
        let cfg = CampaignConfig {
            budget_cycles: 1_000_000,
            seed: 3,
            stop_after_crashes: 1,
            revalidate_crashes: true,
            ..CampaignConfig::default()
        };
        let res = Campaign::new(&[b"a".to_vec()], &cfg)
            .executor(&mut ex)
            .revalidator(&mut rv)
            .run()
            .unwrap()
            .finished()
            .unwrap();
        assert!(!res.crashes.is_empty(), "stale-state crash must fire");
        assert!(
            res.crashes[0].flaky,
            "fresh replay can't reproduce a stale-state crash"
        );
    }

    #[test]
    fn genuine_crash_not_tagged_flaky() {
        let m = minic::compile("t", TARGET).unwrap();
        let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        let mut rv = FreshProcessExecutor::new(&m).unwrap();
        let cfg = CampaignConfig {
            budget_cycles: 80_000_000,
            seed: 11,
            stop_after_crashes: 1,
            revalidate_crashes: true,
            ..CampaignConfig::default()
        };
        let res = Campaign::new(&[b"FAAA".to_vec()], &cfg)
            .executor(&mut ex)
            .revalidator(&mut rv)
            .run()
            .unwrap()
            .finished()
            .unwrap();
        assert!(!res.crashes.is_empty());
        assert!(
            !res.crashes[0].flaky,
            "the planted crash reproduces in a fresh process"
        );
    }
}
