//! The campaign driver: one "trial" of the paper's evaluation.
//!
//! Runs a coverage-guided loop against any execution mechanism until a
//! simulated-cycle budget is exhausted, recording throughput, coverage
//! growth, and deduplicated crashes with discovery times.

use std::collections::HashMap;

use closurex::executor::{ExecStatus, Executor};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vmos::cov::VirginMap;
use vmos::CrashKind;

use crate::mutate;
use crate::queue::{Queue, QueueEntry};
use crate::stats::{CampaignResult, CrashRecord, ResilienceCounters};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Cycle budget (the "24 hours" analog).
    pub budget_cycles: u64,
    /// RNG seed (one per trial).
    pub seed: u64,
    /// Run AFL's deterministic stage on fresh queue entries.
    pub deterministic_stage: bool,
    /// Stop early after this many deduplicated crashes (0 = never).
    pub stop_after_crashes: usize,
    /// Re-execute an input up to this many times when the *harness* (not
    /// the target) faults — transient fork refusals usually clear.
    pub max_retries: u32,
    /// Consecutive-hang watchdog: after this many hangs in a row, abandon
    /// the current mutation batch (0 = watchdog off). A wedged substrate
    /// burns the whole budget on fuel exhaustion otherwise.
    pub max_consecutive_hangs: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            budget_cycles: 200_000_000,
            seed: 1,
            deterministic_stage: true,
            stop_after_crashes: 0,
            max_retries: 3,
            max_consecutive_hangs: 32,
        }
    }
}

/// Mutable campaign state, threaded through every execution.
struct Driver<'e> {
    executor: &'e mut dyn Executor,
    queue: Queue,
    virgin: VirginMap,
    clock: u64,
    execs: u64,
    hangs: u64,
    mgmt_cycles: u64,
    exec_cycles: u64,
    crash_sites: HashMap<(CrashKind, String, u32), usize>,
    crashes: Vec<CrashRecord>,
    retries: u64,
    dropped_inputs: u64,
    harness_faults: u64,
    consecutive_hangs: u64,
    watchdog_trips: u64,
    max_retries: u32,
    max_consecutive_hangs: u64,
}

impl Driver<'_> {
    /// Execute one input, fold its results into the campaign state, and
    /// enqueue it if it produced new coverage. Harness faults are retried
    /// up to `max_retries` times — they mean the machinery hiccuped, not
    /// that the input is interesting — and dropped if they never clear.
    fn run_one(&mut self, input: &[u8]) {
        let mut attempts = 0;
        let out = loop {
            let out = self.executor.run(input);
            self.execs += 1;
            self.clock += out.total_cycles();
            self.mgmt_cycles += out.mgmt_cycles;
            self.exec_cycles += out.exec_cycles;
            if out.status.fault().is_none() {
                break out;
            }
            self.harness_faults += 1;
            if attempts >= self.max_retries {
                self.dropped_inputs += 1;
                return;
            }
            attempts += 1;
            self.retries += 1;
        };
        match &out.status {
            ExecStatus::Crash(c) => {
                self.consecutive_hangs = 0;
                let key = c.site_key();
                if let Some(&idx) = self.crash_sites.get(&key) {
                    self.crashes[idx].hits += 1;
                } else {
                    self.crash_sites.insert(key, self.crashes.len());
                    self.crashes.push(CrashRecord {
                        crash: c.clone(),
                        found_at_cycles: self.clock,
                        input: input.to_vec(),
                        hits: 1,
                    });
                }
            }
            ExecStatus::Hang => {
                self.hangs += 1;
                self.consecutive_hangs += 1;
            }
            ExecStatus::Exit(_) => self.consecutive_hangs = 0,
            ExecStatus::Fault(_) => unreachable!("faults handled by retry loop"),
        }
        // Crashes and hangs are saved in their own buckets (AFL's
        // crashes/ and hangs/ dirs); only clean coverage-increasing
        // inputs become queue seeds.
        let clean = matches!(out.status, ExecStatus::Exit(_));
        if self.virgin.merge(self.executor.coverage()) && clean {
            self.queue.push(QueueEntry {
                data: input.to_vec(),
                exec_cycles: out.total_cycles(),
                found_at: self.clock,
                det_done: false,
            });
        }
    }

    /// Has the consecutive-hang watchdog fired? If so, reset it and record
    /// the trip; the caller abandons its current mutation batch.
    fn watchdog_tripped(&mut self) -> bool {
        if self.max_consecutive_hangs > 0 && self.consecutive_hangs >= self.max_consecutive_hangs {
            self.watchdog_trips += 1;
            self.consecutive_hangs = 0;
            return true;
        }
        false
    }

    fn exhausted(&self, cfg: &CampaignConfig) -> bool {
        self.clock >= cfg.budget_cycles
            || (cfg.stop_after_crashes > 0 && self.crashes.len() >= cfg.stop_after_crashes)
    }
}

/// Run one campaign trial. See module docs.
pub fn run_campaign(
    executor: &mut dyn Executor,
    seeds: &[Vec<u8>],
    cfg: &CampaignConfig,
) -> CampaignResult {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut d = Driver {
        executor,
        queue: Queue::new(),
        virgin: VirginMap::new(),
        clock: 0,
        execs: 0,
        hangs: 0,
        mgmt_cycles: 0,
        exec_cycles: 0,
        crash_sites: HashMap::new(),
        crashes: Vec::new(),
        retries: 0,
        dropped_inputs: 0,
        harness_faults: 0,
        consecutive_hangs: 0,
        watchdog_trips: 0,
        max_retries: cfg.max_retries,
        max_consecutive_hangs: cfg.max_consecutive_hangs,
    };

    for s in seeds {
        d.run_one(s);
    }
    if d.queue.is_empty() {
        // Guarantee a mutation base even if no seed added coverage.
        d.queue.push(QueueEntry {
            data: seeds.first().cloned().unwrap_or_else(|| vec![0]),
            exec_cycles: 1,
            found_at: 0,
            det_done: true,
        });
    }

    while !d.exhausted(cfg) {
        // The queue is seeded above and only grows, but a campaign must
        // never panic on machinery trouble — bail out instead.
        let Some(idx) = d.queue.next_index() else {
            break;
        };

        // Deterministic stage, once per entry.
        if cfg.deterministic_stage && !d.queue.get(idx).map(|e| e.det_done).unwrap_or(true) {
            if let Some(e) = d.queue.get_mut(idx) {
                e.det_done = true;
            }
            let Some(base) = d.queue.get(idx).map(|e| e.data.clone()) else {
                continue;
            };
            for m in mutate::deterministic(&base) {
                if d.exhausted(cfg) || d.watchdog_tripped() {
                    break;
                }
                d.run_one(&m);
            }
            continue;
        }

        // Havoc stage.
        let Some(base) = d.queue.get(idx).map(|e| e.data.clone()) else {
            continue;
        };
        for _ in 0..32 {
            if d.exhausted(cfg) || d.watchdog_tripped() {
                break;
            }
            let other = if d.queue.len() > 1 && rng.gen_bool(0.2) {
                let j = rng.gen_range(0..d.queue.len());
                d.queue.get(j).map(|e| e.data.clone())
            } else {
                None
            };
            let mutant = mutate::havoc(&base, other.as_deref(), &mut rng);
            d.run_one(&mutant);
        }
    }

    let exec_report = d.executor.resilience();
    CampaignResult {
        executor: d.executor.name().to_string(),
        execs: d.execs,
        clock_cycles: d.clock,
        edges_found: d.virgin.edges_found(),
        crashes: d.crashes,
        queue_len: d.queue.len(),
        hangs: d.hangs,
        mgmt_cycles: d.mgmt_cycles,
        exec_cycles: d.exec_cycles,
        queue_inputs: d.queue.inputs(),
        resilience: ResilienceCounters {
            respawns: exec_report.respawns,
            divergences: exec_report.divergences,
            integrity_checks: exec_report.integrity_checks,
            quarantined: exec_report.quarantined,
            harness_faults: d.harness_faults,
            retries: d.retries,
            dropped_inputs: d.dropped_inputs,
            watchdog_trips: d.watchdog_trips,
            degradation: exec_report.degradation.name().to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use closurex::forkserver::ForkServerExecutor;
    use closurex::harness::{ClosureXConfig, ClosureXExecutor};

    const TARGET: &str = r#"
        global total;
        fn main() {
            var f = fopen("/fuzz/input", 0);
            if (f == 0) { exit(1); }
            var buf[32];
            var n = fread(buf, 1, 32, f);
            fclose(f);
            if (n < 4) { exit(2); }
            if (load8(buf) == 'F') {
                if (load8(buf + 1) == 'U') {
                    if (load8(buf + 2) == 'Z') {
                        if (load8(buf + 3) == 'Z') {
                            return load64(0); // planted crash
                        }
                        return 3;
                    }
                    return 2;
                }
                return 1;
            }
            total = total + n;
            return 0;
        }
    "#;

    #[test]
    fn campaign_finds_planted_magic_crash() {
        let m = minic::compile("t", TARGET).unwrap();
        let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        let cfg = CampaignConfig {
            budget_cycles: 80_000_000,
            seed: 11,
            deterministic_stage: true,
            stop_after_crashes: 1,
            ..CampaignConfig::default()
        };
        let res = run_campaign(&mut ex, &[b"FAAA".to_vec()], &cfg);
        assert!(
            !res.crashes.is_empty(),
            "magic-byte crash should be found: edges={} execs={}",
            res.edges_found,
            res.execs
        );
        assert_eq!(res.crashes[0].crash.kind, vmos::CrashKind::NullPtrDeref);
        assert!(res.queue_len >= 2, "coverage ladder must grow the queue");
    }

    #[test]
    fn closurex_outruns_forkserver_on_same_budget() {
        let m = minic::compile("t", TARGET).unwrap();
        let budget = 40_000_000;
        let cfg = |seed| CampaignConfig {
            budget_cycles: budget,
            seed,
            deterministic_stage: false,
            stop_after_crashes: 0,
            ..CampaignConfig::default()
        };
        let mut cx = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        let r_cx = run_campaign(&mut cx, &[b"AAAA".to_vec()], &cfg(5));
        let mut fk = ForkServerExecutor::new(&m).unwrap();
        let r_fk = run_campaign(&mut fk, &[b"AAAA".to_vec()], &cfg(5));
        assert!(
            r_cx.execs > r_fk.execs * 2,
            "closurex {} execs vs forkserver {} execs",
            r_cx.execs,
            r_fk.execs
        );
    }

    #[test]
    fn identical_seeds_give_identical_campaigns() {
        let m = minic::compile("t", TARGET).unwrap();
        let cfg = CampaignConfig {
            budget_cycles: 10_000_000,
            seed: 99,
            deterministic_stage: true,
            stop_after_crashes: 0,
            ..CampaignConfig::default()
        };
        let mut a = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        let ra = run_campaign(&mut a, &[b"seed".to_vec()], &cfg);
        let mut b = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        let rb = run_campaign(&mut b, &[b"seed".to_vec()], &cfg);
        assert_eq!(ra.execs, rb.execs);
        assert_eq!(ra.edges_found, rb.edges_found);
    }
}
