//! # aflrs — the coverage-guided fuzzer
//!
//! An AFL++-style fuzzer over the `closurex` execution mechanisms:
//!
//! * a seed [`queue`] grown by coverage feedback (`has_new_bits` over a
//!   bucketed virgin map, exactly AFL's algorithm),
//! * a [`mutate`] stage with deterministic bitflip/arith/interesting passes
//!   and stacked havoc + splice,
//! * a [`campaign`] driver that runs against any
//!   [`closurex::executor::Executor`] under a simulated-cycle budget —
//!   the evaluation's "24 hour trial" analog,
//! * [`stats`] with crash deduplication and time-to-bug records, and the
//!   [`mwu`] Mann-Whitney U test the paper reports ρ-values with.
//!
//! Both the ClosureX and AFL++-baseline campaigns share this exact code, so
//! measured differences come from the execution mechanism alone — the
//! paper's controlled-comparison setup (§5.3).

pub mod builder;
pub mod campaign;
pub mod checkpoint;
pub mod mutate;
pub mod mwu;
pub mod proc;
pub mod queue;
pub mod rpc;
pub mod service;
pub mod shard;
pub mod stats;
pub mod storage;
pub mod supervise;

#[cfg(test)]
mod proptests;

pub use builder::{Campaign, CampaignError, Isolation};
pub use campaign::CampaignConfig;
pub use checkpoint::{
    CampaignOutcome, CheckpointConfig, CheckpointError, FsyncPolicy, ResumeReport,
};
pub use proc::{worker_main_hook, WORKER_ENV};
pub use rpc::{
    Degraded, MemNet, RemoteAdmissionError, RemoteError, RemoteHandle, RemoteOptions,
    RemoteService, RpcCounters, RpcError, RpcServer, ServedBy, ServerOptions,
};
pub use service::{
    AdmissionError, CampaignHandle, CampaignSpec, CampaignState, HealthReport, Service,
    ServiceConfig, ServiceError, ServiceStats, SpecResolver,
};
pub use shard::{DEFAULT_LANES, DEFAULT_SYNC_EPOCHS};
pub use stats::{CampaignResult, CrashRecord, ResilienceCounters};
pub use storage::{StorageCounters, StorageDegradation};
pub use supervise::{LaneDegradation, LaneFault, SupervisionCounters, SupervisorConfig};

/// Simulated cycles per simulated second (used to convert campaign clocks
/// into the paper's seconds / 24-hour framing).
pub const CYCLES_PER_SECOND: u64 = 20_000_000;

/// Cycles in a simulated 24-hour trial.
pub const CYCLES_PER_DAY: u64 = CYCLES_PER_SECOND * 86_400;
