//! The storage fault plane: every checkpoint/journal byte goes through
//! here, so every storage failure mode is contained, typed, and
//! deterministically testable.
//!
//! PRs 2/5/6 made campaigns survive *compute* faults — panics, hangs,
//! SIGKILLed worker processes. This module does the same for the storage
//! those recovery paths bottom out in. A [`Storage`] handle wraps each
//! checkpoint I/O operation (snapshot writes, journal appends, rotation
//! unlinks, orphan sweeps) in a **recovery ladder**:
//!
//! 1. **Retry with seeded exponential backoff** — transient errors
//!    (ENOSPC, EIO, short writes; injected *or* real) are retried up to
//!    the configured budget. Backoff cycles are accounted in
//!    [`StorageCounters`] but never charged to the simulated campaign
//!    clock: checkpoint I/O must stay invisible in the result.
//! 2. **Typed graceful degradation** — an operation that fails past the
//!    retry budget marks its *stream* degraded: the campaign drops to
//!    in-memory checkpointing on that stream (subsequent writes become
//!    counted no-ops) and a [`StorageDegradation`] is surfaced in the
//!    campaign result. Never a raw `io::Error` abort.
//! 3. **Crash containment** — injected crash-at-boundary faults stop the
//!    run exactly as a power loss would (partial bytes on disk, nothing
//!    after the boundary runs); the resume path's scrub-and-repair
//!    machinery (see [`crate::checkpoint`]) restores the campaign
//!    byte-identically from whatever survived.
//!
//! Fault injection is driven by a position-pure
//! [`DiskFaultPlan`](vmos::DiskFaultPlan): decisions are keyed by
//! `(stream, op, attempt)`, where stream 0 is the campaign's coordinator
//! control plane (snapshots, rotation, sweeps) and stream `1 + lane` is
//! that lane's journal stream. Per-stream operation numbering makes the
//! same plan hit the same operation regardless of how concurrent lanes
//! interleave — the same scheduling-independence argument as
//! [`OrchFaultPlan`](vmos::OrchFaultPlan).

use std::fs;
use std::io::{self, Read as _, Seek, SeekFrom, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};
use vmos::{DiskFaultKind, DiskFaultPlan, Reader, WireError, Writer};

/// A storage stream retired to in-memory checkpointing after exhausting
/// its retry budget. Typed and reported through
/// [`ResilienceCounters`](crate::ResilienceCounters) — the campaign
/// result carries every degradation, never a silent drop.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageDegradation {
    /// Which I/O stream degraded (0 = coordinator, `1 + lane` = that
    /// lane's journal stream).
    pub stream: u64,
    /// Operation index whose repeated failures exhausted the budget.
    pub op: u64,
    /// Total failed attempts (initial + retries) before degradation.
    pub attempts: u64,
    /// Short name of the last error observed (`no_space`, `io_error`,
    /// `short_write`, or a real OS error rendered as text).
    pub last_error: String,
}

/// Storage-plane accounting surfaced through
/// [`ResilienceCounters`](crate::ResilienceCounters). These describe the
/// *recovery process*, not the campaign's fuzzing outcome: every field is
/// zero on a clean run, and a fault-recovered run matches its unfaulted
/// twin everywhere except this block (see
/// [`CampaignResult::sans_storage`](crate::CampaignResult::sans_storage)).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageCounters {
    /// Transient write errors observed (injected or real).
    pub transient_faults: u64,
    /// Operation attempts retried after a transient error.
    pub retries: u64,
    /// Simulated backoff cycles waited before retries. Accounted here,
    /// never charged to the campaign clock — checkpoint I/O is invisible.
    pub backoff_cycles: u64,
    /// Injected crash-at-boundary / rename-lost faults that stopped a run.
    pub crashes: u64,
    /// Injected silent post-commit bit flips.
    pub bitrot_injected: u64,
    /// Operations skipped because their stream had already degraded.
    pub writes_skipped: u64,
    /// Non-fatal sweep/rotation unlink failures (counted, not fatal).
    pub sweep_warnings: u64,
    /// Torn journal tail records dropped during resume replay.
    pub torn_records_dropped: u64,
    /// Snapshot generations that failed checksum validation on resume.
    pub corrupt_snapshots: u64,
    /// Corrupt snapshot generations rewritten from an older good
    /// generation plus journal replay (scrub-and-repair).
    pub snapshots_repaired: u64,
    /// Streams retired to in-memory checkpointing.
    pub degradations: Vec<StorageDegradation>,
}

impl StorageCounters {
    /// Did the storage plane do anything at all?
    pub fn is_quiet(&self) -> bool {
        self == &StorageCounters::default()
    }

    /// Fold another campaign's (or worker's) counters into this one.
    pub fn absorb(&mut self, other: &StorageCounters) {
        self.transient_faults += other.transient_faults;
        self.retries += other.retries;
        self.backoff_cycles += other.backoff_cycles;
        self.crashes += other.crashes;
        self.bitrot_injected += other.bitrot_injected;
        self.writes_skipped += other.writes_skipped;
        self.sweep_warnings += other.sweep_warnings;
        self.torn_records_dropped += other.torn_records_dropped;
        self.corrupt_snapshots += other.corrupt_snapshots;
        self.snapshots_repaired += other.snapshots_repaired;
        self.degradations.extend(other.degradations.iter().cloned());
    }

    /// Encode for transfer from a worker process (barrier reporting).
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.put_u64(self.transient_faults);
        w.put_u64(self.retries);
        w.put_u64(self.backoff_cycles);
        w.put_u64(self.crashes);
        w.put_u64(self.bitrot_injected);
        w.put_u64(self.writes_skipped);
        w.put_u64(self.sweep_warnings);
        w.put_u64(self.torn_records_dropped);
        w.put_u64(self.corrupt_snapshots);
        w.put_u64(self.snapshots_repaired);
        w.put_usize(self.degradations.len());
        for d in &self.degradations {
            w.put_u64(d.stream);
            w.put_u64(d.op);
            w.put_u64(d.attempts);
            w.put_str(&d.last_error);
        }
    }

    /// Decode counters written by [`StorageCounters::encode`].
    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let transient_faults = r.get_u64()?;
        let retries = r.get_u64()?;
        let backoff_cycles = r.get_u64()?;
        let crashes = r.get_u64()?;
        let bitrot_injected = r.get_u64()?;
        let writes_skipped = r.get_u64()?;
        let sweep_warnings = r.get_u64()?;
        let torn_records_dropped = r.get_u64()?;
        let corrupt_snapshots = r.get_u64()?;
        let snapshots_repaired = r.get_u64()?;
        let n = r.get_count()?;
        // Each degradation is at least 28 bytes on the wire.
        if n > r.remaining() / 28 {
            return Err(WireError::Truncated);
        }
        let mut degradations = Vec::with_capacity(n);
        for _ in 0..n {
            degradations.push(StorageDegradation {
                stream: r.get_u64()?,
                op: r.get_u64()?,
                attempts: r.get_u64()?,
                last_error: r.get_str()?,
            });
        }
        Ok(StorageCounters {
            transient_faults,
            retries,
            backoff_cycles,
            crashes,
            bitrot_injected,
            writes_skipped,
            sweep_warnings,
            torn_records_dropped,
            corrupt_snapshots,
            snapshots_repaired,
            degradations,
        })
    }
}

/// What one mediated storage operation did, from the caller's view. The
/// retry/degrade ladder runs *inside* the operation, so callers only ever
/// see these three — never a raw `io::Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpOutcome {
    /// The operation committed (possibly after retries).
    Done,
    /// An injected crash fault fired at this boundary: the machine is
    /// "dead" — partial bytes may be on disk, and the caller must stop
    /// the run exactly as a power loss would (`CampaignOutcome::Killed`
    /// in-process, `process::abort()` in a worker).
    Crashed,
    /// The stream is degraded (now or previously): the operation was
    /// dropped, counted, and the campaign continues in-memory.
    Skipped,
}

impl OpOutcome {
    /// Did this boundary kill the machine?
    pub(crate) fn crashed(self) -> bool {
        self == OpOutcome::Crashed
    }
}

/// What the fault plane asks an operation body to do on this attempt.
pub(crate) enum Injected {
    /// Perform the real operation.
    None,
    /// Write only a prefix of the bytes (the payload carries the aux bits
    /// that choose how many); the attempt then fails or crashes.
    Partial(u64),
    /// Skip the rename itself — power loss between `rename` and the
    /// directory fsync lost the new directory entry.
    SkipRename,
    /// Perform the real operation, then flip one committed bit (the
    /// payload carries the aux bits that choose which).
    Bitrot(u64),
}

/// How failures inside an operation are treated.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FailureMode {
    /// Retry with backoff; degrade the stream past the budget.
    Retry,
    /// Count a warning and move on — for cleanup work (orphan sweeps,
    /// rotation unlinks) whose failure must never stop a campaign.
    Warn,
}

struct StreamState {
    /// Next operation index.
    ops: u64,
    /// Stream retired to in-memory checkpointing.
    degraded: bool,
}

struct StorageShared {
    plan: DiskFaultPlan,
    max_retries: u32,
    backoff_cycles: u64,
    /// Set when any stream hits an injected crash boundary; the epoch
    /// loops poll it to stop the run.
    crashed: AtomicBool,
    state: Mutex<SharedState>,
}

struct SharedState {
    counters: StorageCounters,
    streams: Vec<StreamState>,
}

impl SharedState {
    fn stream(&mut self, stream: u64) -> &mut StreamState {
        let idx = stream as usize;
        while self.streams.len() <= idx {
            self.streams.push(StreamState {
                ops: 0,
                degraded: false,
            });
        }
        &mut self.streams[idx]
    }
}

/// A handle onto the campaign's storage plane, bound to one I/O stream.
/// Cheap to clone; clones share the fault plan, counters, and per-stream
/// operation numbering.
#[derive(Clone)]
pub(crate) struct Storage {
    shared: Arc<StorageShared>,
    stream: u64,
    /// Added to the attempt coordinate of every fault decision. Worker
    /// processes set this to their lane-epoch attempt so a targeted fault
    /// consumed by attempt 0 does not re-fire when the supervisor re-runs
    /// the epoch in a respawned worker.
    base_attempt: u32,
}

impl Storage {
    /// A storage plane with `plan` injected, bound to stream 0 (the
    /// coordinator control plane).
    pub(crate) fn new(plan: DiskFaultPlan, max_retries: u32, backoff_cycles: u64) -> Self {
        Storage {
            shared: Arc::new(StorageShared {
                plan,
                max_retries,
                backoff_cycles,
                crashed: AtomicBool::new(false),
                state: Mutex::new(SharedState {
                    counters: StorageCounters::default(),
                    streams: Vec::new(),
                }),
            }),
            stream: 0,
            base_attempt: 0,
        }
    }

    /// A fault-free plane with default budgets — for paths that need a
    /// handle but no injection (unit tests, ad-hoc maintenance).
    #[cfg(test)]
    pub(crate) fn quiet() -> Self {
        Storage::new(DiskFaultPlan::none(), 3, 2_000)
    }

    /// This plane, rebound to `stream` (shares counters and numbering).
    pub(crate) fn stream(&self, stream: u64) -> Storage {
        Storage {
            shared: Arc::clone(&self.shared),
            stream,
            base_attempt: self.base_attempt,
        }
    }

    /// This plane with fault decisions offset by `base_attempt`.
    pub(crate) fn with_base_attempt(&self, base_attempt: u32) -> Storage {
        Storage {
            shared: Arc::clone(&self.shared),
            stream: self.stream,
            base_attempt,
        }
    }

    /// Has any stream hit an injected crash boundary?
    pub(crate) fn crashed(&self) -> bool {
        self.shared.crashed.load(Ordering::SeqCst)
    }

    /// Snapshot of the accumulated counters.
    pub(crate) fn counters(&self) -> StorageCounters {
        self.shared.state.lock().expect("storage lock").counters.clone()
    }

    /// Drain the accumulated counters (worker barrier reporting: each
    /// barrier ships the delta since the previous one).
    pub(crate) fn take_counters(&self) -> StorageCounters {
        std::mem::take(&mut self.shared.state.lock().expect("storage lock").counters)
    }

    /// Fold a worker's reported counters into this plane's.
    pub(crate) fn absorb(&self, other: &StorageCounters) {
        self.shared
            .state
            .lock()
            .expect("storage lock")
            .counters
            .absorb(other);
    }

    /// Record `n` cleanup failures observed inside a sweep/rotation body
    /// (individual unlink errors the operation itself swallowed).
    pub(crate) fn note_sweep_warnings(&self, n: u64) {
        self.shared
            .state
            .lock()
            .expect("storage lock")
            .counters
            .sweep_warnings += n;
    }

    /// Record a torn journal tail dropped during resume replay.
    pub(crate) fn note_torn_records(&self, n: u64) {
        self.shared
            .state
            .lock()
            .expect("storage lock")
            .counters
            .torn_records_dropped += n;
    }

    /// Record a snapshot generation that failed validation on resume.
    pub(crate) fn note_corrupt_snapshot(&self) {
        self.shared
            .state
            .lock()
            .expect("storage lock")
            .counters
            .corrupt_snapshots += 1;
    }

    /// Record a scrub-and-repair snapshot rewrite.
    pub(crate) fn note_snapshot_repaired(&self) {
        self.shared
            .state
            .lock()
            .expect("storage lock")
            .counters
            .snapshots_repaired += 1;
    }

    /// Run one mediated operation whose failure is retried and, past the
    /// budget, degrades the stream. `is_rename` marks the commit-rename
    /// boundary (the only place a lost-rename fault is meaningful).
    pub(crate) fn op(
        &self,
        is_rename: bool,
        body: impl FnMut(&Injected) -> io::Result<()>,
    ) -> OpOutcome {
        self.run_op(FailureMode::Retry, is_rename, body)
    }

    /// Run one mediated *cleanup* operation: failures are counted as
    /// warnings and never retried, degraded, or fatal. Crash faults still
    /// crash — a kill point is a kill point even during cleanup.
    pub(crate) fn cleanup_op(&self, body: impl FnMut(&Injected) -> io::Result<()>) -> OpOutcome {
        self.run_op(FailureMode::Warn, false, body)
    }

    fn run_op(
        &self,
        mode: FailureMode,
        is_rename: bool,
        mut body: impl FnMut(&Injected) -> io::Result<()>,
    ) -> OpOutcome {
        let shared = &*self.shared;
        let op = {
            let mut st = shared.state.lock().expect("storage lock");
            let s = st.stream(self.stream);
            if s.degraded {
                st.counters.writes_skipped += 1;
                return OpOutcome::Skipped;
            }
            let op = s.ops;
            s.ops += 1;
            op
        };
        let mut attempt: u32 = 0;
        loop {
            let coord = self.base_attempt.saturating_add(attempt);
            let decided = shared.plan.decide(self.stream, op, coord);
            let aux = shared.plan.aux_bits(self.stream, op, coord);
            let failed: io::Result<()> = match decided {
                None => body(&Injected::None),
                Some(DiskFaultKind::NoSpace) => Err(io::Error::from_raw_os_error(28)), // ENOSPC
                Some(DiskFaultKind::Io) => Err(io::Error::from_raw_os_error(5)),       // EIO
                Some(DiskFaultKind::ShortWrite) => {
                    let _ = body(&Injected::Partial(aux));
                    Err(io::Error::from_raw_os_error(5))
                }
                Some(DiskFaultKind::CrashAtBoundary) => {
                    let _ = body(&Injected::Partial(aux));
                    let mut st = shared.state.lock().expect("storage lock");
                    st.counters.crashes += 1;
                    shared.crashed.store(true, Ordering::SeqCst);
                    return OpOutcome::Crashed;
                }
                Some(DiskFaultKind::RenameLost) => {
                    let inj = if is_rename {
                        Injected::SkipRename
                    } else {
                        Injected::Partial(aux)
                    };
                    let _ = body(&inj);
                    let mut st = shared.state.lock().expect("storage lock");
                    st.counters.crashes += 1;
                    shared.crashed.store(true, Ordering::SeqCst);
                    return OpOutcome::Crashed;
                }
                Some(DiskFaultKind::Bitrot) => {
                    let res = body(&Injected::Bitrot(aux));
                    if res.is_ok() {
                        shared.state.lock().expect("storage lock").counters.bitrot_injected += 1;
                    }
                    res
                }
            };
            let err = match failed {
                Ok(()) => return OpOutcome::Done,
                Err(e) => e,
            };
            let last_error = decided
                .map(|k| k.name().to_string())
                .unwrap_or_else(|| err.to_string());
            let mut st = shared.state.lock().expect("storage lock");
            if mode == FailureMode::Warn {
                st.counters.sweep_warnings += 1;
                return OpOutcome::Done;
            }
            st.counters.transient_faults += 1;
            if attempt >= shared.max_retries {
                st.counters.degradations.push(StorageDegradation {
                    stream: self.stream,
                    op,
                    attempts: u64::from(attempt) + 1,
                    last_error,
                });
                st.stream(self.stream).degraded = true;
                return OpOutcome::Skipped;
            }
            attempt += 1;
            st.counters.retries += 1;
            if shared.backoff_cycles > 0 {
                // PR 2's backoff shape: double per attempt, plus seeded
                // jitter in [0, base). Accounted, never charged to the
                // simulated clock — checkpoint I/O stays invisible.
                let base = shared.backoff_cycles;
                let delay = (base << u64::from(attempt - 1).min(10)) + aux % base;
                st.counters.backoff_cycles += delay;
            }
        }
    }
}

/// Write `bytes` to `path`, honoring an injected partial write or bit
/// flip. The file is created (truncated) fresh on every attempt, so
/// retries are idempotent.
pub(crate) fn faulted_create(path: &Path, bytes: &[u8], inject: &Injected) -> io::Result<()> {
    let mut f = fs::File::create(path)?;
    match inject {
        Injected::Partial(aux) => {
            let keep = (*aux as usize) % (bytes.len() + 1);
            f.write_all(&bytes[..keep])
        }
        Injected::Bitrot(aux) => {
            let mut rotted = bytes.to_vec();
            flip_bit(&mut rotted, *aux);
            f.write_all(&rotted)
        }
        _ => f.write_all(bytes),
    }
}

/// Flip one bit of `bytes` chosen by `aux` (no-op on an empty buffer).
pub(crate) fn flip_bit(bytes: &mut [u8], aux: u64) {
    if bytes.is_empty() {
        return;
    }
    let bit = aux as usize % (bytes.len() * 8);
    bytes[bit / 8] ^= 1 << (bit % 8);
}

/// Flip one committed bit of the file at `path` — the on-platter bitrot
/// a post-commit scrub exists to catch.
pub(crate) fn flip_bit_in_file(path: &Path, aux: u64) -> io::Result<()> {
    let mut f = fs::OpenOptions::new().read(true).write(true).open(path)?;
    let len = f.metadata()?.len();
    if len == 0 {
        return Ok(());
    }
    let bit = aux % (len * 8);
    let mut byte = [0u8];
    f.seek(SeekFrom::Start(bit / 8))?;
    f.read_exact(&mut byte)?;
    byte[0] ^= 1 << (bit % 8);
    f.seek(SeekFrom::Start(bit / 8))?;
    f.write_all(&byte)
}

/// Fsync a directory so a rename (or unlink) inside it survives power
/// loss. Directory fsync is advisory on some filesystems; failures are
/// reported as plain I/O errors and ride the caller's retry ladder.
pub(crate) fn fsync_dir(dir: &Path) -> io::Result<()> {
    fs::File::open(dir)?.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_ops_count_nothing() {
        let s = Storage::quiet();
        let dir = std::env::temp_dir().join(format!("aflrs-storage-clean-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        for i in 0..4 {
            let path = dir.join(format!("f{i}"));
            assert_eq!(
                s.op(false, |inj| faulted_create(&path, b"payload", inj)),
                OpOutcome::Done
            );
        }
        assert!(s.counters().is_quiet(), "clean runs leave zero counters");
        assert!(!s.crashed());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_fault_retries_then_succeeds() {
        let plan = DiskFaultPlan {
            targeted: vec![vmos::DiskFault {
                stream: 0,
                op: 1,
                kind: DiskFaultKind::NoSpace,
                fires: 2,
            }],
            ..DiskFaultPlan::default()
        };
        let s = Storage::new(plan, 3, 1_000);
        assert_eq!(s.op(false, |_| Ok(())), OpOutcome::Done); // op 0 clean
        assert_eq!(s.op(false, |_| Ok(())), OpOutcome::Done); // op 1 retried through
        let c = s.counters();
        assert_eq!(c.transient_faults, 2);
        assert_eq!(c.retries, 2);
        assert!(c.backoff_cycles >= 3_000, "1k + 2k doubling minimum");
        assert!(c.degradations.is_empty());
    }

    #[test]
    fn exhausted_budget_degrades_stream_not_campaign() {
        let plan = DiskFaultPlan {
            targeted: vec![vmos::DiskFault {
                stream: 2,
                op: 0,
                kind: DiskFaultKind::Io,
                fires: 99,
            }],
            ..DiskFaultPlan::default()
        };
        let s = Storage::new(plan, 2, 0);
        let lane = s.stream(2);
        assert_eq!(lane.op(false, |_| Ok(())), OpOutcome::Skipped);
        // The stream is now in-memory: later ops skip without touching disk.
        let mut body_ran = false;
        assert_eq!(
            lane.op(false, |_| {
                body_ran = true;
                Ok(())
            }),
            OpOutcome::Skipped
        );
        assert!(!body_ran, "degraded streams must not attempt I/O");
        // Sibling streams are untouched.
        assert_eq!(s.op(false, |_| Ok(())), OpOutcome::Done);
        let c = s.counters();
        assert_eq!(c.degradations.len(), 1);
        assert_eq!(c.degradations[0].stream, 2);
        assert_eq!(c.degradations[0].attempts, 3);
        assert_eq!(c.degradations[0].last_error, "io_error");
        assert_eq!(c.writes_skipped, 1);
    }

    #[test]
    fn crash_boundary_sets_the_dead_flag() {
        let plan = DiskFaultPlan::at(0, 0, DiskFaultKind::CrashAtBoundary);
        let s = Storage::new(plan, 3, 0);
        assert_eq!(s.op(false, |_| Ok(())), OpOutcome::Crashed);
        assert!(s.crashed());
        assert_eq!(s.counters().crashes, 1);
    }

    #[test]
    fn base_attempt_clears_consumed_faults() {
        let plan = DiskFaultPlan::at(1, 0, DiskFaultKind::CrashAtBoundary);
        let retry = Storage::new(plan, 3, 0).stream(1).with_base_attempt(1);
        assert_eq!(
            retry.op(false, |_| Ok(())),
            OpOutcome::Done,
            "a fires=1 fault consumed by attempt 0 must not re-fire on the re-run"
        );
    }

    #[test]
    fn warn_mode_never_retries_or_degrades() {
        let plan = DiskFaultPlan {
            targeted: vec![vmos::DiskFault {
                stream: 0,
                op: 0,
                kind: DiskFaultKind::Io,
                fires: 99,
            }],
            ..DiskFaultPlan::default()
        };
        let s = Storage::new(plan, 3, 0);
        assert_eq!(s.cleanup_op(|_| Ok(())), OpOutcome::Done);
        let c = s.counters();
        assert_eq!(c.sweep_warnings, 1);
        assert_eq!(c.retries, 0);
        assert!(c.degradations.is_empty());
        assert_eq!(s.op(false, |_| Ok(())), OpOutcome::Done, "stream still live");
    }

    #[test]
    fn counters_round_trip_on_the_wire() {
        let mut c = StorageCounters {
            transient_faults: 3,
            retries: 2,
            backoff_cycles: 7_000,
            crashes: 1,
            bitrot_injected: 1,
            writes_skipped: 4,
            sweep_warnings: 2,
            torn_records_dropped: 1,
            corrupt_snapshots: 2,
            snapshots_repaired: 1,
            degradations: Vec::new(),
        };
        c.degradations.push(StorageDegradation {
            stream: 3,
            op: 17,
            attempts: 4,
            last_error: "no_space".into(),
        });
        let mut w = Writer::new();
        c.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(StorageCounters::decode(&mut r).unwrap(), c);
        assert!(r.is_empty());
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(StorageCounters::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn absorb_sums_and_concatenates() {
        let mut a = StorageCounters {
            retries: 1,
            ..StorageCounters::default()
        };
        let b = StorageCounters {
            retries: 2,
            torn_records_dropped: 1,
            degradations: vec![StorageDegradation::default()],
            ..StorageCounters::default()
        };
        a.absorb(&b);
        assert_eq!(a.retries, 3);
        assert_eq!(a.torn_records_dropped, 1);
        assert_eq!(a.degradations.len(), 1);
        assert!(!a.is_quiet());
        assert!(StorageCounters::default().is_quiet());
    }

    #[test]
    fn bit_flip_helpers_flip_exactly_one_bit() {
        let mut buf = vec![0u8; 16];
        flip_bit(&mut buf, 0x1234);
        assert_eq!(buf.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
        let path = std::env::temp_dir().join(format!("aflrs-rot-{}", std::process::id()));
        fs::write(&path, vec![0u8; 32]).unwrap();
        flip_bit_in_file(&path, 0x99).unwrap();
        let rotted = fs::read(&path).unwrap();
        assert_eq!(rotted.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
        let _ = fs::remove_file(&path);
    }
}
