//! The unified campaign entry point.
//!
//! One builder is the whole single-campaign API (the historical
//! `run_campaign*` free functions are gone; multi-tenant servers use
//! [`crate::service`] on top of this):
//!
//! ```no_run
//! # use aflrs::{Campaign, CampaignConfig, CheckpointConfig};
//! # use closurex::harness::{ClosureXConfig, ClosureXExecutor};
//! # let m = minic::compile("t", "fn main() { return 0; }").unwrap();
//! # let seeds = vec![b"seed".to_vec()];
//! # let cfg = CampaignConfig::default();
//! let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
//! let result = Campaign::new(&seeds, &cfg)
//!     .executor(&mut ex)
//!     .checkpoint(CheckpointConfig::new("/tmp/ckpt"))
//!     .run()
//!     .unwrap();
//! ```
//!
//! Sharded campaigns hand the builder an
//! [`ExecutorFactory`](closurex::executor::ExecutorFactory) instead of a
//! borrowed executor — each lane needs its own instance:
//!
//! ```ignore
//! let result = Campaign::new(&seeds, &cfg).factory(&factory).shards(4).run()?;
//! ```

use closurex::executor::{Executor, ExecutorFactory};
use closurex::resilience::HarnessError;

use crate::campaign::{CampaignConfig, Driver, StepOutcome};
use crate::checkpoint::{
    resume_impl, run_checkpointed_impl, CampaignOutcome, CheckpointConfig, CheckpointError,
    ResumeReport,
};
use crate::shard::{
    resume_sharded, run_sharded, ShardPlan, DEFAULT_LANES, DEFAULT_SYNC_EPOCHS,
};
use crate::supervise::SupervisorConfig;

/// Where a sharded campaign's lanes execute.
///
/// A pure containment knob: both modes run the same lane schedule and
/// produce bit-identical [`crate::stats::CampaignResult`]s (modulo
/// supervision counters, which record *how* faults were contained, not
/// *what* the campaign found).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Isolation {
    /// Lanes run on worker threads inside this process (the default).
    #[default]
    InProcess,
    /// Each lane runs in a supervised child process speaking a
    /// checksum-framed pipe protocol — a crashed, killed, or wedged lane
    /// cannot take the campaign down with it. Requires a factory whose
    /// [`closurex::executor::ExecutorFactory::worker_spec`] is `Some` and
    /// a binary whose `main` calls [`crate::proc::worker_main_hook`].
    Process,
}

/// Why a campaign could not run.
#[derive(Debug)]
pub enum CampaignError {
    /// The builder was configured inconsistently.
    Config(&'static str),
    /// Checkpointing failed (I/O, corruption, target mismatch, …).
    Checkpoint(CheckpointError),
    /// The executor factory failed to build a lane executor.
    Build(HarnessError),
    /// A worker thread died outside supervised lane execution — the one
    /// failure the lane supervisor cannot contain or replay.
    WorkerLost(&'static str),
    /// Every lane exhausted its retry budget and was retired; there is no
    /// live lane left to fold the remaining cycle budget into.
    AllLanesLost {
        /// The epoch at which the last live lane was retired.
        epoch: u64,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Config(msg) => write!(f, "campaign misconfigured: {msg}"),
            CampaignError::Checkpoint(e) => write!(f, "{e}"),
            CampaignError::Build(e) => write!(f, "executor factory failed: {e}"),
            CampaignError::WorkerLost(msg) => write!(f, "worker pool failed: {msg}"),
            CampaignError::AllLanesLost { epoch } => write!(
                f,
                "every lane degraded out by epoch {epoch}: no live lane remains"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<CheckpointError> for CampaignError {
    fn from(e: CheckpointError) -> Self {
        CampaignError::Checkpoint(e)
    }
}

/// Builder-style campaign runner. See the module docs.
///
/// Exactly one of [`Campaign::executor`] (single-driver campaign) or
/// [`Campaign::factory`] (sharded campaign) must be set. Everything else
/// is optional: [`Campaign::checkpoint`] arms crash-safe persistence,
/// [`Campaign::shards`]/[`Campaign::lanes`]/[`Campaign::sync_epochs`]
/// shape the sharded decomposition (and require a factory when
/// `shards > 1`).
pub struct Campaign<'a> {
    seeds: &'a [Vec<u8>],
    cfg: CampaignConfig,
    executor: Option<&'a mut dyn Executor>,
    revalidator: Option<&'a mut dyn Executor>,
    factory: Option<&'a dyn ExecutorFactory>,
    checkpoint: Option<CheckpointConfig>,
    shards: usize,
    lanes: usize,
    sync_epochs: u64,
    supervision: SupervisorConfig,
    supervision_set: bool,
    isolation: Isolation,
    disk_faults: Option<vmos::DiskFaultPlan>,
    decode_opt: bool,
}

impl<'a> Campaign<'a> {
    /// Start describing a campaign over `seeds` with `cfg`.
    pub fn new(seeds: &'a [Vec<u8>], cfg: &CampaignConfig) -> Self {
        Campaign {
            seeds,
            cfg: cfg.clone(),
            executor: None,
            revalidator: None,
            factory: None,
            checkpoint: None,
            shards: 1,
            lanes: DEFAULT_LANES,
            sync_epochs: DEFAULT_SYNC_EPOCHS,
            supervision: SupervisorConfig::default(),
            supervision_set: false,
            isolation: Isolation::default(),
            disk_faults: None,
            decode_opt: true,
        }
    }

    /// Enable (default) or disable the decode-time FIR optimizer for this
    /// campaign. With `false`, every lane — in-process worker threads and
    /// supervised child processes alike — runs the plain 1:1 decoded
    /// streams; the run-time mirror of building with `--features
    /// no-fir-opt`. The escape hatch for bisecting a suspected optimizer
    /// miscompile without a rebuild.
    pub fn decode_opt(mut self, on: bool) -> Self {
        self.decode_opt = on;
        self
    }

    /// Run on this (borrowed) executor — the single-driver mode.
    pub fn executor(mut self, ex: &'a mut dyn Executor) -> Self {
        self.executor = Some(ex);
        self
    }

    /// Replay first-discovery crashes in this executor when
    /// [`CampaignConfig::revalidate_crashes`] is set (single-driver mode;
    /// sharded lanes build their own via
    /// [`ExecutorFactory::build_revalidator`](closurex::executor::ExecutorFactory::build_revalidator)).
    pub fn revalidator(mut self, rv: &'a mut dyn Executor) -> Self {
        self.revalidator = Some(rv);
        self
    }

    /// Build each lane's executor from this factory — the sharded mode.
    pub fn factory(mut self, f: &'a dyn ExecutorFactory) -> Self {
        self.factory = Some(f);
        self
    }

    /// Arm crash-safe checkpointing. In sharded mode, snapshots land at
    /// epoch barriers and [`CheckpointConfig::snapshot_every_execs`] is
    /// ignored.
    pub fn checkpoint(mut self, ck: CheckpointConfig) -> Self {
        self.checkpoint = Some(ck);
        self
    }

    /// Worker threads for the sharded mode (clamped to `[1, lanes]`). A
    /// pure throughput knob: any shard count produces bit-identical
    /// results on the same lane decomposition.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Logical lanes the campaign decomposes into (the determinism unit;
    /// default [`DEFAULT_LANES`]). Changing it changes the schedule.
    pub fn lanes(mut self, n: usize) -> Self {
        self.lanes = n.max(1);
        self
    }

    /// Merge barriers across the budget (default [`DEFAULT_SYNC_EPOCHS`]).
    pub fn sync_epochs(mut self, n: u64) -> Self {
        self.sync_epochs = n.max(1);
        self
    }

    /// Configure lane supervision (sharded mode only): retry budget, hang
    /// deadline, and the orchestration fault-injection plan. Supervision
    /// is always armed in sharded campaigns with benign defaults, so this
    /// only needs calling to tune it — or to inject faults.
    pub fn supervision(mut self, cfg: SupervisorConfig) -> Self {
        self.supervision = cfg;
        self.supervision_set = true;
        self
    }

    /// Inject deterministic storage faults into every checkpoint I/O
    /// operation (only meaningful with [`Campaign::checkpoint`] — the plan
    /// rides in [`CheckpointConfig::disk_faults`]; set here it wins over
    /// the config's own field regardless of call order). See
    /// [`vmos::DiskFaultPlan`] for the fault vocabulary and
    /// [`crate::StorageCounters`] for what the recovery ladder reports.
    pub fn storage_faults(mut self, plan: vmos::DiskFaultPlan) -> Self {
        self.disk_faults = Some(plan);
        self
    }

    /// The checkpoint config with the builder-level fault plan folded in.
    fn armed_checkpoint(
        checkpoint: Option<CheckpointConfig>,
        disk_faults: Option<vmos::DiskFaultPlan>,
    ) -> Option<CheckpointConfig> {
        checkpoint.map(|mut ck| {
            if let Some(plan) = disk_faults {
                ck.disk_faults = plan;
            }
            ck
        })
    }

    /// Choose where lanes execute (sharded mode only; default
    /// [`Isolation::InProcess`]). [`Isolation::Process`] runs each lane in
    /// a supervised child process — see [`crate::proc`].
    pub fn isolation(mut self, iso: Isolation) -> Self {
        self.isolation = iso;
        self
    }

    fn plan(&self) -> ShardPlan {
        ShardPlan {
            lanes: self.lanes,
            workers: self.shards.clamp(1, self.lanes),
            sync_epochs: self.sync_epochs,
        }
    }

    /// Run the campaign from scratch.
    pub fn run(self) -> Result<CampaignOutcome, CampaignError> {
        let plan = self.plan();
        let Campaign {
            seeds,
            cfg,
            executor,
            revalidator,
            factory,
            checkpoint,
            shards,
            supervision,
            supervision_set,
            isolation,
            disk_faults,
            decode_opt,
            ..
        } = self;
        // Pin the thread-local optimizer switch for the duration of the
        // run; lane workers (threads and child processes) inherit it.
        let _opt_off = (!decode_opt).then(vmos::DecodeOptGuard::new);
        let checkpoint = Self::armed_checkpoint(checkpoint, disk_faults);
        match (factory, executor) {
            (Some(_), Some(_)) => Err(CampaignError::Config(
                "provide an executor or a factory, not both",
            )),
            (Some(f), None) => match isolation {
                Isolation::InProcess => {
                    run_sharded(f, seeds, &cfg, &plan, checkpoint.as_ref(), &supervision)
                }
                Isolation::Process => {
                    crate::proc::run_proc(f, seeds, &cfg, &plan, checkpoint.as_ref(), &supervision)
                }
            },
            (None, Some(ex)) => {
                if isolation == Isolation::Process {
                    return Err(CampaignError::Config(
                        "process isolation spawns one child per lane: use Campaign::factory",
                    ));
                }
                if shards > 1 {
                    return Err(CampaignError::Config(
                        "sharded campaigns build one executor per lane: use Campaign::factory",
                    ));
                }
                if supervision_set {
                    return Err(CampaignError::Config(
                        "lane supervision applies to sharded campaigns: use Campaign::factory",
                    ));
                }
                match &checkpoint {
                    Some(ck) => run_checkpointed_impl(ex, revalidator, seeds, &cfg, ck)
                        .map_err(CampaignError::Checkpoint),
                    None => {
                        let mut d = Driver::new(ex, revalidator, seeds, &cfg, false);
                        while d.step() == StepOutcome::Ran {}
                        Ok(CampaignOutcome::Finished(d.finish()))
                    }
                }
            }
            (None, None) => Err(CampaignError::Config(
                "campaign needs an executor or a factory",
            )),
        }
    }

    /// Resume a killed campaign from its checkpoint directory (which
    /// [`Campaign::checkpoint`] must name). The executor (or factory) must
    /// produce fresh instances over the same target module as the
    /// original run.
    ///
    /// On a [`CampaignOutcome::Finished`] outcome the returned
    /// [`ResumeReport`] is also embedded as
    /// [`CampaignResult::resume`](crate::CampaignResult::resume) — compare
    /// resumed results against never-killed ones with
    /// [`sans_resume`](crate::CampaignResult::sans_resume).
    pub fn resume(self) -> Result<(CampaignOutcome, ResumeReport), CampaignError> {
        let (mut outcome, report) = self.resume_raw()?;
        if let CampaignOutcome::Finished(result) = &mut outcome {
            result.resume = Some(report.clone());
        }
        Ok((outcome, report))
    }

    fn resume_raw(self) -> Result<(CampaignOutcome, ResumeReport), CampaignError> {
        let plan = self.plan();
        let Campaign {
            seeds,
            cfg,
            executor,
            revalidator,
            factory,
            checkpoint,
            shards,
            supervision,
            supervision_set,
            isolation,
            disk_faults,
            decode_opt,
            ..
        } = self;
        let _opt_off = (!decode_opt).then(vmos::DecodeOptGuard::new);
        let Some(ck) = Self::armed_checkpoint(checkpoint, disk_faults) else {
            return Err(CampaignError::Config(
                "resume needs a checkpoint directory: use Campaign::checkpoint",
            ));
        };
        match (factory, executor) {
            (Some(_), Some(_)) => Err(CampaignError::Config(
                "provide an executor or a factory, not both",
            )),
            (Some(f), None) => match isolation {
                Isolation::InProcess => resume_sharded(f, seeds, &cfg, &plan, &ck, &supervision),
                Isolation::Process => {
                    crate::proc::resume_proc(f, seeds, &cfg, &plan, &ck, &supervision)
                }
            },
            (None, Some(ex)) => {
                if isolation == Isolation::Process {
                    return Err(CampaignError::Config(
                        "process isolation spawns one child per lane: use Campaign::factory",
                    ));
                }
                if shards > 1 {
                    return Err(CampaignError::Config(
                        "sharded campaigns build one executor per lane: use Campaign::factory",
                    ));
                }
                if supervision_set {
                    return Err(CampaignError::Config(
                        "lane supervision applies to sharded campaigns: use Campaign::factory",
                    ));
                }
                resume_impl(ex, revalidator, seeds, &cfg, &ck).map_err(CampaignError::Checkpoint)
            }
            (None, None) => Err(CampaignError::Config(
                "campaign needs an executor or a factory",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misconfigured_builders_refuse_to_run() {
        let seeds = vec![b"s".to_vec()];
        let cfg = CampaignConfig::default();
        let err = Campaign::new(&seeds, &cfg).run().unwrap_err();
        assert!(matches!(err, CampaignError::Config(_)));
        let err = Campaign::new(&seeds, &cfg).resume().unwrap_err();
        assert!(matches!(err, CampaignError::Config(_)), "resume needs a dir");
    }
}
