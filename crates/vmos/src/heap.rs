//! The simulated heap allocator, with full error detection.
//!
//! Chunk metadata lives outside the simulated address space (like a
//! hardened allocator's side table), which lets the VM detect:
//!
//! * use-after-free and gap accesses (→ unaddressable access),
//! * out-of-bounds accesses past a chunk's end,
//! * double free and invalid free,
//! * leak enumeration — the Valgrind stand-in used both by the ClosureX
//!   harness (to sweep leaked chunks between test cases, paper Fig. 5) and
//!   by the correctness evaluation (§6.1.4).

use std::collections::{BTreeMap, HashMap};

/// Base virtual address of the heap region.
pub const HEAP_BASE: u64 = 0x4000_0000;
/// Guard gap between chunks; accesses inside it are unaddressable.
pub const GUARD: u64 = 16;
/// Allocation granularity.
pub const ALIGN: u64 = 16;

/// Allocation state of one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkState {
    Allocated,
    Freed,
}

#[derive(Debug, Clone, Copy)]
struct Chunk {
    size: u64,
    rounded: u64,
    state: ChunkState,
}

/// Why an allocator operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// `free` on an already-freed chunk.
    DoubleFree,
    /// `free` on a pointer that is not a chunk start.
    InvalidFree,
    /// The heap byte limit would be exceeded.
    OutOfMemory,
}

/// Result of validating a memory access against the chunk table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessVerdict {
    /// Fully inside a live chunk.
    Ok,
    /// Inside a freed chunk (use-after-free).
    UseAfterFree,
    /// Starts inside a live chunk but runs past its end.
    OutOfBounds,
    /// In the heap region but not inside any chunk.
    Unaddressable,
}

/// The allocator: bump allocation with exact-size free-list reuse and a
/// persistent chunk side table.
#[derive(Debug, Clone)]
pub struct HeapState {
    base: u64,
    next: u64,
    chunks: BTreeMap<u64, Chunk>,
    free_by_size: HashMap<u64, Vec<u64>>,
    live_bytes: u64,
    limit_bytes: u64,
    total_allocs: u64,
}

impl HeapState {
    /// New heap with the given live-byte limit (the 3.5 GB Azure instance
    /// analog; exceeding it is the paper's accumulated-leak OOM false
    /// crash).
    pub fn new(limit_bytes: u64) -> Self {
        Self::with_base(HEAP_BASE, limit_bytes)
    }

    /// New heap starting at `base` — the ASLR analog. Per-process bases make
    /// stored heap pointers vary across fresh runs, which is exactly how the
    /// paper's correctness methodology discovers non-deterministic global
    /// bytes to mask (§6.1.4).
    pub fn with_base(base: u64, limit_bytes: u64) -> Self {
        HeapState {
            base,
            next: base,
            chunks: BTreeMap::new(),
            free_by_size: HashMap::new(),
            live_bytes: 0,
            limit_bytes,
            total_allocs: 0,
        }
    }

    /// The heap's base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Bytes currently allocated (live).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Number of live chunks.
    pub fn live_chunks(&self) -> usize {
        self.chunks
            .values()
            .filter(|c| c.state == ChunkState::Allocated)
            .count()
    }

    /// Total successful allocations ever.
    pub fn total_allocs(&self) -> u64 {
        self.total_allocs
    }

    /// One-past-the-end of the heap's used address range.
    pub fn high_water(&self) -> u64 {
        self.next
    }

    /// Allocate `size` bytes (size 0 is rounded up to [`ALIGN`]).
    ///
    /// # Errors
    /// [`HeapError::OutOfMemory`] if the live-byte limit would be exceeded.
    pub fn alloc(&mut self, size: u64) -> Result<u64, HeapError> {
        let rounded = size.max(1).div_ceil(ALIGN) * ALIGN;
        if self.live_bytes + rounded > self.limit_bytes {
            return Err(HeapError::OutOfMemory);
        }
        self.total_allocs += 1;
        self.live_bytes += rounded;
        if let Some(list) = self.free_by_size.get_mut(&rounded) {
            if let Some(addr) = list.pop() {
                let c = self.chunks.get_mut(&addr).expect("free-list chunk exists");
                c.state = ChunkState::Allocated;
                c.size = size;
                return Ok(addr);
            }
        }
        let addr = self.next;
        self.next += rounded + GUARD;
        self.chunks.insert(
            addr,
            Chunk {
                size,
                rounded,
                state: ChunkState::Allocated,
            },
        );
        Ok(addr)
    }

    /// Free a chunk.
    ///
    /// # Errors
    /// [`HeapError::DoubleFree`] or [`HeapError::InvalidFree`].
    pub fn free(&mut self, addr: u64) -> Result<(), HeapError> {
        match self.chunks.get_mut(&addr) {
            Some(c) if c.state == ChunkState::Allocated => {
                c.state = ChunkState::Freed;
                self.live_bytes -= c.rounded;
                self.free_by_size.entry(c.rounded).or_default().push(addr);
                Ok(())
            }
            Some(_) => Err(HeapError::DoubleFree),
            None => Err(HeapError::InvalidFree),
        }
    }

    /// Requested size of the live chunk at `addr`, if any.
    pub fn chunk_size(&self, addr: u64) -> Option<u64> {
        self.chunks
            .get(&addr)
            .filter(|c| c.state == ChunkState::Allocated)
            .map(|c| c.size)
    }

    /// Validate an access of `len` bytes at `addr`.
    pub fn check_access(&self, addr: u64, len: u64) -> AccessVerdict {
        let Some((start, chunk)) = self.chunks.range(..=addr).next_back() else {
            return AccessVerdict::Unaddressable;
        };
        let start = *start;
        // Access must begin inside the chunk's *rounded* extent.
        if addr >= start + chunk.rounded {
            return AccessVerdict::Unaddressable;
        }
        if chunk.state == ChunkState::Freed {
            return AccessVerdict::UseAfterFree;
        }
        if addr + len.max(1) > start + chunk.rounded {
            return AccessVerdict::OutOfBounds;
        }
        AccessVerdict::Ok
    }

    /// Addresses of all live chunks — the leak set the ClosureX harness
    /// sweeps between test cases and the Valgrind-style leak report.
    pub fn live_chunk_addrs(&self) -> Vec<u64> {
        self.chunks
            .iter()
            .filter(|(_, c)| c.state == ChunkState::Allocated)
            .map(|(a, _)| *a)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> HeapState {
        HeapState::new(1 << 20)
    }

    #[test]
    fn alloc_free_cycle() {
        let mut h = heap();
        let p = h.alloc(100).unwrap();
        assert!(p >= HEAP_BASE);
        assert_eq!(h.live_chunks(), 1);
        assert_eq!(h.chunk_size(p), Some(100));
        h.free(p).unwrap();
        assert_eq!(h.live_chunks(), 0);
        assert_eq!(h.live_bytes(), 0);
    }

    #[test]
    fn double_free_detected() {
        let mut h = heap();
        let p = h.alloc(8).unwrap();
        h.free(p).unwrap();
        assert_eq!(h.free(p), Err(HeapError::DoubleFree));
    }

    #[test]
    fn invalid_free_detected() {
        let mut h = heap();
        let p = h.alloc(8).unwrap();
        assert_eq!(h.free(p + 4), Err(HeapError::InvalidFree));
        assert_eq!(h.free(0xdead0000), Err(HeapError::InvalidFree));
    }

    #[test]
    fn oom_at_limit() {
        let mut h = HeapState::new(64);
        let _ = h.alloc(48).unwrap();
        assert_eq!(h.alloc(48), Err(HeapError::OutOfMemory));
    }

    #[test]
    fn use_after_free_detected() {
        let mut h = heap();
        let p = h.alloc(32).unwrap();
        assert_eq!(h.check_access(p, 32), AccessVerdict::Ok);
        h.free(p).unwrap();
        assert_eq!(h.check_access(p, 1), AccessVerdict::UseAfterFree);
    }

    #[test]
    fn oob_detected_past_rounded_end() {
        let mut h = heap();
        let p = h.alloc(32).unwrap();
        assert_eq!(h.check_access(p + 31, 1), AccessVerdict::Ok);
        assert_eq!(h.check_access(p, 33), AccessVerdict::OutOfBounds);
        assert_eq!(h.check_access(p + 16, 32), AccessVerdict::OutOfBounds);
    }

    #[test]
    fn guard_gap_is_unaddressable() {
        let mut h = heap();
        let a = h.alloc(16).unwrap();
        let _b = h.alloc(16).unwrap();
        assert_eq!(h.check_access(a + 16 + 1, 1), AccessVerdict::Unaddressable);
    }

    #[test]
    fn reuse_from_free_list_flips_state_back() {
        let mut h = heap();
        let a = h.alloc(24).unwrap();
        h.free(a).unwrap();
        let b = h.alloc(20).unwrap(); // same 32-byte class → reuse
        assert_eq!(a, b);
        assert_eq!(h.check_access(b, 20), AccessVerdict::Ok);
        assert_eq!(h.chunk_size(b), Some(20));
    }

    #[test]
    fn leak_enumeration() {
        let mut h = heap();
        let a = h.alloc(8).unwrap();
        let b = h.alloc(8).unwrap();
        let c = h.alloc(8).unwrap();
        h.free(b).unwrap();
        let mut leaks = h.live_chunk_addrs();
        leaks.sort();
        assert_eq!(leaks, vec![a, c]);
    }

    #[test]
    fn zero_size_alloc_is_valid_and_distinct() {
        let mut h = heap();
        let a = h.alloc(0).unwrap();
        let b = h.alloc(0).unwrap();
        assert_ne!(a, b);
    }
}
