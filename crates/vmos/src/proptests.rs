//! Property-based tests over the OS substrate: allocator invariants, CoW
//! isolation, and coverage-map algebra.

use proptest::prelude::*;

use crate::cov::{classify_count, CovMap, VirginMap};
use crate::heap::{AccessVerdict, HeapState, GUARD};
use crate::mem::{PageTable, PAGE_SIZE};

#[derive(Debug, Clone)]
enum HeapOp {
    Alloc(u16),
    FreeNth(u8),
}

fn heap_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u16..2048).prop_map(HeapOp::Alloc),
            any::<u8>().prop_map(HeapOp::FreeNth),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Live chunks never overlap, never touch the guard gaps, and
    /// live-byte accounting is exact.
    #[test]
    fn allocator_invariants(ops in heap_ops()) {
        let mut h = HeapState::new(1 << 22);
        let mut live: Vec<(u64, u64)> = Vec::new(); // (addr, size)
        for op in ops {
            match op {
                HeapOp::Alloc(sz) => {
                    if let Ok(p) = h.alloc(u64::from(sz)) {
                        live.push((p, u64::from(sz)));
                    }
                }
                HeapOp::FreeNth(i) => {
                    if !live.is_empty() {
                        let idx = usize::from(i) % live.len();
                        let (p, _) = live.swap_remove(idx);
                        h.free(p).expect("tracked chunk frees cleanly");
                    }
                }
            }
        }
        // accounting
        prop_assert_eq!(h.live_chunks(), live.len());
        let mut addrs = h.live_chunk_addrs();
        addrs.sort_unstable();
        let mut expect: Vec<u64> = live.iter().map(|(a, _)| *a).collect();
        expect.sort_unstable();
        prop_assert_eq!(addrs, expect);
        // no overlap: every live chunk's rounded extent is disjoint
        let mut spans: Vec<(u64, u64)> = live
            .iter()
            .map(|(a, s)| (*a, *a + s.max(&1).div_ceil(16) * 16))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 + GUARD <= w[1].0, "chunks overlap or touch: {w:?}");
        }
        // every live chunk is fully accessible; one past is not OK
        for (a, s) in &live {
            prop_assert_eq!(h.check_access(*a, (*s).max(1)), AccessVerdict::Ok);
        }
    }

    /// Double-free is always detected, whatever the history.
    #[test]
    fn double_free_always_detected(sizes in prop::collection::vec(1u64..512, 1..20)) {
        let mut h = HeapState::new(1 << 22);
        let ptrs: Vec<u64> = sizes.iter().map(|s| h.alloc(*s).expect("fits")).collect();
        for p in &ptrs {
            h.free(*p).expect("first free ok");
        }
        for p in &ptrs {
            // Either detected as double free, or the chunk was legally
            // reused — in which case it must currently be free-listed, so
            // freeing again after realloc is a *different* chunk. Without
            // intervening allocs, it must always be DoubleFree.
            prop_assert!(h.free(*p).is_err());
        }
    }

    /// Page table: what you write is what you read, across arbitrary
    /// offsets and sizes; forked children never see later parent writes.
    #[test]
    fn pagetable_roundtrip_and_fork_isolation(
        writes in prop::collection::vec((0u64..PAGE_SIZE * 8, prop::collection::vec(any::<u8>(), 1..64)), 1..20),
        probe in 0u64..PAGE_SIZE * 8,
    ) {
        let mut pt = PageTable::new();
        for (addr, data) in &writes {
            pt.write(*addr, data);
        }
        let (last_addr, last_data) = writes.last().expect("non-empty");
        let mut back = vec![0u8; last_data.len()];
        pt.read(*last_addr, &mut back);
        prop_assert_eq!(&back, last_data, "last write wins and round-trips");

        let child = pt.fork();
        let mut before = [0u8; 8];
        child.read(probe, &mut before);
        pt.write(probe, &[0xEE; 8]);
        let mut after = [0u8; 8];
        child.read(probe, &mut after);
        prop_assert_eq!(before, after, "parent writes invisible to child");
    }

    /// Coverage bucketing is idempotent and merge is monotone: merging the
    /// same map twice never reports new coverage the second time.
    #[test]
    fn virgin_merge_monotone(hits in prop::collection::vec(any::<u16>(), 0..200)) {
        let mut run = CovMap::new();
        for h in &hits {
            run.hit(*h);
        }
        let mut virgin = VirginMap::new();
        let first = virgin.merge(&run);
        prop_assert_eq!(first, !hits.is_empty());
        prop_assert!(!virgin.merge(&run), "second merge of same map finds nothing");
        let mut distinct: Vec<u16> = hits.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(virgin.edges_found(), distinct.len());
    }

    /// Bucket labels come from AFL's fixed set and grow monotonically with
    /// the hitcount.
    #[test]
    fn classify_bucket_labels(c in any::<u8>()) {
        let b = classify_count(c);
        prop_assert!([0u8, 1, 2, 4, 8, 16, 32, 64, 128].contains(&b));
        if c < 255 {
            prop_assert!(classify_count(c + 1) >= b);
        }
    }
}
