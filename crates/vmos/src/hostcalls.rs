//! The simulated libc: host calls resolved by name when a FIR `call` does
//! not match any module function.
//!
//! This is where the ClosureX wrappers live too (`closurex_malloc`,
//! `closurex_fopen`, `closurex_exit_hook`, …): the compiler passes rewrite
//! the target's call sites to these names, and the wrappers update the
//! [`crate::process::ClosureRt`] side-state that the harness sweeps between
//! test cases.

use crate::crash::{Crash, CrashKind};
use crate::fault::FaultKind;
use crate::heap::HeapError;
use crate::interp::HostCtx;
use crate::process::Process;

/// Effect of a host call on control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostRet {
    /// Produced a value (written to the call's destination register).
    Val(i64),
    /// No value.
    Void,
    /// `exit(code)` — terminate the process.
    Exit(i32),
    /// `closurex_exit_hook(code)` — unwind to the persistent-loop harness
    /// instead of terminating (the paper's `longjmp`-based exit intercept).
    ExitHook(i32),
}

/// Upper bound on bulk sizes before we call it a negative-size operation
/// (matches ASan's "negative-size-param" heuristic).
const BULK_LIMIT: i64 = 1 << 31;

fn crash(kind: CrashKind, site: (&str, u32), detail: String) -> Crash {
    Crash {
        kind,
        function: site.0.to_string(),
        block: site.1,
        detail,
    }
}

fn heap_err_to_crash(e: HeapError, site: (&str, u32), what: &str) -> Crash {
    match e {
        HeapError::DoubleFree => crash(CrashKind::DoubleFree, site, what.to_string()),
        HeapError::InvalidFree => crash(CrashKind::InvalidFree, site, what.to_string()),
        HeapError::OutOfMemory => crash(CrashKind::OutOfMemory, site, what.to_string()),
    }
}

fn arg(args: &[i64], i: usize) -> i64 {
    args.get(i).copied().unwrap_or(0)
}

/// The host functions the simulated libc implements, with the ClosureX
/// wrapper aliases folded into the [`HostId::hooked`] flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostFn {
    /// `malloc` / `closurex_malloc`.
    Malloc,
    /// `calloc` / `closurex_calloc`.
    Calloc,
    /// `realloc` / `closurex_realloc`.
    Realloc,
    /// `free` / `closurex_free`.
    Free,
    /// `memcpy` and `memmove` (identical in this machine).
    Memcpy,
    /// `memset`.
    Memset,
    /// `memcmp`.
    Memcmp,
    /// `strlen`.
    Strlen,
    /// `strcmp`.
    Strcmp,
    /// `fopen` / `closurex_fopen`.
    Fopen,
    /// `fclose` / `closurex_fclose`.
    Fclose,
    /// `fread`.
    Fread,
    /// `fgetc`.
    Fgetc,
    /// `fseek`.
    Fseek,
    /// `ftell`.
    Ftell,
    /// `feof`.
    Feof,
    /// `fsize` (stat analog).
    Fsize,
    /// `exit` and `_exit`.
    Exit,
    /// `closurex_exit_hook`.
    ExitHook,
    /// `abort`.
    Abort,
    /// `getpid`.
    Getpid,
    /// `rand`.
    Rand,
    /// `puts`.
    Puts,
    /// `putchar`.
    Putchar,
    /// `print_int`.
    PrintInt,
}

/// A pre-bound host call: which function, and whether it was reached
/// through its `closurex_*` wrapper alias (which charges the wrapper cost
/// and updates [`crate::process::ClosureRt`] side-state).
///
/// The decoded engine resolves names to `HostId`s once at lowering time;
/// the reference interpreter resolves per call via [`resolve`]. Both then
/// run the same [`dispatch_id`], so semantics cannot diverge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostId {
    /// Which host function.
    pub fun: HostFn,
    /// Reached via the `closurex_*` wrapper alias?
    pub hooked: bool,
}

/// Resolve a call-site name to a host function id. `None` means unknown
/// (the interpreter then reports an unresolved-symbol crash).
pub fn resolve(name: &str) -> Option<HostId> {
    use HostFn::*;
    let plain = |fun| {
        Some(HostId { fun, hooked: false })
    };
    let hooked = |fun| {
        Some(HostId { fun, hooked: true })
    };
    match name {
        "malloc" => plain(Malloc),
        "closurex_malloc" => hooked(Malloc),
        "calloc" => plain(Calloc),
        "closurex_calloc" => hooked(Calloc),
        "realloc" => plain(Realloc),
        "closurex_realloc" => hooked(Realloc),
        "free" => plain(Free),
        "closurex_free" => hooked(Free),
        "memcpy" | "memmove" => plain(Memcpy),
        "memset" => plain(Memset),
        "memcmp" => plain(Memcmp),
        "strlen" => plain(Strlen),
        "strcmp" => plain(Strcmp),
        "fopen" => plain(Fopen),
        "closurex_fopen" => hooked(Fopen),
        "fclose" => plain(Fclose),
        "closurex_fclose" => hooked(Fclose),
        "fread" => plain(Fread),
        "fgetc" => plain(Fgetc),
        "fseek" => plain(Fseek),
        "ftell" => plain(Ftell),
        "feof" => plain(Feof),
        "fsize" => plain(Fsize),
        "exit" | "_exit" => plain(Exit),
        "closurex_exit_hook" => plain(ExitHook),
        "abort" => plain(Abort),
        "getpid" => plain(Getpid),
        "rand" => plain(Rand),
        "puts" => plain(Puts),
        "putchar" => plain(Putchar),
        "print_int" => plain(PrintInt),
        _ => None,
    }
}

/// Dispatch a host call by name. Returns `Ok(None)` when the name is
/// unknown (the interpreter then reports an unresolved-symbol crash).
///
/// # Errors
/// A [`Crash`] for detected memory/resource errors.
pub fn dispatch(
    name: &str,
    args: &[i64],
    p: &mut Process,
    ctx: &mut HostCtx<'_>,
    site: (&str, u32),
    cycles: &mut u64,
) -> Result<Option<HostRet>, Crash> {
    match resolve(name) {
        Some(id) => dispatch_id(id, args, p, ctx, site, cycles),
        None => Ok(None),
    }
}

/// Dispatch a pre-bound host call (see [`resolve`]).
///
/// # Errors
/// A [`Crash`] for detected memory/resource errors.
#[allow(clippy::too_many_lines)]
pub fn dispatch_id(
    id: HostId,
    args: &[i64],
    p: &mut Process,
    ctx: &mut HostCtx<'_>,
    site: (&str, u32),
    cycles: &mut u64,
) -> Result<Option<HostRet>, Crash> {
    let cost = ctx.cost.clone();
    let ret = match id.fun {
        // ---- malloc family -------------------------------------------
        HostFn::Malloc => {
            *cycles += cost.host_malloc;
            if ctx.os.fault.roll(FaultKind::MallocNull) {
                return Ok(Some(HostRet::Val(0))); // injected ENOMEM
            }
            let size = arg(args, 0).max(0) as u64;
            let ptr = p
                .heap
                .alloc(size)
                .map_err(|e| heap_err_to_crash(e, site, "malloc"))?;
            if id.hooked {
                *cycles += cost.closurex_wrapper;
                if p.rt.enabled && !p.rt.in_init_phase {
                    p.rt.chunk_map.insert(ptr, size);
                }
            }
            HostRet::Val(ptr as i64)
        }
        HostFn::Calloc => {
            *cycles += cost.host_malloc;
            if ctx.os.fault.roll(FaultKind::MallocNull) {
                return Ok(Some(HostRet::Val(0))); // injected ENOMEM
            }
            let n = arg(args, 0).max(0) as u64;
            let sz = arg(args, 1).max(0) as u64;
            let total = n.saturating_mul(sz);
            let ptr = p
                .heap
                .alloc(total)
                .map_err(|e| heap_err_to_crash(e, site, "calloc"))?;
            p.write_bytes(ptr, &vec![0u8; total as usize]);
            *cycles += cost.bulk(0, total);
            if id.hooked {
                *cycles += cost.closurex_wrapper;
                if p.rt.enabled && !p.rt.in_init_phase {
                    p.rt.chunk_map.insert(ptr, total);
                }
            }
            HostRet::Val(ptr as i64)
        }
        HostFn::Realloc => {
            *cycles += cost.host_malloc + cost.host_free;
            if ctx.os.fault.roll(FaultKind::MallocNull) {
                // Injected ENOMEM: NULL return, original block left intact.
                return Ok(Some(HostRet::Val(0)));
            }
            let old = arg(args, 0) as u64;
            let size = arg(args, 1).max(0) as u64;
            let hooked = id.hooked;
            let new_ptr = if old == 0 {
                p.heap
                    .alloc(size)
                    .map_err(|e| heap_err_to_crash(e, site, "realloc"))?
            } else {
                let old_size = p.heap.chunk_size(old).ok_or_else(|| {
                    crash(
                        CrashKind::InvalidFree,
                        site,
                        format!("realloc of non-chunk {old:#x}"),
                    )
                })?;
                let np = p
                    .heap
                    .alloc(size)
                    .map_err(|e| heap_err_to_crash(e, site, "realloc"))?;
                let ncopy = old_size.min(size) as usize;
                let data = p.read_bytes(old, ncopy);
                p.write_bytes(np, &data);
                *cycles += cost.bulk(0, ncopy as u64);
                p.heap
                    .free(old)
                    .map_err(|e| heap_err_to_crash(e, site, "realloc-free"))?;
                if hooked {
                    p.rt.chunk_map.remove(&old);
                }
                np
            };
            if hooked {
                *cycles += cost.closurex_wrapper;
                if p.rt.enabled && !p.rt.in_init_phase {
                    p.rt.chunk_map.insert(new_ptr, size);
                }
            }
            HostRet::Val(new_ptr as i64)
        }
        HostFn::Free => {
            *cycles += cost.host_free;
            let ptr = arg(args, 0) as u64;
            if ptr == 0 {
                return Ok(Some(HostRet::Void)); // free(NULL) is a no-op
            }
            p.heap
                .free(ptr)
                .map_err(|e| heap_err_to_crash(e, site, "free"))?;
            if id.hooked {
                *cycles += cost.closurex_wrapper;
                p.rt.chunk_map.remove(&ptr);
            }
            HostRet::Void
        }

        // ---- bulk memory ---------------------------------------------
        HostFn::Memcpy => {
            let (dst, src, n) = (arg(args, 0) as u64, arg(args, 1) as u64, arg(args, 2));
            if !(0..BULK_LIMIT).contains(&n) {
                return Err(crash(
                    CrashKind::NegativeSizeMemcpy,
                    site,
                    format!("memcpy size {n}"),
                ));
            }
            let n = n as u64;
            if n > 0 {
                p.check_access(src, n, false, site.0, site.1)?;
                p.check_access(dst, n, true, site.0, site.1)?;
                let data = p.read_bytes(src, n as usize);
                p.write_bytes(dst, &data);
            }
            *cycles += cost.bulk(2, n);
            HostRet::Val(dst as i64)
        }
        HostFn::Memset => {
            let (dst, c, n) = (arg(args, 0) as u64, arg(args, 1), arg(args, 2));
            if !(0..BULK_LIMIT).contains(&n) {
                return Err(crash(
                    CrashKind::NegativeSizeMemcpy,
                    site,
                    format!("memset size {n}"),
                ));
            }
            let n = n as u64;
            if n > 0 {
                p.check_access(dst, n, true, site.0, site.1)?;
                p.write_bytes(dst, &vec![c as u8; n as usize]);
            }
            *cycles += cost.bulk(2, n);
            HostRet::Val(dst as i64)
        }
        HostFn::Memcmp => {
            let (a, b, n) = (arg(args, 0) as u64, arg(args, 1) as u64, arg(args, 2));
            if !(0..BULK_LIMIT).contains(&n) {
                return Err(crash(
                    CrashKind::NegativeSizeMemcpy,
                    site,
                    format!("memcmp size {n}"),
                ));
            }
            let n = n as u64;
            let mut r = 0i64;
            if n > 0 {
                p.check_access(a, n, false, site.0, site.1)?;
                p.check_access(b, n, false, site.0, site.1)?;
                let va = p.read_bytes(a, n as usize);
                let vb = p.read_bytes(b, n as usize);
                r = match va.cmp(&vb) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                };
            }
            *cycles += cost.bulk(2, n);
            HostRet::Val(r)
        }
        HostFn::Strlen => {
            let a = arg(args, 0) as u64;
            p.check_access(a, 1, false, site.0, site.1)?;
            let s = p.mem.read_cstr(a, 1 << 16);
            *cycles += cost.bulk(2, s.len() as u64);
            HostRet::Val(s.len() as i64)
        }
        HostFn::Strcmp => {
            let a = arg(args, 0) as u64;
            let b = arg(args, 1) as u64;
            p.check_access(a, 1, false, site.0, site.1)?;
            p.check_access(b, 1, false, site.0, site.1)?;
            let sa = p.mem.read_cstr(a, 1 << 16);
            let sb = p.mem.read_cstr(b, 1 << 16);
            *cycles += cost.bulk(2, (sa.len() + sb.len()) as u64);
            HostRet::Val(match sa.cmp(&sb) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            })
        }

        // ---- stdio ----------------------------------------------------
        HostFn::Fopen => {
            *cycles += cost.host_fopen;
            let path_ptr = arg(args, 0) as u64;
            p.check_access(path_ptr, 1, false, site.0, site.1)?;
            let path = String::from_utf8_lossy(&p.mem.read_cstr(path_ptr, 4096)).into_owned();
            if !ctx.fs_exists(&path) {
                return Ok(Some(HostRet::Val(0))); // ENOENT → NULL
            }
            if ctx.os.fault.roll(FaultKind::FopenFail) {
                return Ok(Some(HostRet::Val(0))); // injected EIO → NULL
            }
            // EMFILE crashes with the dedicated false-crash kind (like the
            // heap's OutOfMemory): exhaustion is caused by handles leaked
            // across *previous* test cases, and triage needs to see that,
            // not a NullPtrDeref downstream of an unchecked NULL.
            let handle = match p.fds.open(path) {
                Ok(h) => h,
                Err(_) => {
                    return Err(crash(
                        CrashKind::FdExhaustion,
                        site,
                        format!("fopen: descriptor limit {} reached", p.fds.limit()),
                    ))
                }
            };
            if id.hooked {
                *cycles += cost.closurex_wrapper;
                if p.rt.enabled {
                    if p.rt.in_init_phase {
                        p.rt.init_files.push(handle);
                    } else {
                        p.rt.open_files.push(handle);
                    }
                }
            }
            HostRet::Val(handle as i64)
        }
        HostFn::Fclose => {
            *cycles += cost.host_fclose;
            let h = arg(args, 0) as u64;
            if h == 0 {
                return Err(crash(CrashKind::NullPtrDeref, site, "fclose(NULL)".into()));
            }
            if ctx.os.fault.roll(FaultKind::FdLeak) {
                // Injected leak: the program sees success but the
                // descriptor-table slot is never released, creeping toward
                // the RLIMIT_NOFILE analog. Only the fd census run by the
                // restore-integrity check can notice.
                if p.fds.get(h).is_none() {
                    return Err(crash(
                        CrashKind::UnaddressableAccess,
                        site,
                        format!("fclose of bad handle {h:#x}"),
                    ));
                }
            } else if p.fds.close(h).is_err() {
                return Err(crash(
                    CrashKind::UnaddressableAccess,
                    site,
                    format!("fclose of bad handle {h:#x}"),
                ));
            }
            if id.hooked {
                *cycles += cost.closurex_wrapper;
                p.rt.open_files.retain(|&x| x != h);
                p.rt.init_files.retain(|&x| x != h);
            }
            HostRet::Val(0)
        }
        HostFn::Fread => {
            let (buf, size, nmemb, h) = (
                arg(args, 0) as u64,
                arg(args, 1).max(0) as u64,
                arg(args, 2).max(0) as u64,
                arg(args, 3) as u64,
            );
            if h == 0 {
                return Err(crash(
                    CrashKind::NullPtrDeref,
                    site,
                    "fread(NULL file)".into(),
                ));
            }
            let Some(file) = p.fds.get(h).cloned() else {
                return Err(crash(
                    CrashKind::UnaddressableAccess,
                    site,
                    format!("fread from bad handle {h:#x}"),
                ));
            };
            let total = size.saturating_mul(nmemb);
            let data = ctx.fs_read(&file.path).unwrap_or_default();
            let avail = data.len() as u64 - file.pos.min(data.len() as u64);
            let n = total.min(avail);
            if n > 0 {
                p.check_access(buf, n, true, site.0, site.1)?;
                let chunk = data[file.pos as usize..(file.pos + n) as usize].to_vec();
                p.write_bytes(buf, &chunk);
                p.fds.get_mut(h).expect("checked").pos += n;
            }
            *cycles += cost.bulk(4, n);
            HostRet::Val(n.checked_div(size).unwrap_or(0) as i64)
        }
        HostFn::Fgetc => {
            let h = arg(args, 0) as u64;
            if h == 0 {
                return Err(crash(CrashKind::NullPtrDeref, site, "fgetc(NULL)".into()));
            }
            let Some(file) = p.fds.get(h).cloned() else {
                return Err(crash(
                    CrashKind::UnaddressableAccess,
                    site,
                    format!("fgetc from bad handle {h:#x}"),
                ));
            };
            let data = ctx.fs_read(&file.path).unwrap_or_default();
            *cycles += 2;
            if (file.pos as usize) < data.len() {
                let b = data[file.pos as usize];
                p.fds.get_mut(h).expect("checked").pos += 1;
                HostRet::Val(i64::from(b))
            } else {
                HostRet::Val(-1)
            }
        }
        HostFn::Fseek => {
            let (h, off, whence) = (arg(args, 0) as u64, arg(args, 1), arg(args, 2));
            if h == 0 {
                return Err(crash(CrashKind::NullPtrDeref, site, "fseek(NULL)".into()));
            }
            let len = {
                let Some(file) = p.fds.get(h) else {
                    return Ok(Some(HostRet::Val(-1)));
                };
                ctx.fs_read(&file.path).map_or(0, |d| d.len() as i64)
            };
            let Some(file) = p.fds.get_mut(h) else {
                return Ok(Some(HostRet::Val(-1)));
            };
            let base = match whence {
                0 => 0,
                1 => file.pos as i64,
                2 => len,
                _ => return Ok(Some(HostRet::Val(-1))),
            };
            let target = base + off;
            *cycles += 3;
            if target < 0 {
                HostRet::Val(-1)
            } else {
                file.pos = target as u64;
                HostRet::Val(0)
            }
        }
        HostFn::Ftell => {
            let h = arg(args, 0) as u64;
            *cycles += 2;
            match p.fds.get(h) {
                Some(f) => HostRet::Val(f.pos as i64),
                None => HostRet::Val(-1),
            }
        }
        HostFn::Feof => {
            let h = arg(args, 0) as u64;
            *cycles += 2;
            match p.fds.get(h) {
                Some(f) => {
                    let len = ctx.fs_read(&f.path).map_or(0, |d| d.len() as u64);
                    HostRet::Val(i64::from(f.pos >= len))
                }
                None => HostRet::Val(1),
            }
        }
        HostFn::Fsize => {
            // Convenience (stat analog) used by targets to size buffers.
            let h = arg(args, 0) as u64;
            *cycles += 2;
            match p.fds.get(h) {
                Some(f) => HostRet::Val(ctx.fs_read(&f.path).map_or(0, |d| d.len() as i64)),
                None => HostRet::Val(-1),
            }
        }

        // ---- process control -------------------------------------------
        HostFn::Exit => HostRet::Exit(arg(args, 0) as i32),
        HostFn::ExitHook => HostRet::ExitHook(arg(args, 0) as i32),
        HostFn::Abort => {
            return Err(crash(CrashKind::Abort, site, "abort() called".into()));
        }
        HostFn::Getpid => HostRet::Val(i64::from(p.pid)),
        HostFn::Rand => HostRet::Val((p.next_rand() & 0x7fff_ffff) as i64),

        // ---- output -----------------------------------------------------
        HostFn::Puts => {
            let a = arg(args, 0) as u64;
            p.check_access(a, 1, false, site.0, site.1)?;
            let s = p.mem.read_cstr(a, 4096);
            p.stdout.extend_from_slice(&s);
            p.stdout.push(b'\n');
            *cycles += cost.bulk(2, s.len() as u64);
            HostRet::Val(0)
        }
        HostFn::Putchar => {
            p.stdout.push(arg(args, 0) as u8);
            *cycles += 2;
            HostRet::Val(arg(args, 0))
        }
        HostFn::PrintInt => {
            let s = arg(args, 0).to_string();
            p.stdout.extend_from_slice(s.as_bytes());
            *cycles += 2;
            HostRet::Val(0)
        }

    };
    Ok(Some(ret))
}

#[cfg(test)]
mod tests {
    // Host calls are exercised end-to-end through the interpreter tests in
    // `interp.rs`; unit-level checks of crash mapping live here.
    use super::*;

    #[test]
    fn heap_error_mapping() {
        let site = ("f", 0);
        assert_eq!(
            heap_err_to_crash(HeapError::DoubleFree, site, "x").kind,
            CrashKind::DoubleFree
        );
        assert_eq!(
            heap_err_to_crash(HeapError::OutOfMemory, site, "x").kind,
            CrashKind::OutOfMemory
        );
        assert_eq!(
            heap_err_to_crash(HeapError::InvalidFree, site, "x").kind,
            CrashKind::InvalidFree
        );
    }

    #[test]
    fn arg_defaults_to_zero() {
        assert_eq!(arg(&[1, 2], 0), 1);
        assert_eq!(arg(&[1, 2], 5), 0);
    }
}
