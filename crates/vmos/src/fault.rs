//! Deterministic fault-injection plane.
//!
//! Real persistent-fuzzing deployments meet a hostile substrate: `malloc`
//! returns NULL under memory pressure, `fork` fails when the process table
//! fills, descriptors leak, and bit-flips corrupt restored state. The
//! simulated OS reproduces that hostility on demand so the resilience of
//! each execution mechanism can be measured rather than assumed.
//!
//! A [`FaultPlan`] gives per-kind injection probabilities plus a seed; the
//! [`FaultPlane`] turns the plan into a deterministic roll sequence
//! (SplitMix64 over `seed ⊕ roll-counter`), so a campaign replayed with the
//! same seed injects the same faults at the same points. All probabilities
//! default to zero: an unconfigured OS behaves exactly as before the plane
//! existed.

/// The kinds of faults the plane can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `malloc`/`calloc`/`realloc` returns NULL (simulated ENOMEM).
    MallocNull,
    /// `fopen` returns NULL even though the path exists (simulated EIO).
    FopenFail,
    /// `fork`/`spawn` refuses (simulated EAGAIN: process table full).
    ForkFail,
    /// A bit in the restored global section flips after state restoration
    /// (simulated memory corruption — the fault restore-integrity
    /// verification exists to catch).
    RestoreBitFlip,
    /// `fclose` silently fails to release its descriptor-table slot, so
    /// descriptors leak toward the `RLIMIT_NOFILE` analog.
    FdLeak,
}

impl FaultKind {
    /// Every kind, in counter order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::MallocNull,
        FaultKind::FopenFail,
        FaultKind::ForkFail,
        FaultKind::RestoreBitFlip,
        FaultKind::FdLeak,
    ];

    /// Stable short name for logs and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::MallocNull => "malloc_null",
            FaultKind::FopenFail => "fopen_fail",
            FaultKind::ForkFail => "fork_fail",
            FaultKind::RestoreBitFlip => "restore_bitflip",
            FaultKind::FdLeak => "fd_leak",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultKind::MallocNull => 0,
            FaultKind::FopenFail => 1,
            FaultKind::ForkFail => 2,
            FaultKind::RestoreBitFlip => 3,
            FaultKind::FdLeak => 4,
        }
    }
}

/// Per-kind injection probabilities plus the seed that makes the roll
/// sequence reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the deterministic roll stream.
    pub seed: u64,
    /// P(`malloc` family returns NULL) per allocation.
    pub malloc_null: f64,
    /// P(`fopen` fails) per open of an existing path.
    pub fopen_fail: f64,
    /// P(`fork`/`spawn` refused) per attempt.
    pub fork_fail: f64,
    /// P(one bit flips in the restored global section) per restore.
    pub restore_bitflip: f64,
    /// P(`fclose` leaks its slot) per close.
    pub fd_leak: f64,
}

impl FaultPlan {
    /// No faults at all (the default substrate).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            malloc_null: 0.0,
            fopen_fail: 0.0,
            fork_fail: 0.0,
            restore_bitflip: 0.0,
            fd_leak: 0.0,
        }
    }

    /// Every kind at the same `rate`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            malloc_null: rate,
            fopen_fail: rate,
            fork_fail: rate,
            restore_bitflip: rate,
            fd_leak: rate,
        }
    }

    /// Probability configured for `kind`.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::MallocNull => self.malloc_null,
            FaultKind::FopenFail => self.fopen_fail,
            FaultKind::ForkFail => self.fork_fail,
            FaultKind::RestoreBitFlip => self.restore_bitflip,
            FaultKind::FdLeak => self.fd_leak,
        }
    }

    /// Is every probability zero?
    pub fn is_none(&self) -> bool {
        FaultKind::ALL.iter().all(|&k| self.rate(k) <= 0.0)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runtime half of the plane: the plan, a roll counter, and per-kind
/// injection tallies.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlane {
    plan: FaultPlan,
    rolls: u64,
    injected: [u64; 5],
}

impl Default for FaultPlane {
    fn default() -> Self {
        Self::disabled()
    }
}

impl FaultPlane {
    /// Plane executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultPlane {
            plan,
            rolls: 0,
            injected: [0; 5],
        }
    }

    /// Plane that never injects (zero overhead on the hot path beyond one
    /// float compare).
    pub fn disabled() -> Self {
        Self::new(FaultPlan::none())
    }

    /// The plan this plane executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draw 64 deterministic bits, advancing the roll counter.
    fn next_bits(&mut self) -> u64 {
        self.rolls = self.rolls.wrapping_add(1);
        splitmix64(self.plan.seed ^ self.rolls.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Should a fault of `kind` fire at this point? Deterministic in
    /// (seed, call sequence); tallies every injection.
    pub fn roll(&mut self, kind: FaultKind) -> bool {
        let p = self.plan.rate(kind);
        if p <= 0.0 {
            return false;
        }
        let u = (self.next_bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let fire = u < p;
        if fire {
            self.injected[kind.index()] += 1;
        }
        fire
    }

    /// If a restore bit-flip fires, pick the byte offset (mod caller's
    /// section length) and bit to corrupt. Returns `None` when no flip is
    /// due or the section is empty.
    pub fn bitflip_for(&mut self, section_len: u64) -> Option<(u64, u8)> {
        if section_len == 0 || !self.roll(FaultKind::RestoreBitFlip) {
            return None;
        }
        let bits = self.next_bits();
        Some((bits % section_len, 1u8 << ((bits >> 56) & 7)))
    }

    /// How many faults of `kind` have been injected so far.
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()]
    }

    /// Total injections across all kinds.
    pub fn total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Reset tallies and the roll counter (e.g. between campaign trials).
    pub fn reset(&mut self) {
        self.rolls = 0;
        self.injected = [0; 5];
    }

    /// Export the stream position + tallies (campaign checkpointing). The
    /// plan itself is configuration and travels separately — a resumed
    /// campaign re-arms the same plan, then restores this position so the
    /// roll stream continues exactly where the killed run left it.
    pub fn export_counters(&self) -> (u64, [u64; 5]) {
        (self.rolls, self.injected)
    }

    /// Restore a position exported by [`FaultPlane::export_counters`].
    pub fn restore_counters(&mut self, rolls: u64, injected: [u64; 5]) {
        self.rolls = rolls;
        self.injected = injected;
    }
}

// ---------------------------------------------------------------------------
// Orchestration-layer faults.
// ---------------------------------------------------------------------------

/// Faults injected one level above the simulated OS: at the campaign
/// orchestrator, where whole lane workers fail rather than individual
/// hostcalls. These exercise the supervision layer the same way
/// [`FaultPlan`] exercises executor-level resilience.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrchFaultKind {
    /// The lane worker panics mid-epoch (a wedged executor, a host bug).
    WorkerPanic,
    /// The lane stops making simulated-clock progress mid-epoch and must
    /// be caught by the supervisor's heartbeat deadline.
    LaneHang,
    /// The lane finishes its epoch but its barrier handoff is lost, as if
    /// the synchronization timed out; the epoch must be redone.
    BarrierTimeout,
}

impl OrchFaultKind {
    /// Every kind, in salt order.
    pub const ALL: [OrchFaultKind; 3] = [
        OrchFaultKind::WorkerPanic,
        OrchFaultKind::LaneHang,
        OrchFaultKind::BarrierTimeout,
    ];

    /// Stable short name for logs and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            OrchFaultKind::WorkerPanic => "worker_panic",
            OrchFaultKind::LaneHang => "lane_hang",
            OrchFaultKind::BarrierTimeout => "barrier_timeout",
        }
    }

    fn salt(self) -> u64 {
        match self {
            OrchFaultKind::WorkerPanic => 1,
            OrchFaultKind::LaneHang => 2,
            OrchFaultKind::BarrierTimeout => 3,
        }
    }
}

/// One targeted orchestration fault: fire `kind` at `(lane, epoch)` on the
/// first `fires` consecutive attempts. `fires > 1` models a lane that
/// keeps failing after being rebuilt — the supervisor's retry/degradation
/// ladder is exercised by exactly this knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrchFault {
    /// Lane index the fault targets.
    pub lane: u64,
    /// Epoch the fault targets.
    pub epoch: u64,
    /// What goes wrong.
    pub kind: OrchFaultKind,
    /// Consecutive attempts (starting at 0) that fail before the lane
    /// runs clean.
    pub fires: u32,
}

/// A deterministic plan of orchestration faults: targeted `(lane, epoch)`
/// hits plus per-kind probabilities rolled position-wise.
///
/// Unlike [`FaultPlane`], decisions here are keyed by *position*
/// `(lane, epoch, attempt)` rather than by a shared roll counter: lanes
/// run concurrently on worker threads, so a mutable sequence counter would
/// make injection depend on thread scheduling. A pure function of the
/// position keeps the same plan hitting the same lanes no matter how many
/// workers run them.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OrchFaultPlan {
    /// Seed for the probabilistic rolls.
    pub seed: u64,
    /// P(worker panic) per lane-epoch attempt.
    pub worker_panic: f64,
    /// P(lane hang) per lane-epoch attempt.
    pub lane_hang: f64,
    /// P(barrier timeout) per lane-epoch attempt.
    pub barrier_timeout: f64,
    /// Targeted faults, checked before the probabilistic rolls (first
    /// match wins).
    pub targeted: Vec<OrchFault>,
}

impl OrchFaultPlan {
    /// No orchestration faults (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// A single targeted fault firing once at `(lane, epoch)`.
    pub fn at(lane: u64, epoch: u64, kind: OrchFaultKind) -> Self {
        OrchFaultPlan {
            targeted: vec![OrchFault {
                lane,
                epoch,
                kind,
                fires: 1,
            }],
            ..Self::default()
        }
    }

    /// Every kind at the same probabilistic `rate`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        OrchFaultPlan {
            seed,
            worker_panic: rate,
            lane_hang: rate,
            barrier_timeout: rate,
            targeted: Vec::new(),
        }
    }

    /// Probability configured for `kind`.
    pub fn rate(&self, kind: OrchFaultKind) -> f64 {
        match kind {
            OrchFaultKind::WorkerPanic => self.worker_panic,
            OrchFaultKind::LaneHang => self.lane_hang,
            OrchFaultKind::BarrierTimeout => self.barrier_timeout,
        }
    }

    /// Does this plan never inject anything?
    pub fn is_none(&self) -> bool {
        self.targeted.is_empty() && OrchFaultKind::ALL.iter().all(|&k| self.rate(k) <= 0.0)
    }

    fn position_bits(&self, lane: u64, epoch: u64, attempt: u32, salt: u64) -> u64 {
        splitmix64(
            self.seed
                ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ epoch.wrapping_mul(0xA076_1D64_78BD_642F)
                ^ u64::from(attempt).wrapping_mul(0xE703_7ED1_A0B4_28DB)
                ^ salt.wrapping_mul(0x8EBC_6AF0_9C88_C6E3),
        )
    }

    /// Should a fault hit this `(lane, epoch, attempt)`? Targeted faults
    /// win over probabilistic rolls; kinds roll in [`OrchFaultKind::ALL`]
    /// order. Pure in the plan and the position — re-deciding the same
    /// position always answers the same.
    pub fn decide(&self, lane: u64, epoch: u64, attempt: u32) -> Option<OrchFaultKind> {
        for t in &self.targeted {
            if t.lane == lane && t.epoch == epoch && attempt < t.fires {
                return Some(t.kind);
            }
        }
        for &k in &OrchFaultKind::ALL {
            let p = self.rate(k);
            if p <= 0.0 {
                continue;
            }
            let bits = self.position_bits(lane, epoch, attempt, k.salt());
            let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if u < p {
                return Some(k);
            }
        }
        None
    }

    /// Deterministic auxiliary bits for a decided fault — e.g. how many
    /// steps into the epoch the panic or wedge lands. Salted differently
    /// from the decision rolls so the two draws are independent.
    pub fn aux_bits(&self, lane: u64, epoch: u64, attempt: u32) -> u64 {
        self.position_bits(lane, epoch, attempt, 0x5C5C)
    }

    /// Encode the plan for transfer to a worker process (stable wire
    /// format; a worker must inject exactly the faults its in-process twin
    /// would).
    pub fn encode(&self, w: &mut crate::wire::Writer) {
        w.put_u64(self.seed);
        w.put_u64(self.worker_panic.to_bits());
        w.put_u64(self.lane_hang.to_bits());
        w.put_u64(self.barrier_timeout.to_bits());
        w.put_usize(self.targeted.len());
        for t in &self.targeted {
            w.put_u64(t.lane);
            w.put_u64(t.epoch);
            w.put_u8(t.kind.wire_tag());
            w.put_u32(t.fires);
        }
    }

    /// Decode a plan written by [`OrchFaultPlan::encode`].
    ///
    /// # Errors
    /// [`crate::wire::WireError`] on truncated or malformed bytes.
    pub fn decode(
        r: &mut crate::wire::Reader<'_>,
    ) -> Result<Self, crate::wire::WireError> {
        let seed = r.get_u64()?;
        let worker_panic = f64::from_bits(r.get_u64()?);
        let lane_hang = f64::from_bits(r.get_u64()?);
        let barrier_timeout = f64::from_bits(r.get_u64()?);
        let n = r.get_count()?;
        // Each targeted fault is 21 bytes on the wire.
        if n > r.remaining() / 21 {
            return Err(crate::wire::WireError::Truncated);
        }
        let mut targeted = Vec::with_capacity(n);
        for _ in 0..n {
            targeted.push(OrchFault {
                lane: r.get_u64()?,
                epoch: r.get_u64()?,
                kind: OrchFaultKind::from_wire_tag(r.get_u8()?)?,
                fires: r.get_u32()?,
            });
        }
        Ok(OrchFaultPlan {
            seed,
            worker_panic,
            lane_hang,
            barrier_timeout,
            targeted,
        })
    }
}

impl OrchFaultKind {
    /// Stable wire tag for plan transfer.
    pub fn wire_tag(self) -> u8 {
        match self {
            OrchFaultKind::WorkerPanic => 0,
            OrchFaultKind::LaneHang => 1,
            OrchFaultKind::BarrierTimeout => 2,
        }
    }

    /// Inverse of [`OrchFaultKind::wire_tag`].
    ///
    /// # Errors
    /// [`crate::wire::WireError::Malformed`] on an unknown tag.
    pub fn from_wire_tag(tag: u8) -> Result<Self, crate::wire::WireError> {
        Ok(match tag {
            0 => OrchFaultKind::WorkerPanic,
            1 => OrchFaultKind::LaneHang,
            2 => OrchFaultKind::BarrierTimeout,
            _ => return Err(crate::wire::WireError::Malformed("orch fault tag")),
        })
    }
}

// ---------------------------------------------------------------------------
// Process-isolation faults.
// ---------------------------------------------------------------------------

/// Faults that kill or corrupt a whole worker *process* rather than a lane
/// thread — the hazards lane-per-process isolation exists to contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcFaultKind {
    /// The supervisor SIGKILLs the worker mid-epoch (models an external
    /// OOM-killer or operator kill: the child gets no chance to clean up).
    Kill,
    /// The worker aborts mid-epoch (`abort()` — a heap-corruption check,
    /// a failed assertion).
    Abort,
    /// The worker exits with the conventional OOM status (137) mid-epoch.
    Oom,
    /// The worker stops responding mid-epoch and must be caught by the
    /// supervisor's wall-clock read deadline.
    Stall,
    /// The worker completes its epoch but its barrier frame arrives
    /// corrupted (torn or bit-flipped on the pipe).
    GarbageFrame,
}

impl ProcFaultKind {
    /// Every kind, in salt order.
    pub const ALL: [ProcFaultKind; 5] = [
        ProcFaultKind::Kill,
        ProcFaultKind::Abort,
        ProcFaultKind::Oom,
        ProcFaultKind::Stall,
        ProcFaultKind::GarbageFrame,
    ];

    /// Stable short name for logs and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            ProcFaultKind::Kill => "kill",
            ProcFaultKind::Abort => "abort",
            ProcFaultKind::Oom => "oom",
            ProcFaultKind::Stall => "stall",
            ProcFaultKind::GarbageFrame => "garbage_frame",
        }
    }

    fn salt(self) -> u64 {
        match self {
            ProcFaultKind::Kill => 11,
            ProcFaultKind::Abort => 12,
            ProcFaultKind::Oom => 13,
            ProcFaultKind::Stall => 14,
            ProcFaultKind::GarbageFrame => 15,
        }
    }

    /// Stable wire tag for plan transfer.
    pub fn wire_tag(self) -> u8 {
        match self {
            ProcFaultKind::Kill => 0,
            ProcFaultKind::Abort => 1,
            ProcFaultKind::Oom => 2,
            ProcFaultKind::Stall => 3,
            ProcFaultKind::GarbageFrame => 4,
        }
    }

    /// Inverse of [`ProcFaultKind::wire_tag`].
    ///
    /// # Errors
    /// [`crate::wire::WireError::Malformed`] on an unknown tag.
    pub fn from_wire_tag(tag: u8) -> Result<Self, crate::wire::WireError> {
        Ok(match tag {
            0 => ProcFaultKind::Kill,
            1 => ProcFaultKind::Abort,
            2 => ProcFaultKind::Oom,
            3 => ProcFaultKind::Stall,
            4 => ProcFaultKind::GarbageFrame,
            _ => return Err(crate::wire::WireError::Malformed("proc fault tag")),
        })
    }
}

/// One targeted process fault, mirroring [`OrchFault`] at the process
/// level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcFault {
    /// Lane (= worker process) index the fault targets.
    pub lane: u64,
    /// Epoch the fault targets.
    pub epoch: u64,
    /// What goes wrong.
    pub kind: ProcFaultKind,
    /// Consecutive attempts (starting at 0) that fail before the worker
    /// runs clean.
    pub fires: u32,
}

/// A deterministic plan of process-level faults. Decisions are pure in
/// `(lane, epoch, attempt)` for the same scheduling-independence reasons
/// as [`OrchFaultPlan`]; the supervisor and the targeted worker both
/// evaluate the same plan and agree on what fires where.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProcFaultPlan {
    /// Seed for the probabilistic rolls.
    pub seed: u64,
    /// P(SIGKILL from the supervisor) per lane-epoch attempt.
    pub kill: f64,
    /// P(worker abort) per lane-epoch attempt.
    pub abort: f64,
    /// P(worker OOM exit) per lane-epoch attempt.
    pub oom: f64,
    /// P(worker stall) per lane-epoch attempt.
    pub stall: f64,
    /// P(corrupted barrier frame) per lane-epoch attempt.
    pub garbage_frame: f64,
    /// Targeted faults, checked before the probabilistic rolls (first
    /// match wins).
    pub targeted: Vec<ProcFault>,
}

impl ProcFaultPlan {
    /// No process faults (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// A single targeted fault firing once at `(lane, epoch)`.
    pub fn at(lane: u64, epoch: u64, kind: ProcFaultKind) -> Self {
        ProcFaultPlan {
            targeted: vec![ProcFault {
                lane,
                epoch,
                kind,
                fires: 1,
            }],
            ..Self::default()
        }
    }

    /// Probability configured for `kind`.
    pub fn rate(&self, kind: ProcFaultKind) -> f64 {
        match kind {
            ProcFaultKind::Kill => self.kill,
            ProcFaultKind::Abort => self.abort,
            ProcFaultKind::Oom => self.oom,
            ProcFaultKind::Stall => self.stall,
            ProcFaultKind::GarbageFrame => self.garbage_frame,
        }
    }

    /// Does this plan never inject anything?
    pub fn is_none(&self) -> bool {
        self.targeted.is_empty() && ProcFaultKind::ALL.iter().all(|&k| self.rate(k) <= 0.0)
    }

    fn position_bits(&self, lane: u64, epoch: u64, attempt: u32, salt: u64) -> u64 {
        splitmix64(
            self.seed
                ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ epoch.wrapping_mul(0xA076_1D64_78BD_642F)
                ^ u64::from(attempt).wrapping_mul(0xE703_7ED1_A0B4_28DB)
                ^ salt.wrapping_mul(0x8EBC_6AF0_9C88_C6E3),
        )
    }

    /// Should a process fault hit this `(lane, epoch, attempt)`? Targeted
    /// faults win; kinds roll in [`ProcFaultKind::ALL`] order. Pure in the
    /// plan and the position.
    pub fn decide(&self, lane: u64, epoch: u64, attempt: u32) -> Option<ProcFaultKind> {
        for t in &self.targeted {
            if t.lane == lane && t.epoch == epoch && attempt < t.fires {
                return Some(t.kind);
            }
        }
        for &k in &ProcFaultKind::ALL {
            let p = self.rate(k);
            if p <= 0.0 {
                continue;
            }
            let bits = self.position_bits(lane, epoch, attempt, k.salt());
            let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if u < p {
                return Some(k);
            }
        }
        None
    }

    /// Deterministic auxiliary bits for a decided fault — how many steps
    /// into the epoch the process dies or wedges.
    pub fn aux_bits(&self, lane: u64, epoch: u64, attempt: u32) -> u64 {
        self.position_bits(lane, epoch, attempt, 0x7A7A)
    }

    /// Encode the plan for transfer to a worker process.
    pub fn encode(&self, w: &mut crate::wire::Writer) {
        w.put_u64(self.seed);
        w.put_u64(self.kill.to_bits());
        w.put_u64(self.abort.to_bits());
        w.put_u64(self.oom.to_bits());
        w.put_u64(self.stall.to_bits());
        w.put_u64(self.garbage_frame.to_bits());
        w.put_usize(self.targeted.len());
        for t in &self.targeted {
            w.put_u64(t.lane);
            w.put_u64(t.epoch);
            w.put_u8(t.kind.wire_tag());
            w.put_u32(t.fires);
        }
    }

    /// Decode a plan written by [`ProcFaultPlan::encode`].
    ///
    /// # Errors
    /// [`crate::wire::WireError`] on truncated or malformed bytes.
    pub fn decode(
        r: &mut crate::wire::Reader<'_>,
    ) -> Result<Self, crate::wire::WireError> {
        let seed = r.get_u64()?;
        let kill = f64::from_bits(r.get_u64()?);
        let abort = f64::from_bits(r.get_u64()?);
        let oom = f64::from_bits(r.get_u64()?);
        let stall = f64::from_bits(r.get_u64()?);
        let garbage_frame = f64::from_bits(r.get_u64()?);
        let n = r.get_count()?;
        if n > r.remaining() / 21 {
            return Err(crate::wire::WireError::Truncated);
        }
        let mut targeted = Vec::with_capacity(n);
        for _ in 0..n {
            targeted.push(ProcFault {
                lane: r.get_u64()?,
                epoch: r.get_u64()?,
                kind: ProcFaultKind::from_wire_tag(r.get_u8()?)?,
                fires: r.get_u32()?,
            });
        }
        Ok(ProcFaultPlan {
            seed,
            kill,
            abort,
            oom,
            stall,
            garbage_frame,
            targeted,
        })
    }
}

// ---------------------------------------------------------------------------
// Storage (disk) faults.
// ---------------------------------------------------------------------------

/// Faults injected at checkpoint-storage I/O boundaries: the hazards a
/// long campaign's filesystem actually develops. Transient kinds
/// ([`NoSpace`](DiskFaultKind::NoSpace), [`Io`](DiskFaultKind::Io),
/// [`ShortWrite`](DiskFaultKind::ShortWrite)) fail the operation and are
/// retried; crash kinds ([`CrashAtBoundary`](DiskFaultKind::CrashAtBoundary),
/// [`RenameLost`](DiskFaultKind::RenameLost)) stop the campaign at that
/// exact boundary, leaving the partial on-disk state a power loss would;
/// [`Bitrot`](DiskFaultKind::Bitrot) corrupts a committed file silently,
/// to be caught (or missed) by the resume-time scrub.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskFaultKind {
    /// The write fails with `ENOSPC` before any byte lands.
    NoSpace,
    /// The operation fails with `EIO` before any byte lands.
    Io,
    /// A prefix of the bytes lands, then the write fails (`EIO`).
    ShortWrite,
    /// The machine "dies" at this I/O boundary: a prefix of the bytes may
    /// have landed, and nothing after this operation runs.
    CrashAtBoundary,
    /// Power loss between `rename` and the directory fsync: the rename is
    /// lost (the file stays at its temp name) and the machine dies. On
    /// operations that are not renames this degenerates to
    /// [`CrashAtBoundary`].
    RenameLost,
    /// The operation *succeeds*, then one committed bit flips on the
    /// platter. No error is returned — only a checksum scrub can see it.
    Bitrot,
}

impl DiskFaultKind {
    /// Every kind, in salt order.
    pub const ALL: [DiskFaultKind; 6] = [
        DiskFaultKind::NoSpace,
        DiskFaultKind::Io,
        DiskFaultKind::ShortWrite,
        DiskFaultKind::CrashAtBoundary,
        DiskFaultKind::RenameLost,
        DiskFaultKind::Bitrot,
    ];

    /// Stable short name for logs and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            DiskFaultKind::NoSpace => "no_space",
            DiskFaultKind::Io => "io_error",
            DiskFaultKind::ShortWrite => "short_write",
            DiskFaultKind::CrashAtBoundary => "crash_at_boundary",
            DiskFaultKind::RenameLost => "rename_lost",
            DiskFaultKind::Bitrot => "bitrot",
        }
    }

    /// Does this kind fail the operation with a retryable error (as
    /// opposed to crashing the machine or corrupting silently)?
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            DiskFaultKind::NoSpace | DiskFaultKind::Io | DiskFaultKind::ShortWrite
        )
    }

    fn salt(self) -> u64 {
        match self {
            DiskFaultKind::NoSpace => 21,
            DiskFaultKind::Io => 22,
            DiskFaultKind::ShortWrite => 23,
            DiskFaultKind::CrashAtBoundary => 24,
            DiskFaultKind::RenameLost => 25,
            DiskFaultKind::Bitrot => 26,
        }
    }

    /// Stable wire tag for plan transfer.
    pub fn wire_tag(self) -> u8 {
        match self {
            DiskFaultKind::NoSpace => 0,
            DiskFaultKind::Io => 1,
            DiskFaultKind::ShortWrite => 2,
            DiskFaultKind::CrashAtBoundary => 3,
            DiskFaultKind::RenameLost => 4,
            DiskFaultKind::Bitrot => 5,
        }
    }

    /// Inverse of [`DiskFaultKind::wire_tag`].
    ///
    /// # Errors
    /// [`crate::wire::WireError::Malformed`] on an unknown tag.
    pub fn from_wire_tag(tag: u8) -> Result<Self, crate::wire::WireError> {
        Ok(match tag {
            0 => DiskFaultKind::NoSpace,
            1 => DiskFaultKind::Io,
            2 => DiskFaultKind::ShortWrite,
            3 => DiskFaultKind::CrashAtBoundary,
            4 => DiskFaultKind::RenameLost,
            5 => DiskFaultKind::Bitrot,
            _ => return Err(crate::wire::WireError::Malformed("disk fault tag")),
        })
    }
}

/// One targeted disk fault: fire `kind` at operation `op` of I/O `stream`
/// on the first `fires` consecutive attempts of that operation. `fires`
/// larger than the storage retry budget models permanently-broken storage
/// — the degradation ladder is exercised by exactly this knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFault {
    /// I/O stream the fault targets (0 = the campaign's coordinator
    /// control plane; `1 + lane` = that lane's journal stream).
    pub stream: u64,
    /// Zero-based operation index within the stream.
    pub op: u64,
    /// What goes wrong.
    pub kind: DiskFaultKind,
    /// Consecutive attempts (starting at 0) that fail before the
    /// operation succeeds.
    pub fires: u32,
}

/// A deterministic plan of storage faults: targeted `(stream, op)` hits
/// plus per-kind probabilities rolled position-wise.
///
/// Decisions are pure in `(stream, op, attempt)` for the same
/// scheduling-independence reasons as [`OrchFaultPlan`]: per-lane journal
/// streams run on concurrent worker threads, so a shared roll counter
/// would make injection depend on thread scheduling. Each stream numbers
/// its own operations sequentially, so the same plan hits the same
/// operation no matter how the streams interleave.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiskFaultPlan {
    /// Seed for the probabilistic rolls.
    pub seed: u64,
    /// P(ENOSPC) per operation attempt.
    pub no_space: f64,
    /// P(EIO) per operation attempt.
    pub io_error: f64,
    /// P(short write) per operation attempt.
    pub short_write: f64,
    /// P(crash at the boundary) per operation attempt.
    pub crash_at_boundary: f64,
    /// P(lost rename + crash) per operation attempt.
    pub rename_lost: f64,
    /// P(silent post-commit bit flip) per operation attempt.
    pub bitrot: f64,
    /// Targeted faults, checked before the probabilistic rolls (first
    /// match wins).
    pub targeted: Vec<DiskFault>,
}

impl DiskFaultPlan {
    /// No disk faults (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// A single targeted fault firing once at `(stream, op)`.
    pub fn at(stream: u64, op: u64, kind: DiskFaultKind) -> Self {
        DiskFaultPlan {
            targeted: vec![DiskFault {
                stream,
                op,
                kind,
                fires: 1,
            }],
            ..Self::default()
        }
    }

    /// Every *transient* kind at the same probabilistic `rate` (crash and
    /// bitrot kinds stay off — a uniform rain of machine deaths is rarely
    /// what an evaluation wants; target those explicitly).
    pub fn uniform_transient(seed: u64, rate: f64) -> Self {
        DiskFaultPlan {
            seed,
            no_space: rate,
            io_error: rate,
            short_write: rate,
            ..Self::default()
        }
    }

    /// Probability configured for `kind`.
    pub fn rate(&self, kind: DiskFaultKind) -> f64 {
        match kind {
            DiskFaultKind::NoSpace => self.no_space,
            DiskFaultKind::Io => self.io_error,
            DiskFaultKind::ShortWrite => self.short_write,
            DiskFaultKind::CrashAtBoundary => self.crash_at_boundary,
            DiskFaultKind::RenameLost => self.rename_lost,
            DiskFaultKind::Bitrot => self.bitrot,
        }
    }

    /// Does this plan never inject anything?
    pub fn is_none(&self) -> bool {
        self.targeted.is_empty() && DiskFaultKind::ALL.iter().all(|&k| self.rate(k) <= 0.0)
    }

    fn position_bits(&self, stream: u64, op: u64, attempt: u32, salt: u64) -> u64 {
        splitmix64(
            self.seed
                ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ op.wrapping_mul(0xA076_1D64_78BD_642F)
                ^ u64::from(attempt).wrapping_mul(0xE703_7ED1_A0B4_28DB)
                ^ salt.wrapping_mul(0x8EBC_6AF0_9C88_C6E3),
        )
    }

    /// Should a disk fault hit attempt `attempt` of operation
    /// `(stream, op)`? Targeted faults win over probabilistic rolls; kinds
    /// roll in [`DiskFaultKind::ALL`] order. Pure in the plan and the
    /// position — re-deciding the same position always answers the same.
    pub fn decide(&self, stream: u64, op: u64, attempt: u32) -> Option<DiskFaultKind> {
        for t in &self.targeted {
            if t.stream == stream && t.op == op && attempt < t.fires {
                return Some(t.kind);
            }
        }
        for &k in &DiskFaultKind::ALL {
            let p = self.rate(k);
            if p <= 0.0 {
                continue;
            }
            let bits = self.position_bits(stream, op, attempt, k.salt());
            let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if u < p {
                return Some(k);
            }
        }
        None
    }

    /// Deterministic auxiliary bits for a decided fault — how many bytes
    /// of a short write land, which bit rots. Salted differently from the
    /// decision rolls so the two draws are independent.
    pub fn aux_bits(&self, stream: u64, op: u64, attempt: u32) -> u64 {
        self.position_bits(stream, op, attempt, 0x6D6D)
    }

    /// Encode the plan for transfer to a worker process (stable wire
    /// format; a worker must inject exactly the faults its in-process twin
    /// would).
    pub fn encode(&self, w: &mut crate::wire::Writer) {
        w.put_u64(self.seed);
        w.put_u64(self.no_space.to_bits());
        w.put_u64(self.io_error.to_bits());
        w.put_u64(self.short_write.to_bits());
        w.put_u64(self.crash_at_boundary.to_bits());
        w.put_u64(self.rename_lost.to_bits());
        w.put_u64(self.bitrot.to_bits());
        w.put_usize(self.targeted.len());
        for t in &self.targeted {
            w.put_u64(t.stream);
            w.put_u64(t.op);
            w.put_u8(t.kind.wire_tag());
            w.put_u32(t.fires);
        }
    }

    /// Decode a plan written by [`DiskFaultPlan::encode`].
    ///
    /// # Errors
    /// [`crate::wire::WireError`] on truncated or malformed bytes.
    pub fn decode(
        r: &mut crate::wire::Reader<'_>,
    ) -> Result<Self, crate::wire::WireError> {
        let seed = r.get_u64()?;
        let no_space = f64::from_bits(r.get_u64()?);
        let io_error = f64::from_bits(r.get_u64()?);
        let short_write = f64::from_bits(r.get_u64()?);
        let crash_at_boundary = f64::from_bits(r.get_u64()?);
        let rename_lost = f64::from_bits(r.get_u64()?);
        let bitrot = f64::from_bits(r.get_u64()?);
        let n = r.get_count()?;
        // Each targeted fault is 21 bytes on the wire.
        if n > r.remaining() / 21 {
            return Err(crate::wire::WireError::Truncated);
        }
        let mut targeted = Vec::with_capacity(n);
        for _ in 0..n {
            targeted.push(DiskFault {
                stream: r.get_u64()?,
                op: r.get_u64()?,
                kind: DiskFaultKind::from_wire_tag(r.get_u8()?)?,
                fires: r.get_u32()?,
            });
        }
        Ok(DiskFaultPlan {
            seed,
            no_space,
            io_error,
            short_write,
            crash_at_boundary,
            rename_lost,
            bitrot,
            targeted,
        })
    }
}

// ---------------------------------------------------------------------------
// Network (RPC transport) faults.
// ---------------------------------------------------------------------------

/// Faults injected at the RPC frame boundary: the hazards a client ⇄
/// service connection actually develops. All of them must be absorbed by
/// the retry/reconnect/resume ladder — a faulted transport may cost
/// retries and reconnects, never a diverged campaign result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetFaultKind {
    /// The frame silently never reaches the peer (packet loss past the
    /// retransmit budget, a dead middlebox). The connection stays up.
    Drop,
    /// The frame arrives late: simulated latency is accounted against the
    /// transport counters (never the campaign clock), then it is
    /// delivered intact.
    Delay,
    /// The frame arrives twice back to back — the classic retransmit
    /// duplicate idempotency keys exist to absorb.
    Duplicate,
    /// One bit of the frame flips in flight. The checksum rejects it; the
    /// receiver must resynchronize by dropping the connection, never by
    /// trusting the bytes.
    Corrupt,
    /// The connection dies cleanly before the frame is sent (peer reset,
    /// NAT timeout). Nothing of the frame reaches the wire.
    Disconnect,
    /// The connection dies mid-frame: a strict prefix of the bytes lands
    /// and then the stream closes — the torn-write case the frame codec's
    /// `Truncated`/`Eof` split exists for.
    PartialFrame,
}

impl NetFaultKind {
    /// Every kind, in salt order.
    pub const ALL: [NetFaultKind; 6] = [
        NetFaultKind::Drop,
        NetFaultKind::Delay,
        NetFaultKind::Duplicate,
        NetFaultKind::Corrupt,
        NetFaultKind::Disconnect,
        NetFaultKind::PartialFrame,
    ];

    /// Stable short name for logs and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            NetFaultKind::Drop => "drop",
            NetFaultKind::Delay => "delay",
            NetFaultKind::Duplicate => "duplicate",
            NetFaultKind::Corrupt => "corrupt",
            NetFaultKind::Disconnect => "disconnect",
            NetFaultKind::PartialFrame => "partial_frame",
        }
    }

    /// Does this kind end the connection (as opposed to mangling or
    /// delaying one frame while the stream stays usable)?
    pub fn kills_connection(self) -> bool {
        matches!(self, NetFaultKind::Disconnect | NetFaultKind::PartialFrame)
    }

    fn salt(self) -> u64 {
        match self {
            NetFaultKind::Drop => 41,
            NetFaultKind::Delay => 42,
            NetFaultKind::Duplicate => 43,
            NetFaultKind::Corrupt => 44,
            NetFaultKind::Disconnect => 45,
            NetFaultKind::PartialFrame => 46,
        }
    }

    /// Stable wire tag for plan transfer.
    pub fn wire_tag(self) -> u8 {
        match self {
            NetFaultKind::Drop => 0,
            NetFaultKind::Delay => 1,
            NetFaultKind::Duplicate => 2,
            NetFaultKind::Corrupt => 3,
            NetFaultKind::Disconnect => 4,
            NetFaultKind::PartialFrame => 5,
        }
    }

    /// Inverse of [`NetFaultKind::wire_tag`].
    ///
    /// # Errors
    /// [`crate::wire::WireError::Malformed`] on an unknown tag.
    pub fn from_wire_tag(tag: u8) -> Result<Self, crate::wire::WireError> {
        Ok(match tag {
            0 => NetFaultKind::Drop,
            1 => NetFaultKind::Delay,
            2 => NetFaultKind::Duplicate,
            3 => NetFaultKind::Corrupt,
            4 => NetFaultKind::Disconnect,
            5 => NetFaultKind::PartialFrame,
            _ => return Err(crate::wire::WireError::Malformed("net fault tag")),
        })
    }
}

/// One targeted network fault: fire `kind` at frame `frame` of direction
/// `direction` on connection `conn`, for the first `fires` times that
/// exact position is sent. `fires` beyond the client's retry budget
/// models a permanently-unreachable server — the typed
/// `Degraded(Local)` fallback is exercised by exactly this knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFault {
    /// Connection index the fault targets (the Nth connection the
    /// endpoint opened/accepted, starting at 0 — reconnects advance it).
    pub conn: u64,
    /// Direction on that connection: 0 = client → server (requests),
    /// 1 = server → client (replies).
    pub direction: u8,
    /// Zero-based frame sequence number within `(conn, direction)`.
    pub frame: u64,
    /// What goes wrong.
    pub kind: NetFaultKind,
    /// Times (starting at 0) this position fires before going quiet.
    pub fires: u32,
}

/// A deterministic plan of network faults: targeted
/// `(conn, direction, frame)` hits plus per-kind probabilities rolled
/// position-wise.
///
/// Decisions are pure in `(conn, direction, frame)` for the same
/// scheduling-independence reasons as [`OrchFaultPlan`]: requests and
/// replies flow on concurrent threads, so a shared roll counter would
/// make injection depend on thread interleaving. Each direction of each
/// connection numbers its own frames sequentially, so the same plan hits
/// the same frame no matter how the two directions interleave.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetFaultPlan {
    /// Seed for the probabilistic rolls.
    pub seed: u64,
    /// P(frame silently dropped) per frame.
    pub drop: f64,
    /// P(frame delayed) per frame.
    pub delay: f64,
    /// P(frame duplicated) per frame.
    pub duplicate: f64,
    /// P(one bit flipped in flight) per frame.
    pub corrupt: f64,
    /// P(connection dies before the frame) per frame.
    pub disconnect: f64,
    /// P(connection dies mid-frame) per frame.
    pub partial_frame: f64,
    /// Targeted faults, checked before the probabilistic rolls (first
    /// match wins).
    pub targeted: Vec<NetFault>,
}

impl NetFaultPlan {
    /// No network faults (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// A single targeted fault firing once at `(conn, direction, frame)`.
    pub fn at(conn: u64, direction: u8, frame: u64, kind: NetFaultKind) -> Self {
        NetFaultPlan {
            targeted: vec![NetFault {
                conn,
                direction,
                frame,
                kind,
                fires: 1,
            }],
            ..Self::default()
        }
    }

    /// Every *non-lethal* kind at the same probabilistic `rate`
    /// (disconnect kinds stay off — a uniform rain of dead connections is
    /// rarely what an evaluation wants; target those explicitly).
    pub fn uniform_lossy(seed: u64, rate: f64) -> Self {
        NetFaultPlan {
            seed,
            drop: rate,
            delay: rate,
            duplicate: rate,
            corrupt: rate,
            ..Self::default()
        }
    }

    /// Probability configured for `kind`.
    pub fn rate(&self, kind: NetFaultKind) -> f64 {
        match kind {
            NetFaultKind::Drop => self.drop,
            NetFaultKind::Delay => self.delay,
            NetFaultKind::Duplicate => self.duplicate,
            NetFaultKind::Corrupt => self.corrupt,
            NetFaultKind::Disconnect => self.disconnect,
            NetFaultKind::PartialFrame => self.partial_frame,
        }
    }

    /// Does this plan never inject anything?
    pub fn is_none(&self) -> bool {
        self.targeted.is_empty() && NetFaultKind::ALL.iter().all(|&k| self.rate(k) <= 0.0)
    }

    fn position_bits(&self, conn: u64, direction: u8, frame: u64, salt: u64) -> u64 {
        splitmix64(
            self.seed
                ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ u64::from(direction).wrapping_mul(0xE703_7ED1_A0B4_28DB)
                ^ frame.wrapping_mul(0xA076_1D64_78BD_642F)
                ^ salt.wrapping_mul(0x8EBC_6AF0_9C88_C6E3),
        )
    }

    /// Should a network fault hit frame `(conn, direction, frame)`?
    /// Targeted faults win over probabilistic rolls; kinds roll in
    /// [`NetFaultKind::ALL`] order. Pure in the plan and the position —
    /// re-deciding the same position always answers the same, no matter
    /// which thread asks or when.
    pub fn decide(&self, conn: u64, direction: u8, frame: u64) -> Option<NetFaultKind> {
        for t in &self.targeted {
            if t.conn == conn
                && t.direction == direction
                && t.frame == frame
                && t.fires > 0
            {
                return Some(t.kind);
            }
        }
        for &k in &NetFaultKind::ALL {
            let p = self.rate(k);
            if p <= 0.0 {
                continue;
            }
            let bits = self.position_bits(conn, direction, frame, k.salt());
            let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if u < p {
                return Some(k);
            }
        }
        None
    }

    /// Burn one firing of a targeted fault at this position (a position
    /// that is *resent* — the same request retransmitted on the same
    /// connection — must not re-fire a single-shot fault forever).
    /// Probabilistic rolls are unaffected: they re-decide identically.
    pub fn consume(&mut self, conn: u64, direction: u8, frame: u64) {
        for t in &mut self.targeted {
            if t.conn == conn && t.direction == direction && t.frame == frame && t.fires > 0 {
                t.fires -= 1;
                return;
            }
        }
    }

    /// Deterministic auxiliary bits for a decided fault — how many bytes
    /// of a partial frame land, which bit corrupts, how long a delay
    /// lasts. Salted differently from the decision rolls so the two draws
    /// are independent.
    pub fn aux_bits(&self, conn: u64, direction: u8, frame: u64) -> u64 {
        self.position_bits(conn, direction, frame, 0x4E4E)
    }

    /// Encode the plan for transfer (stable wire format; a remote
    /// endpoint must inject exactly the faults its in-process twin
    /// would).
    pub fn encode(&self, w: &mut crate::wire::Writer) {
        w.put_u64(self.seed);
        w.put_u64(self.drop.to_bits());
        w.put_u64(self.delay.to_bits());
        w.put_u64(self.duplicate.to_bits());
        w.put_u64(self.corrupt.to_bits());
        w.put_u64(self.disconnect.to_bits());
        w.put_u64(self.partial_frame.to_bits());
        w.put_usize(self.targeted.len());
        for t in &self.targeted {
            w.put_u64(t.conn);
            w.put_u8(t.direction);
            w.put_u64(t.frame);
            w.put_u8(t.kind.wire_tag());
            w.put_u32(t.fires);
        }
    }

    /// Decode a plan written by [`NetFaultPlan::encode`].
    ///
    /// # Errors
    /// [`crate::wire::WireError`] on truncated or malformed bytes.
    pub fn decode(
        r: &mut crate::wire::Reader<'_>,
    ) -> Result<Self, crate::wire::WireError> {
        let seed = r.get_u64()?;
        let drop = f64::from_bits(r.get_u64()?);
        let delay = f64::from_bits(r.get_u64()?);
        let duplicate = f64::from_bits(r.get_u64()?);
        let corrupt = f64::from_bits(r.get_u64()?);
        let disconnect = f64::from_bits(r.get_u64()?);
        let partial_frame = f64::from_bits(r.get_u64()?);
        let n = r.get_count()?;
        // Each targeted fault is 22 bytes on the wire.
        if n > r.remaining() / 22 {
            return Err(crate::wire::WireError::Truncated);
        }
        let mut targeted = Vec::with_capacity(n);
        for _ in 0..n {
            targeted.push(NetFault {
                conn: r.get_u64()?,
                direction: r.get_u8()?,
                frame: r.get_u64()?,
                kind: NetFaultKind::from_wire_tag(r.get_u8()?)?,
                fires: r.get_u32()?,
            });
        }
        Ok(NetFaultPlan {
            seed,
            drop,
            delay,
            duplicate,
            corrupt,
            disconnect,
            partial_frame,
            targeted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_never_fires() {
        let mut f = FaultPlane::disabled();
        for _ in 0..10_000 {
            for &k in &FaultKind::ALL {
                assert!(!f.roll(k));
            }
        }
        assert_eq!(f.total(), 0);
    }

    #[test]
    fn rolls_are_deterministic_per_seed() {
        let run = |seed| {
            let mut f = FaultPlane::new(FaultPlan::uniform(seed, 0.1));
            (0..2000)
                .map(|_| f.roll(FaultKind::MallocNull))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn rates_are_respected_roughly() {
        let mut f = FaultPlane::new(FaultPlan::uniform(3, 0.2));
        let hits = (0..10_000).filter(|_| f.roll(FaultKind::FdLeak)).count();
        assert!((1500..2500).contains(&hits), "p=0.2 gave {hits}/10000");
        assert_eq!(f.count(FaultKind::FdLeak), hits as u64);
        assert_eq!(f.total(), hits as u64);
    }

    #[test]
    fn certain_plan_always_fires() {
        let mut f = FaultPlane::new(FaultPlan::uniform(1, 1.0));
        assert!(f.roll(FaultKind::ForkFail));
        let (off, mask) = f.bitflip_for(64).expect("p=1 must flip");
        assert!(off < 64);
        assert!(mask.is_power_of_two());
    }

    #[test]
    fn bitflip_never_fires_on_empty_section() {
        let mut f = FaultPlane::new(FaultPlan::uniform(1, 1.0));
        assert_eq!(f.bitflip_for(0), None);
    }

    #[test]
    fn counter_export_restore_resumes_roll_stream() {
        let mut a = FaultPlane::new(FaultPlan::uniform(9, 0.3));
        for _ in 0..100 {
            a.roll(FaultKind::MallocNull);
        }
        let (rolls, injected) = a.export_counters();
        let mut b = FaultPlane::new(FaultPlan::uniform(9, 0.3));
        b.restore_counters(rolls, injected);
        let va: Vec<bool> = (0..200).map(|_| a.roll(FaultKind::MallocNull)).collect();
        let vb: Vec<bool> = (0..200).map(|_| b.roll(FaultKind::MallocNull)).collect();
        assert_eq!(va, vb, "restored plane must continue the same stream");
        assert_eq!(a.total(), b.total());
    }

    #[test]
    fn reset_clears_counters_and_replays() {
        let mut f = FaultPlane::new(FaultPlan::uniform(5, 0.5));
        let first: Vec<bool> = (0..64).map(|_| f.roll(FaultKind::FopenFail)).collect();
        assert!(f.total() > 0);
        f.reset();
        assert_eq!(f.total(), 0);
        let second: Vec<bool> = (0..64).map(|_| f.roll(FaultKind::FopenFail)).collect();
        assert_eq!(first, second, "reset must replay the same stream");
    }

    #[test]
    fn orch_plan_none_never_decides() {
        let p = OrchFaultPlan::none();
        assert!(p.is_none());
        for lane in 0..8 {
            for epoch in 0..8 {
                for attempt in 0..4 {
                    assert_eq!(p.decide(lane, epoch, attempt), None);
                }
            }
        }
    }

    #[test]
    fn orch_targeted_fault_fires_then_clears() {
        let p = OrchFaultPlan {
            targeted: vec![OrchFault {
                lane: 2,
                epoch: 1,
                kind: OrchFaultKind::LaneHang,
                fires: 2,
            }],
            ..OrchFaultPlan::default()
        };
        assert!(!p.is_none());
        assert_eq!(p.decide(2, 1, 0), Some(OrchFaultKind::LaneHang));
        assert_eq!(p.decide(2, 1, 1), Some(OrchFaultKind::LaneHang));
        assert_eq!(p.decide(2, 1, 2), None, "retry past `fires` runs clean");
        assert_eq!(p.decide(2, 0, 0), None, "other epochs untouched");
        assert_eq!(p.decide(1, 1, 0), None, "other lanes untouched");
    }

    #[test]
    fn orch_decisions_are_position_pure() {
        let p = OrchFaultPlan::uniform(0xFEED, 0.35);
        let sweep = || {
            let mut v = Vec::new();
            for lane in 0..6 {
                for epoch in 0..6 {
                    for attempt in 0..3 {
                        v.push(p.decide(lane, epoch, attempt));
                    }
                }
            }
            v
        };
        assert_eq!(sweep(), sweep(), "same plan, same positions, same answer");
        let hits = sweep().iter().filter(|d| d.is_some()).count();
        assert!(hits > 0, "a 35% uniform plan must hit something in 108 cells");
        let other = OrchFaultPlan::uniform(0xBEEF, 0.35);
        let mut differs = false;
        for lane in 0..6 {
            for epoch in 0..6 {
                differs |= p.decide(lane, epoch, 0) != other.decide(lane, epoch, 0);
            }
        }
        assert!(differs, "the seed must matter");
    }

    #[test]
    fn orch_aux_bits_vary_by_position() {
        let p = OrchFaultPlan::uniform(7, 1.0);
        assert_ne!(p.aux_bits(0, 0, 0), p.aux_bits(0, 0, 1));
        assert_ne!(p.aux_bits(0, 0, 0), p.aux_bits(1, 0, 0));
        assert_eq!(p.aux_bits(3, 2, 1), p.aux_bits(3, 2, 1));
    }

    #[test]
    fn orch_plan_round_trips_on_the_wire() {
        let mut p = OrchFaultPlan::uniform(0xABCD, 0.125);
        p.targeted.push(OrchFault {
            lane: 3,
            epoch: 9,
            kind: OrchFaultKind::BarrierTimeout,
            fires: 4,
        });
        let mut w = crate::wire::Writer::new();
        p.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::wire::Reader::new(&bytes);
        assert_eq!(OrchFaultPlan::decode(&mut r).unwrap(), p);
        assert!(r.is_empty());
        for cut in 0..bytes.len() {
            let mut r = crate::wire::Reader::new(&bytes[..cut]);
            assert!(OrchFaultPlan::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn proc_targeted_fault_fires_then_clears() {
        let p = ProcFaultPlan::at(1, 2, ProcFaultKind::Abort);
        assert!(!p.is_none());
        assert_eq!(p.decide(1, 2, 0), Some(ProcFaultKind::Abort));
        assert_eq!(p.decide(1, 2, 1), None, "retry runs clean");
        assert_eq!(p.decide(1, 1, 0), None);
        assert_eq!(p.decide(0, 2, 0), None);
        assert!(ProcFaultPlan::none().is_none());
    }

    #[test]
    fn proc_decisions_are_position_pure_and_seeded() {
        let p = ProcFaultPlan {
            seed: 0x1234,
            kill: 0.3,
            abort: 0.3,
            oom: 0.3,
            stall: 0.3,
            garbage_frame: 0.3,
            targeted: Vec::new(),
        };
        let sweep = || {
            let mut v = Vec::new();
            for lane in 0..6 {
                for epoch in 0..6 {
                    v.push(p.decide(lane, epoch, 0));
                }
            }
            v
        };
        assert_eq!(sweep(), sweep());
        assert!(sweep().iter().any(Option::is_some));
        let other = ProcFaultPlan {
            seed: 0x4321,
            ..p.clone()
        };
        assert!(
            (0..6).any(|l| (0..6).any(|e| p.decide(l, e, 0) != other.decide(l, e, 0))),
            "the seed must matter"
        );
        assert_ne!(p.aux_bits(0, 0, 0), p.aux_bits(0, 1, 0));
    }

    #[test]
    fn proc_plan_round_trips_on_the_wire() {
        let mut p = ProcFaultPlan {
            seed: 7,
            kill: 0.5,
            ..ProcFaultPlan::default()
        };
        p.targeted.push(ProcFault {
            lane: 0,
            epoch: 1,
            kind: ProcFaultKind::GarbageFrame,
            fires: 2,
        });
        let mut w = crate::wire::Writer::new();
        p.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::wire::Reader::new(&bytes);
        assert_eq!(ProcFaultPlan::decode(&mut r).unwrap(), p);
        assert!(r.is_empty());
        for cut in 0..bytes.len() {
            let mut r = crate::wire::Reader::new(&bytes[..cut]);
            assert!(ProcFaultPlan::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn proc_fault_tags_round_trip() {
        for kind in ProcFaultKind::ALL {
            assert_eq!(ProcFaultKind::from_wire_tag(kind.wire_tag()).unwrap(), kind);
            assert!(!kind.name().is_empty());
        }
        assert!(ProcFaultKind::from_wire_tag(99).is_err());
        for kind in OrchFaultKind::ALL {
            assert_eq!(OrchFaultKind::from_wire_tag(kind.wire_tag()).unwrap(), kind);
        }
        assert!(OrchFaultKind::from_wire_tag(99).is_err());
    }

    #[test]
    fn disk_targeted_fault_fires_then_clears() {
        let p = DiskFaultPlan::at(0, 3, DiskFaultKind::NoSpace);
        assert!(!p.is_none());
        assert_eq!(p.decide(0, 3, 0), Some(DiskFaultKind::NoSpace));
        assert_eq!(p.decide(0, 3, 1), None, "retry runs clean");
        assert_eq!(p.decide(0, 2, 0), None, "other ops untouched");
        assert_eq!(p.decide(1, 3, 0), None, "other streams untouched");
        assert!(DiskFaultPlan::none().is_none());
        let stubborn = DiskFaultPlan {
            targeted: vec![DiskFault {
                stream: 2,
                op: 0,
                kind: DiskFaultKind::Io,
                fires: 3,
            }],
            ..DiskFaultPlan::default()
        };
        for attempt in 0..3 {
            assert_eq!(stubborn.decide(2, 0, attempt), Some(DiskFaultKind::Io));
        }
        assert_eq!(stubborn.decide(2, 0, 3), None, "past `fires` runs clean");
    }

    #[test]
    fn disk_decisions_are_position_pure_and_seeded() {
        let p = DiskFaultPlan::uniform_transient(0xD15C, 0.3);
        let sweep = || {
            let mut v = Vec::new();
            for stream in 0..4 {
                for op in 0..16 {
                    for attempt in 0..2 {
                        v.push(p.decide(stream, op, attempt));
                    }
                }
            }
            v
        };
        assert_eq!(sweep(), sweep(), "same plan, same positions, same answer");
        let decisions = sweep();
        assert!(decisions.iter().any(Option::is_some));
        assert!(
            decisions
                .iter()
                .flatten()
                .all(|k| k.is_transient()),
            "uniform_transient must never decide a crash or bitrot kind"
        );
        let other = DiskFaultPlan::uniform_transient(0xC5D1, 0.3);
        assert!(
            (0..4).any(|s| (0..16).any(|op| p.decide(s, op, 0) != other.decide(s, op, 0))),
            "the seed must matter"
        );
        assert_ne!(p.aux_bits(0, 0, 0), p.aux_bits(0, 1, 0));
        assert_eq!(p.aux_bits(3, 2, 1), p.aux_bits(3, 2, 1));
    }

    #[test]
    fn disk_plan_round_trips_on_the_wire() {
        let mut p = DiskFaultPlan::uniform_transient(0xABCD, 0.125);
        p.bitrot = 0.01;
        p.targeted.push(DiskFault {
            stream: 2,
            op: 17,
            kind: DiskFaultKind::RenameLost,
            fires: 2,
        });
        let mut w = crate::wire::Writer::new();
        p.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::wire::Reader::new(&bytes);
        assert_eq!(DiskFaultPlan::decode(&mut r).unwrap(), p);
        assert!(r.is_empty());
        for cut in 0..bytes.len() {
            let mut r = crate::wire::Reader::new(&bytes[..cut]);
            assert!(DiskFaultPlan::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn disk_fault_tags_round_trip() {
        for kind in DiskFaultKind::ALL {
            assert_eq!(DiskFaultKind::from_wire_tag(kind.wire_tag()).unwrap(), kind);
            assert!(!kind.name().is_empty());
        }
        assert!(DiskFaultKind::from_wire_tag(99).is_err());
    }

    #[test]
    fn net_targeted_fault_fires_then_consumes() {
        let mut p = NetFaultPlan::at(0, 1, 3, NetFaultKind::Corrupt);
        assert!(!p.is_none());
        assert_eq!(p.decide(0, 1, 3), Some(NetFaultKind::Corrupt));
        assert_eq!(p.decide(0, 0, 3), None, "other direction untouched");
        assert_eq!(p.decide(0, 1, 2), None, "other frames untouched");
        assert_eq!(p.decide(1, 1, 3), None, "other connections untouched");
        // Deciding does not burn the firing — only `consume` does, so a
        // re-decided position answers the same until the send commits.
        assert_eq!(p.decide(0, 1, 3), Some(NetFaultKind::Corrupt));
        p.consume(0, 1, 3);
        assert_eq!(p.decide(0, 1, 3), None, "single-shot fault is spent");
        assert!(NetFaultPlan::none().is_none());

        let mut stubborn = NetFaultPlan {
            targeted: vec![NetFault {
                conn: 2,
                direction: 0,
                frame: 0,
                kind: NetFaultKind::Disconnect,
                fires: 3,
            }],
            ..NetFaultPlan::default()
        };
        for round in 0..3 {
            assert_eq!(
                stubborn.decide(2, 0, 0),
                Some(NetFaultKind::Disconnect),
                "firing {round}"
            );
            stubborn.consume(2, 0, 0);
        }
        assert_eq!(stubborn.decide(2, 0, 0), None, "past `fires` runs clean");
    }

    #[test]
    fn net_decisions_are_position_pure_and_seeded() {
        let p = NetFaultPlan::uniform_lossy(0x4E7F, 0.3);
        let sweep = || {
            let mut v = Vec::new();
            for conn in 0..4u64 {
                for direction in 0..2u8 {
                    for frame in 0..16u64 {
                        v.push(p.decide(conn, direction, frame));
                    }
                }
            }
            v
        };
        assert_eq!(sweep(), sweep(), "same plan, same positions, same answer");
        let decisions = sweep();
        assert!(decisions.iter().any(Option::is_some));
        assert!(
            decisions.iter().flatten().all(|k| !k.kills_connection()),
            "uniform_lossy must never decide a connection-killing kind"
        );
        let other = NetFaultPlan::uniform_lossy(0x7F4E, 0.3);
        assert!(
            (0..4).any(|c| (0..16).any(|f| p.decide(c, 0, f) != other.decide(c, 0, f))),
            "the seed must matter"
        );
        assert_ne!(p.aux_bits(0, 0, 0), p.aux_bits(0, 1, 0));
        assert_eq!(p.aux_bits(3, 1, 7), p.aux_bits(3, 1, 7));
    }

    #[test]
    fn net_plan_round_trips_on_the_wire() {
        let mut p = NetFaultPlan::uniform_lossy(0xBEEF, 0.0625);
        p.disconnect = 0.01;
        p.targeted.push(NetFault {
            conn: 1,
            direction: 1,
            frame: 42,
            kind: NetFaultKind::PartialFrame,
            fires: 2,
        });
        let mut w = crate::wire::Writer::new();
        p.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::wire::Reader::new(&bytes);
        assert_eq!(NetFaultPlan::decode(&mut r).unwrap(), p);
        assert!(r.is_empty());
        for cut in 0..bytes.len() {
            let mut r = crate::wire::Reader::new(&bytes[..cut]);
            assert!(NetFaultPlan::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn net_fault_tags_round_trip() {
        for kind in NetFaultKind::ALL {
            assert_eq!(NetFaultKind::from_wire_tag(kind.wire_tag()).unwrap(), kind);
            assert!(!kind.name().is_empty());
        }
        assert!(NetFaultKind::from_wire_tag(99).is_err());
    }
}
