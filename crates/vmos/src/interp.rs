//! The FIR interpreter, with cycle accounting, coverage collection,
//! `setjmp`/`longjmp` continuations, and fuel-bounded execution.

use fir::{BinOp, Inst, Module, Operand, Terminator};

use crate::cost::CostModel;
use crate::cov::CovMap;
use crate::crash::{Crash, CrashKind};
use crate::decoded::{ChainOp, ChainTail, DFunc, DOp, DecodedImage};
use crate::hostcalls::{self, HostRet};
use crate::os::Os;
use crate::process::{Frame, JmpCtx, Process, MAX_CALL_DEPTH, STACK_MAX_BYTES, STACK_TOP};

/// How a [`Machine::call`] ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallResult {
    /// The function returned normally.
    Return(i64),
    /// The target called `exit(code)`.
    Exited(i32),
    /// The target called the ClosureX exit hook — control unwound to the
    /// persistent-loop harness without process teardown (paper §4.1).
    ExitHooked(i32),
    /// The process crashed.
    Crashed(Crash),
    /// The fuel budget ran out (hang / infinite loop).
    OutOfFuel,
}

impl CallResult {
    /// The crash, if this result is one.
    pub fn crash(&self) -> Option<&Crash> {
        match self {
            CallResult::Crashed(c) => Some(c),
            _ => None,
        }
    }
}

/// Outcome + resource accounting of one interpreted call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallOutcome {
    /// How the call ended.
    pub result: CallResult,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Instructions retired.
    pub insts: u64,
}

/// Host context handed to every interpreted call: the OS (filesystem +
/// cost model), the coverage map, and an optional path-sensitive edge trace
/// (used by the control-flow-equivalence checker, paper §6.1.4).
#[derive(Debug)]
pub struct HostCtx<'a> {
    /// The OS this process runs under.
    pub os: &'a mut Os,
    /// Shared-memory coverage bitmap (AFL's `__afl_area_ptr` analog).
    pub cov: &'a mut CovMap,
    /// Optional path-sensitive trace of folded edge indices.
    pub trace: Option<&'a mut Vec<u16>>,
    /// Cost model snapshot (copied from the OS at construction).
    pub cost: CostModel,
}

impl<'a> HostCtx<'a> {
    /// Build a context over an OS and coverage map.
    pub fn new(os: &'a mut Os, cov: &'a mut CovMap) -> Self {
        let cost = os.cost.clone();
        HostCtx {
            os,
            cov,
            trace: None,
            cost,
        }
    }

    /// Same, with a path trace sink attached.
    pub fn with_trace(os: &'a mut Os, cov: &'a mut CovMap, trace: &'a mut Vec<u16>) -> Self {
        let cost = os.cost.clone();
        HostCtx {
            os,
            cov,
            trace: Some(trace),
            cost,
        }
    }

    /// Does `path` exist in the simulated filesystem?
    pub fn fs_exists(&self, path: &str) -> bool {
        self.os.fs.exists(path)
    }

    /// Read a file from the simulated filesystem.
    pub fn fs_read(&self, path: &str) -> Option<&[u8]> {
        self.os.fs.read_file(path)
    }
}

/// The interpreter for one module. Stateless: all mutable state lives in
/// the [`Process`] and [`HostCtx`], so one machine can drive many processes
/// (exactly how one kernel runs many forked children).
///
/// A machine built with [`Machine::new`] always runs the reference
/// tree-walking interpreter. [`Machine::with_image`] attaches a
/// [`DecodedImage`] and runs the pre-decoded fast engine instead — unless
/// the thread is pinned to the reference path (see [`crate::engine`]).
/// Both engines produce bit-identical simulated behavior.
#[derive(Debug, Clone, Copy)]
pub struct Machine<'m> {
    module: &'m Module,
    image: Option<&'m DecodedImage>,
}

impl<'m> Machine<'m> {
    /// Create a machine for `module` (reference engine).
    pub fn new(module: &'m Module) -> Self {
        Machine {
            module,
            image: None,
        }
    }

    /// Create a machine running `module` through its pre-decoded `image`.
    ///
    /// The caller is responsible for `image` being the lowering of
    /// `module` (executors pair them via [`DecodedImage::cached`]).
    pub fn with_image(module: &'m Module, image: &'m DecodedImage) -> Self {
        debug_assert_eq!(image.funcs.len(), module.functions.len());
        Machine {
            module,
            image: Some(image),
        }
    }

    /// The module this machine executes.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// Call `func(args...)` inside process `p`, bounded by `fuel`
    /// instructions.
    ///
    /// # Panics
    /// Panics if `func` does not exist in the module (harness bug, not a
    /// target bug).
    pub fn call(
        &self,
        p: &mut Process,
        ctx: &mut HostCtx<'_>,
        func: &str,
        args: &[i64],
        fuel: u64,
    ) -> CallOutcome {
        let fid = self
            .module
            .function_id(func)
            .unwrap_or_else(|| panic!("no such function: {func}"));
        let f = &self.module.functions[fid.0 as usize];
        let mut regs = vec![0i64; f.num_regs as usize];
        for (i, a) in args.iter().take(f.num_params as usize).enumerate() {
            regs[i] = *a;
        }
        let base_depth = p.frames.len();
        p.frames.push(Frame {
            func: fid,
            block: 0,
            ip: 0,
            regs,
            saved_sp: p.sp,
            ret_dst: None,
        });
        let out = match self.image {
            Some(img) if !crate::engine::reference_engine() => {
                self.run_decoded(img, p, ctx, base_depth, fuel)
            }
            _ => self.run(p, ctx, base_depth, fuel),
        };
        // On abnormal endings, unwind any frames this call pushed and
        // restore the stack pointer (the OS would reclaim them; the
        // ClosureX harness relies on this for stack restoration).
        if p.frames.len() > base_depth {
            let sp = p.frames[base_depth].saved_sp;
            p.frames.truncate(base_depth);
            p.sp = sp;
        }
        out
    }

    #[allow(clippy::too_many_lines)]
    fn run(
        &self,
        p: &mut Process,
        ctx: &mut HostCtx<'_>,
        base_depth: usize,
        fuel: u64,
    ) -> CallOutcome {
        let mut cycles: u64 = 0;
        let mut insts: u64 = 0;
        let inst_cost = ctx.cost.inst;

        macro_rules! finish {
            ($result:expr) => {
                return CallOutcome {
                    result: $result,
                    cycles,
                    insts,
                }
            };
        }

        loop {
            if insts >= fuel {
                finish!(CallResult::OutOfFuel);
            }
            let depth = p.frames.len();
            debug_assert!(depth > base_depth);
            let (fidx, block, ip) = {
                let fr = p.frames.last().expect("non-empty frame stack");
                (fr.func.0 as usize, fr.block, fr.ip)
            };
            let func = &self.module.functions[fidx];
            let fname = func.name.as_str();
            let blk = &func.blocks[block as usize];

            insts += 1;
            cycles += inst_cost;

            if ip < blk.insts.len() {
                // Advance ip first so calls/setjmp resume after this inst.
                p.frames.last_mut().expect("frame").ip = ip + 1;
                let inst = &blk.insts[ip];
                match inst {
                    Inst::Const { dst, value } => {
                        p.frames.last_mut().expect("frame").regs[dst.0 as usize] = *value;
                    }
                    Inst::Mov { dst, src } => {
                        let v = read_op(p, *src);
                        p.frames.last_mut().expect("frame").regs[dst.0 as usize] = v;
                    }
                    Inst::Bin { op, dst, lhs, rhs } => {
                        let a = read_op(p, *lhs);
                        let b = read_op(p, *rhs);
                        let v = match eval_bin(*op, a, b) {
                            Ok(v) => v,
                            Err(detail) => finish!(CallResult::Crashed(Crash {
                                kind: CrashKind::DivisionByZero,
                                function: fname.to_string(),
                                block,
                                detail,
                            })),
                        };
                        p.frames.last_mut().expect("frame").regs[dst.0 as usize] = v;
                    }
                    Inst::Cmp {
                        pred,
                        dst,
                        lhs,
                        rhs,
                    } => {
                        let v = i64::from(pred.eval(read_op(p, *lhs), read_op(p, *rhs)));
                        p.frames.last_mut().expect("frame").regs[dst.0 as usize] = v;
                    }
                    Inst::Select {
                        dst,
                        cond,
                        if_true,
                        if_false,
                    } => {
                        let v = if read_op(p, *cond) != 0 {
                            read_op(p, *if_true)
                        } else {
                            read_op(p, *if_false)
                        };
                        p.frames.last_mut().expect("frame").regs[dst.0 as usize] = v;
                    }
                    Inst::Load { dst, addr, width } => {
                        let a = read_op(p, *addr) as u64;
                        if let Err(c) = p.check_access(a, width.bytes(), false, fname, block) {
                            finish!(CallResult::Crashed(c));
                        }
                        let v = p.mem.read_uint(a, width.bytes()) as i64;
                        p.frames.last_mut().expect("frame").regs[dst.0 as usize] = v;
                    }
                    Inst::Store { addr, value, width } => {
                        let a = read_op(p, *addr) as u64;
                        let v = read_op(p, *value);
                        if let Err(c) = p.check_access(a, width.bytes(), true, fname, block) {
                            finish!(CallResult::Crashed(c));
                        }
                        p.mem.write_uint(a, v as u64, width.bytes());
                    }
                    Inst::AddrOf { dst, global } => {
                        let a = p.globals.addr_of(*global).expect("verified global") as i64;
                        p.frames.last_mut().expect("frame").regs[dst.0 as usize] = a;
                    }
                    Inst::Alloca { dst, size } => {
                        let rounded = u64::from(*size).div_ceil(16) * 16;
                        if p.sp < STACK_TOP - STACK_MAX_BYTES + rounded {
                            finish!(CallResult::Crashed(Crash {
                                kind: CrashKind::StackOverflow,
                                function: fname.to_string(),
                                block,
                                detail: format!("alloca of {size} bytes"),
                            }));
                        }
                        p.sp -= rounded;
                        let a = p.sp as i64;
                        p.frames.last_mut().expect("frame").regs[dst.0 as usize] = a;
                    }
                    Inst::Call { dst, callee, args } => {
                        let argv: Vec<i64> = args.iter().map(|a| read_op(p, *a)).collect();
                        // Fast path: coverage probe.
                        if callee == "__cov_edge" {
                            let id = *argv.first().unwrap_or(&0) as u16;
                            let idx = p.cov_state.edge(id, ctx.cov);
                            if let Some(tr) = ctx.trace.as_deref_mut() {
                                tr.push(idx);
                            }
                            continue;
                        }
                        if callee == "setjmp" {
                            let buf = *argv.first().unwrap_or(&0) as u64;
                            let jc = JmpCtx {
                                depth: p.frames.len(),
                                block,
                                ip: ip + 1,
                                sp: p.sp,
                                dst: *dst,
                            };
                            p.jmpbufs.insert(buf, jc);
                            if let Some(d) = dst {
                                p.frames.last_mut().expect("frame").regs[d.0 as usize] = 0;
                            }
                            cycles += 4;
                            continue;
                        }
                        if callee == "longjmp" {
                            let buf = *argv.first().unwrap_or(&0) as u64;
                            let val = *argv.get(1).unwrap_or(&1);
                            let Some(jc) = p.jmpbufs.get(&buf).cloned() else {
                                finish!(CallResult::Crashed(Crash {
                                    kind: CrashKind::BadLongjmp,
                                    function: fname.to_string(),
                                    block,
                                    detail: format!("no jmp_buf at {buf:#x}"),
                                }));
                            };
                            if jc.depth > p.frames.len() || jc.depth <= base_depth {
                                finish!(CallResult::Crashed(Crash {
                                    kind: CrashKind::BadLongjmp,
                                    function: fname.to_string(),
                                    block,
                                    detail: "jmp_buf frame no longer live".into(),
                                }));
                            }
                            p.frames.truncate(jc.depth);
                            let fr = p.frames.last_mut().expect("frame");
                            fr.block = jc.block;
                            fr.ip = jc.ip;
                            if let Some(d) = jc.dst {
                                fr.regs[d.0 as usize] = if val == 0 { 1 } else { val };
                            }
                            p.sp = jc.sp;
                            cycles += 8;
                            continue;
                        }
                        // Module-defined function?
                        if let Some(callee_id) = self.module.function_id(callee) {
                            if p.frames.len() >= MAX_CALL_DEPTH {
                                finish!(CallResult::Crashed(Crash {
                                    kind: CrashKind::StackOverflow,
                                    function: fname.to_string(),
                                    block,
                                    detail: format!("call depth {}", p.frames.len()),
                                }));
                            }
                            let cf = &self.module.functions[callee_id.0 as usize];
                            let mut regs = vec![0i64; cf.num_regs as usize];
                            for (i, a) in argv.iter().take(cf.num_params as usize).enumerate() {
                                regs[i] = *a;
                            }
                            cycles += 2; // call/ret overhead
                            p.frames.push(Frame {
                                func: callee_id,
                                block: 0,
                                ip: 0,
                                regs,
                                saved_sp: p.sp,
                                ret_dst: *dst,
                            });
                            continue;
                        }
                        // Host call.
                        match hostcalls::dispatch(
                            callee,
                            &argv,
                            p,
                            ctx,
                            (fname, block),
                            &mut cycles,
                        ) {
                            Ok(Some(HostRet::Val(v))) => {
                                if let Some(d) = dst {
                                    p.frames.last_mut().expect("frame").regs[d.0 as usize] = v;
                                }
                            }
                            Ok(Some(HostRet::Void)) => {}
                            Ok(Some(HostRet::Exit(code))) => {
                                finish!(CallResult::Exited(code));
                            }
                            Ok(Some(HostRet::ExitHook(code))) => {
                                finish!(CallResult::ExitHooked(code));
                            }
                            Ok(None) => {
                                finish!(CallResult::Crashed(Crash {
                                    kind: CrashKind::Abort,
                                    function: fname.to_string(),
                                    block,
                                    detail: format!("unresolved symbol '{callee}'"),
                                }));
                            }
                            Err(c) => finish!(CallResult::Crashed(c)),
                        }
                    }
                }
            } else {
                // Terminator.
                match &blk.term {
                    Terminator::Ret(v) => {
                        let val = v.map(|o| read_op(p, o)).unwrap_or(0);
                        let fr = p.frames.pop().expect("frame");
                        p.sp = fr.saved_sp;
                        if p.frames.len() == base_depth {
                            finish!(CallResult::Return(val));
                        }
                        if let Some(d) = fr.ret_dst {
                            p.frames.last_mut().expect("frame").regs[d.0 as usize] = val;
                        }
                    }
                    Terminator::Br(t) => {
                        let fr = p.frames.last_mut().expect("frame");
                        fr.block = t.0;
                        fr.ip = 0;
                    }
                    Terminator::CondBr {
                        cond,
                        if_true,
                        if_false,
                    } => {
                        let c = read_op(p, *cond) != 0;
                        let fr = p.frames.last_mut().expect("frame");
                        fr.block = if c { if_true.0 } else { if_false.0 };
                        fr.ip = 0;
                    }
                    Terminator::Switch {
                        value,
                        cases,
                        default,
                    } => {
                        let v = read_op(p, *value);
                        let target = cases
                            .iter()
                            .find(|(cv, _)| *cv == v)
                            .map(|(_, b)| *b)
                            .unwrap_or(*default);
                        let fr = p.frames.last_mut().expect("frame");
                        fr.block = target.0;
                        fr.ip = 0;
                    }
                    Terminator::Unreachable => {
                        finish!(CallResult::Crashed(Crash {
                            kind: CrashKind::UnreachableExecuted,
                            function: fname.to_string(),
                            block,
                            detail: String::new(),
                        }));
                    }
                }
            }
        }
    }

    /// The decoded-bytecode execution loop.
    ///
    /// Mirrors [`Machine::run`] transition-for-transition: identical fuel
    /// checks, cycle charges, crash sites, and frame/stack manipulation —
    /// only the *representation* of the program differs. Frames keep
    /// source `(block, ip)` coordinates so `setjmp` records, checkpoints,
    /// and the reference engine all interoperate; the loop tracks a local
    /// flat `pc` and syncs the top frame's coordinates at every
    /// frame-stack transition (call, return, `longjmp`), which are the
    /// only points the reference engine's eager coordinate updates are
    /// observable.
    #[allow(clippy::too_many_lines)]
    fn run_decoded(
        &self,
        img: &DecodedImage,
        p: &mut Process,
        ctx: &mut HostCtx<'_>,
        base_depth: usize,
        fuel: u64,
    ) -> CallOutcome {
        let mut cycles: u64 = 0;
        let mut insts: u64 = 0;
        let inst_cost = ctx.cost.inst;

        macro_rules! finish {
            ($result:expr) => {
                return CallOutcome {
                    result: $result,
                    cycles,
                    insts,
                }
            };
        }

        // Stream select: the optimized stream when the image carries one
        // and the thread/feature switches allow it, else the plain 1:1
        // stream. Both resume from the same source coordinates.
        let funcs: &[DFunc] = match &img.opt_funcs {
            Some(opt) if crate::engine::decode_opt() => opt,
            _ => &img.funcs,
        };

        let (mut fidx, mut pc) = {
            let fr = p.frames.last_mut().expect("non-empty frame stack");
            let df = &funcs[fr.func.0 as usize];
            // Optimized streams may use scratch registers beyond the
            // source file (inline windows); grow the entry frame to fit.
            // Registers are host-only state, and every frame this call
            // touches is popped or truncated before `call` returns, so
            // the growth never reaches a checkpoint.
            if fr.regs.len() < df.num_regs as usize {
                fr.regs.resize(df.num_regs as usize, 0);
            }
            (fr.func.0 as usize, df.src_pc(fr.block, fr.ip))
        };

        loop {
            if insts >= fuel {
                finish!(CallResult::OutOfFuel);
            }
            debug_assert!(p.frames.len() > base_depth);
            let df = &funcs[fidx];
            // Bulk-charge the eliminated instructions owed before this op
            // (dead decoded temps, folded fallthrough branches), clamped
            // so an OutOfFuel exec reports insts == fuel exactly like the
            // reference stopping mid-run. Eliminated work is register- or
            // layout-only, so charging is its entire observable effect.
            let pre = df.pre[pc as usize];
            if pre != 0 {
                let take = (fuel - insts).min(u64::from(pre));
                insts += take;
                cycles += take * inst_cost;
                if insts >= fuel {
                    finish!(CallResult::OutOfFuel);
                }
            }
            insts += 1;
            cycles += inst_cost;

            macro_rules! crash_here {
                ($kind:expr, $detail:expr) => {
                    finish!(CallResult::Crashed(Crash {
                        kind: $kind,
                        function: funcs[df.fname_of[pc as usize] as usize].name.clone(),
                        block: df.block_of[pc as usize],
                        detail: $detail,
                    }))
                };
            }
            // Per-component charge inside fused superinstructions — the
            // same loop-top fuel check the reference engine performs
            // between the component instructions.
            macro_rules! charge {
                () => {
                    if insts >= fuel {
                        finish!(CallResult::OutOfFuel);
                    }
                    insts += 1;
                    cycles += inst_cost;
                };
            }
            macro_rules! set_reg {
                ($dst:expr, $v:expr) => {
                    p.frames.last_mut().expect("frame").regs[$dst as usize] = $v
                };
            }

            match &df.ops[pc as usize] {
                DOp::Const { dst, value } => {
                    set_reg!(*dst, *value);
                    pc += 1;
                }
                DOp::Mov { dst, src } => {
                    let fr = p.frames.last_mut().expect("frame");
                    fr.regs[*dst as usize] = reg_read(&fr.regs, *src);
                    pc += 1;
                }
                DOp::Bin { op, dst, lhs, rhs } => {
                    let fr = p.frames.last_mut().expect("frame");
                    let a = reg_read(&fr.regs, *lhs);
                    let b = reg_read(&fr.regs, *rhs);
                    match eval_bin(*op, a, b) {
                        Ok(v) => fr.regs[*dst as usize] = v,
                        Err(detail) => crash_here!(CrashKind::DivisionByZero, detail),
                    }
                    pc += 1;
                }
                DOp::Cmp {
                    pred,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let fr = p.frames.last_mut().expect("frame");
                    let v = i64::from(pred.eval(reg_read(&fr.regs, *lhs), reg_read(&fr.regs, *rhs)));
                    fr.regs[*dst as usize] = v;
                    pc += 1;
                }
                DOp::Select {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => {
                    let fr = p.frames.last_mut().expect("frame");
                    let v = if reg_read(&fr.regs, *cond) != 0 {
                        reg_read(&fr.regs, *if_true)
                    } else {
                        reg_read(&fr.regs, *if_false)
                    };
                    fr.regs[*dst as usize] = v;
                    pc += 1;
                }
                DOp::Load { dst, addr, bytes } => {
                    let a = read_op(p, *addr) as u64;
                    let fname = &funcs[df.fname_of[pc as usize] as usize].name;
                    if let Err(c) =
                        p.check_access(a, *bytes, false, fname, df.block_of[pc as usize])
                    {
                        finish!(CallResult::Crashed(c));
                    }
                    let v = p.mem.read_uint(a, *bytes) as i64;
                    set_reg!(*dst, v);
                    pc += 1;
                }
                DOp::Store { addr, value, bytes } => {
                    let fr = p.frames.last().expect("frame");
                    let a = reg_read(&fr.regs, *addr) as u64;
                    let v = reg_read(&fr.regs, *value);
                    let fname = &funcs[df.fname_of[pc as usize] as usize].name;
                    if let Err(c) =
                        p.check_access(a, *bytes, true, fname, df.block_of[pc as usize])
                    {
                        finish!(CallResult::Crashed(c));
                    }
                    p.mem.write_uint(a, v as u64, *bytes);
                    pc += 1;
                }
                DOp::AddrOf { dst, global } => {
                    let a = p.globals.addr_of(*global).expect("verified global") as i64;
                    set_reg!(*dst, a);
                    pc += 1;
                }
                DOp::Alloca { dst, size, rounded } => {
                    if p.sp < STACK_TOP - STACK_MAX_BYTES + rounded {
                        crash_here!(
                            CrashKind::StackOverflow,
                            format!("alloca of {size} bytes")
                        );
                    }
                    p.sp -= rounded;
                    set_reg!(*dst, p.sp as i64);
                    pc += 1;
                }
                DOp::CovEdge { id } => {
                    let id = read_op(p, *id) as u16;
                    let idx = p.cov_state.edge(id, ctx.cov);
                    if let Some(tr) = ctx.trace.as_deref_mut() {
                        tr.push(idx);
                    }
                    pc += 1;
                }
                DOp::Setjmp {
                    dst,
                    buf,
                    ret_block,
                    ret_ip,
                } => {
                    let buf = read_op(p, *buf) as u64;
                    // The decode-time-embedded *source* coordinates of the
                    // next instruction — valid whatever this stream's
                    // layout is, and identical to what the reference
                    // engine records.
                    p.jmpbufs.insert(
                        buf,
                        JmpCtx {
                            depth: p.frames.len(),
                            block: *ret_block,
                            ip: *ret_ip as usize,
                            sp: p.sp,
                            dst: *dst,
                        },
                    );
                    if let Some(d) = dst {
                        set_reg!(d.0, 0);
                    }
                    cycles += 4;
                    pc += 1;
                }
                DOp::Longjmp { buf, val } => {
                    let buf = read_op(p, *buf) as u64;
                    let val = read_op(p, *val);
                    let Some(jc) = p.jmpbufs.get(&buf).cloned() else {
                        crash_here!(CrashKind::BadLongjmp, format!("no jmp_buf at {buf:#x}"));
                    };
                    if jc.depth > p.frames.len() || jc.depth <= base_depth {
                        crash_here!(
                            CrashKind::BadLongjmp,
                            "jmp_buf frame no longer live".into()
                        );
                    }
                    p.frames.truncate(jc.depth);
                    let fr = p.frames.last_mut().expect("frame");
                    fr.block = jc.block;
                    fr.ip = jc.ip;
                    if let Some(d) = jc.dst {
                        fr.regs[d.0 as usize] = if val == 0 { 1 } else { val };
                    }
                    p.sp = jc.sp;
                    cycles += 8;
                    fidx = fr.func.0 as usize;
                    pc = funcs[fidx].src_pc(jc.block, jc.ip);
                }
                DOp::CallFn {
                    dst,
                    callee,
                    args,
                    ret_block,
                    ret_ip,
                } => {
                    if p.frames.len() >= MAX_CALL_DEPTH {
                        crash_here!(
                            CrashKind::StackOverflow,
                            format!("call depth {}", p.frames.len())
                        );
                    }
                    let cf = &funcs[callee.0 as usize];
                    // Recycled register file: a heap allocation per call is
                    // pure dispatch overhead on call-heavy targets. The
                    // clear+resize zeroes every slot, so the frame is
                    // indistinguishable from a fresh `vec![0; n]`.
                    let mut regs = REG_POOL
                        .with(|pool| pool.borrow_mut().pop())
                        .unwrap_or_default();
                    regs.clear();
                    regs.resize(cf.num_regs as usize, 0);
                    for (i, a) in args.iter().take(cf.num_params as usize).enumerate() {
                        regs[i] = read_op(p, *a);
                    }
                    cycles += 2; // call/ret overhead
                    // Sync the caller's resume coordinates (decode-time
                    // embedded source coordinates) before pushing.
                    let fr = p.frames.last_mut().expect("frame");
                    fr.block = *ret_block;
                    fr.ip = *ret_ip as usize;
                    p.frames.push(Frame {
                        func: *callee,
                        block: 0,
                        ip: 0,
                        regs,
                        saved_sp: p.sp,
                        ret_dst: *dst,
                    });
                    fidx = callee.0 as usize;
                    pc = cf.src_pc(0, 0);
                }
                DOp::CallHost { dst, host, args } => {
                    // Hostcall argv lives on the stack: simulated-libc
                    // arities are tiny, and a heap Vec per call is the
                    // single biggest non-dispatch cost in string/memory
                    // heavy targets.
                    let mut buf = [0i64; 8];
                    let heap: Vec<i64>;
                    let argv: &[i64] = if args.len() <= buf.len() {
                        for (i, a) in args.iter().enumerate() {
                            buf[i] = read_op(p, *a);
                        }
                        &buf[..args.len()]
                    } else {
                        heap = args.iter().map(|a| read_op(p, *a)).collect();
                        &heap
                    };
                    let site = (
                        funcs[df.fname_of[pc as usize] as usize].name.as_str(),
                        df.block_of[pc as usize],
                    );
                    match hostcalls::dispatch_id(*host, argv, p, ctx, site, &mut cycles) {
                        Ok(Some(HostRet::Val(v))) => {
                            if let Some(d) = dst {
                                set_reg!(d.0, v);
                            }
                        }
                        Ok(Some(HostRet::Void)) => {}
                        Ok(Some(HostRet::Exit(code))) => finish!(CallResult::Exited(code)),
                        Ok(Some(HostRet::ExitHook(code))) => {
                            finish!(CallResult::ExitHooked(code))
                        }
                        Ok(None) => unreachable!("pre-bound host calls always resolve"),
                        Err(c) => finish!(CallResult::Crashed(c)),
                    }
                    pc += 1;
                }
                DOp::CallUnknown { name } => {
                    crash_here!(CrashKind::Abort, format!("unresolved symbol '{name}'"));
                }
                DOp::Ret(v) => {
                    let val = v.map(|o| read_op(p, o)).unwrap_or(0);
                    let fr = p.frames.pop().expect("frame");
                    p.sp = fr.saved_sp;
                    let ret_dst = fr.ret_dst;
                    REG_POOL.with(|pool| {
                        let mut pool = pool.borrow_mut();
                        if pool.len() < REG_POOL_CAP {
                            pool.push(fr.regs);
                        }
                    });
                    if p.frames.len() == base_depth {
                        finish!(CallResult::Return(val));
                    }
                    if let Some(d) = ret_dst {
                        set_reg!(d.0, val);
                    }
                    let top = p.frames.last().expect("frame");
                    fidx = top.func.0 as usize;
                    pc = funcs[fidx].src_pc(top.block, top.ip);
                }
                DOp::Br(t) => pc = *t,
                DOp::CondBr {
                    cond,
                    if_true,
                    if_false,
                } => {
                    pc = if read_op(p, *cond) != 0 {
                        *if_true
                    } else {
                        *if_false
                    };
                }
                DOp::Switch {
                    value,
                    cases,
                    default,
                } => {
                    let v = read_op(p, *value);
                    pc = cases
                        .iter()
                        .find(|(cv, _)| *cv == v)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                }
                DOp::Unreachable => {
                    crash_here!(CrashKind::UnreachableExecuted, String::new());
                }

                // ----- optimized-stream ops -----
                DOp::CovEdgeK { id } => {
                    let idx = p.cov_state.edge(*id, ctx.cov);
                    if let Some(tr) = ctx.trace.as_deref_mut() {
                        tr.push(idx);
                    }
                    pc += 1;
                }
                DOp::CovCmpBr {
                    id,
                    pred,
                    dst,
                    lhs,
                    rhs,
                    if_true,
                    if_false,
                } => {
                    // Component 1 (charged at loop top): coverage probe.
                    let idx = p.cov_state.edge(*id, ctx.cov);
                    if let Some(tr) = ctx.trace.as_deref_mut() {
                        tr.push(idx);
                    }
                    // Component 2: compare.
                    charge!();
                    let fr = p.frames.last_mut().expect("frame");
                    let v =
                        i64::from(pred.eval(reg_read(&fr.regs, *lhs), reg_read(&fr.regs, *rhs)));
                    fr.regs[*dst as usize] = v;
                    // Component 3: conditional branch.
                    charge!();
                    pc = if v != 0 { *if_true } else { *if_false };
                }
                DOp::CmpBr {
                    pred,
                    dst,
                    lhs,
                    rhs,
                    if_true,
                    if_false,
                } => {
                    let fr = p.frames.last_mut().expect("frame");
                    let v =
                        i64::from(pred.eval(reg_read(&fr.regs, *lhs), reg_read(&fr.regs, *rhs)));
                    fr.regs[*dst as usize] = v;
                    charge!();
                    pc = if v != 0 { *if_true } else { *if_false };
                }
                DOp::BinBr {
                    op,
                    dst,
                    lhs,
                    rhs,
                    target,
                } => {
                    let fr = p.frames.last_mut().expect("frame");
                    let a = reg_read(&fr.regs, *lhs);
                    let b = reg_read(&fr.regs, *rhs);
                    match eval_bin(*op, a, b) {
                        Ok(v) => fr.regs[*dst as usize] = v,
                        Err(detail) => crash_here!(CrashKind::DivisionByZero, detail),
                    }
                    charge!();
                    pc = *target;
                }
                DOp::MovBr { dst, src, target } => {
                    let fr = p.frames.last_mut().expect("frame");
                    fr.regs[*dst as usize] = reg_read(&fr.regs, *src);
                    charge!();
                    pc = *target;
                }
                DOp::StoreBr {
                    addr,
                    value,
                    bytes,
                    target,
                } => {
                    let fr = p.frames.last().expect("frame");
                    let a = reg_read(&fr.regs, *addr) as u64;
                    let v = reg_read(&fr.regs, *value);
                    let fname = &funcs[df.fname_of[pc as usize] as usize].name;
                    if let Err(c) = p.check_access(a, *bytes, true, fname, df.block_of[pc as usize])
                    {
                        finish!(CallResult::Crashed(c));
                    }
                    p.mem.write_uint(a, v as u64, *bytes);
                    charge!();
                    pc = *target;
                }
                DOp::BinLoad {
                    op,
                    bdst,
                    lhs,
                    rhs,
                    ldst,
                    addr,
                    bytes,
                } => {
                    let fr = p.frames.last_mut().expect("frame");
                    let a = reg_read(&fr.regs, *lhs);
                    let b = reg_read(&fr.regs, *rhs);
                    match eval_bin(*op, a, b) {
                        Ok(v) => fr.regs[*bdst as usize] = v,
                        Err(detail) => crash_here!(CrashKind::DivisionByZero, detail),
                    }
                    charge!();
                    // The address reads the just-written register when the
                    // fusion was an addr-compute + load pair.
                    let a = read_op(p, *addr) as u64;
                    let fname = &funcs[df.fname_of[pc as usize] as usize].name;
                    if let Err(c) =
                        p.check_access(a, *bytes, false, fname, df.block_of[pc as usize])
                    {
                        finish!(CallResult::Crashed(c));
                    }
                    let v = p.mem.read_uint(a, *bytes) as i64;
                    set_reg!(*ldst, v);
                    pc += 1;
                }
                DOp::LoadBin {
                    ldst,
                    addr,
                    bytes,
                    op,
                    bdst,
                    lhs,
                    rhs,
                } => {
                    let a = read_op(p, *addr) as u64;
                    let fname = &funcs[df.fname_of[pc as usize] as usize].name;
                    if let Err(c) =
                        p.check_access(a, *bytes, false, fname, df.block_of[pc as usize])
                    {
                        finish!(CallResult::Crashed(c));
                    }
                    let v = p.mem.read_uint(a, *bytes) as i64;
                    set_reg!(*ldst, v);
                    charge!();
                    let fr = p.frames.last_mut().expect("frame");
                    let a = reg_read(&fr.regs, *lhs);
                    let b = reg_read(&fr.regs, *rhs);
                    match eval_bin(*op, a, b) {
                        Ok(v) => fr.regs[*bdst as usize] = v,
                        Err(detail) => crash_here!(CrashKind::DivisionByZero, detail),
                    }
                    pc += 1;
                }
                DOp::BrChain { target, skipped } => {
                    // Bulk-charge the folded jump-only blocks, clamped at
                    // the fuel boundary: the reference engine would stop
                    // inside the chain with nothing else observable.
                    let take = (fuel - insts).min(u64::from(*skipped));
                    insts += take;
                    cycles += take * inst_cost;
                    if take < u64::from(*skipped) {
                        finish!(CallResult::OutOfFuel);
                    }
                    pc = *target;
                }
                DOp::SwitchTable {
                    value,
                    base,
                    table,
                    default,
                } => {
                    let v = read_op(p, *value);
                    let off = v.wrapping_sub(*base) as u64;
                    pc = if off < table.len() as u64 {
                        table[off as usize]
                    } else {
                        *default
                    };
                }
                DOp::InlineEnter {
                    callee: _,
                    args,
                    base,
                    nregs,
                    sp_slot,
                    entry,
                } => {
                    // Same order as the reference `Call` path: depth check
                    // (and its crash detail) before the 2-cycle overhead.
                    if p.frames.len() >= MAX_CALL_DEPTH {
                        crash_here!(
                            CrashKind::StackOverflow,
                            format!("call depth {}", p.frames.len())
                        );
                    }
                    cycles += 2; // call/ret overhead
                    let sp = p.sp as i64;
                    let fr = p.frames.last_mut().expect("frame");
                    let b = *base as usize;
                    fr.regs[b..b + *nregs as usize].fill(0);
                    // Argument operands index below `base`, so reading
                    // after the zeroing matches the reference's fresh
                    // callee frame.
                    for (i, a) in args.iter().enumerate() {
                        let v = reg_read(&fr.regs, *a);
                        fr.regs[b + i] = v;
                    }
                    fr.regs[*sp_slot as usize] = sp;
                    pc = *entry;
                }
                DOp::InlineRet {
                    val,
                    dst,
                    sp_slot,
                    resume,
                } => {
                    let fr = p.frames.last_mut().expect("frame");
                    let v = val.map(|o| reg_read(&fr.regs, o)).unwrap_or(0);
                    let sp = fr.regs[*sp_slot as usize] as u64;
                    if let Some(d) = dst {
                        fr.regs[*d as usize] = v;
                    }
                    p.sp = sp;
                    pc = *resume;
                }
                DOp::Chain { comps, tail } => {
                    // Component 0's charge is the loop-top charge already
                    // applied; later components bulk-charge their absorbed
                    // `pre` (clamped) and then themselves, so the fuel
                    // position of every effect matches the reference.
                    for (k, comp) in comps.iter().enumerate() {
                        if k > 0 {
                            if comp.pre != 0 {
                                let take = (fuel - insts).min(u64::from(comp.pre));
                                insts += take;
                                cycles += take * inst_cost;
                                if take < u64::from(comp.pre) {
                                    finish!(CallResult::OutOfFuel);
                                }
                            }
                            charge!();
                        }
                        match &comp.op {
                            ChainOp::Const { dst, value } => set_reg!(*dst, *value),
                            ChainOp::Mov { dst, src } => {
                                let fr = p.frames.last_mut().expect("frame");
                                fr.regs[*dst as usize] = reg_read(&fr.regs, *src);
                            }
                            ChainOp::Bin { op, dst, lhs, rhs } => {
                                let fr = p.frames.last_mut().expect("frame");
                                let a = reg_read(&fr.regs, *lhs);
                                let b = reg_read(&fr.regs, *rhs);
                                match eval_bin(*op, a, b) {
                                    Ok(v) => fr.regs[*dst as usize] = v,
                                    Err(detail) => {
                                        crash_here!(CrashKind::DivisionByZero, detail)
                                    }
                                }
                            }
                            ChainOp::Cmp {
                                pred,
                                dst,
                                lhs,
                                rhs,
                            } => {
                                let fr = p.frames.last_mut().expect("frame");
                                let v = i64::from(
                                    pred.eval(reg_read(&fr.regs, *lhs), reg_read(&fr.regs, *rhs)),
                                );
                                fr.regs[*dst as usize] = v;
                            }
                            ChainOp::Select {
                                dst,
                                cond,
                                if_true,
                                if_false,
                            } => {
                                let fr = p.frames.last_mut().expect("frame");
                                let v = if reg_read(&fr.regs, *cond) != 0 {
                                    reg_read(&fr.regs, *if_true)
                                } else {
                                    reg_read(&fr.regs, *if_false)
                                };
                                fr.regs[*dst as usize] = v;
                            }
                            ChainOp::Cov { id } => {
                                let idx = p.cov_state.edge(*id, ctx.cov);
                                if let Some(tr) = ctx.trace.as_deref_mut() {
                                    tr.push(idx);
                                }
                            }
                            ChainOp::Load { dst, addr, bytes } => {
                                let a = read_op(p, *addr) as u64;
                                let fname = &funcs[df.fname_of[pc as usize] as usize].name;
                                if let Err(c) =
                                    p.check_access(a, *bytes, false, fname, df.block_of[pc as usize])
                                {
                                    finish!(CallResult::Crashed(c));
                                }
                                let v = p.mem.read_uint(a, *bytes) as i64;
                                set_reg!(*dst, v);
                            }
                            ChainOp::Store { addr, value, bytes } => {
                                let fr = p.frames.last().expect("frame");
                                let a = reg_read(&fr.regs, *addr) as u64;
                                let v = reg_read(&fr.regs, *value);
                                let fname = &funcs[df.fname_of[pc as usize] as usize].name;
                                if let Err(c) =
                                    p.check_access(a, *bytes, true, fname, df.block_of[pc as usize])
                                {
                                    finish!(CallResult::Crashed(c));
                                }
                                p.mem.write_uint(a, v as u64, *bytes);
                            }
                            ChainOp::AddrOf { dst, global } => {
                                let a = p.globals.addr_of(*global).expect("verified global") as i64;
                                set_reg!(*dst, a);
                            }
                        }
                    }
                    match tail {
                        ChainTail::Next => pc += 1,
                        ChainTail::Br { pre, target } => {
                            // The absorbed branch: its own eliminated
                            // predecessors first, then the branch charge.
                            if *pre != 0 {
                                let take = (fuel - insts).min(u64::from(*pre));
                                insts += take;
                                cycles += take * inst_cost;
                                if take < u64::from(*pre) {
                                    finish!(CallResult::OutOfFuel);
                                }
                            }
                            charge!();
                            pc = *target;
                        }
                        ChainTail::CondBr {
                            pre,
                            cond,
                            if_true,
                            if_false,
                        } => {
                            if *pre != 0 {
                                let take = (fuel - insts).min(u64::from(*pre));
                                insts += take;
                                cycles += take * inst_cost;
                                if take < u64::from(*pre) {
                                    finish!(CallResult::OutOfFuel);
                                }
                            }
                            charge!();
                            pc = if read_op(p, *cond) != 0 {
                                *if_true
                            } else {
                                *if_false
                            };
                        }
                    }
                }
            }
        }
    }
}

/// Upper bound on retired register files kept for reuse per thread; deep
/// recursion beyond this just falls back to fresh allocations.
const REG_POOL_CAP: usize = 64;

thread_local! {
    /// Register-file recycling pool for the decoded engine's `CallFn`/
    /// `Ret` pair. Host-only state: pooled buffers are fully zeroed before
    /// reuse, so frames built from them are bit-identical to freshly
    /// allocated ones and nothing here can reach a checkpoint.
    static REG_POOL: std::cell::RefCell<Vec<Vec<i64>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn read_op(p: &Process, o: Operand) -> i64 {
    match o {
        Operand::Reg(r) => p.frames.last().expect("frame").regs[r.0 as usize],
        Operand::Imm(v) => v,
    }
}

/// [`read_op`] against an already-fetched register file. The decoded loop
/// borrows the top frame once per instruction and resolves every operand
/// through this, instead of re-walking `frames.last()` per operand.
#[inline]
fn reg_read(regs: &[i64], o: Operand) -> i64 {
    match o {
        Operand::Reg(r) => regs[r.0 as usize],
        Operand::Imm(v) => v,
    }
}

/// Evaluate one binary operation with the interpreter's exact semantics:
/// wrapping arithmetic, shift counts masked to 6 bits, and division traps
/// (`/ 0`, `i64::MIN / -1`) reported as crash detail strings. Public so
/// compiler-side constant folding (`passes::optimize::fold_bin`) can be
/// differentially tested against the engine it must agree with.
pub fn eval_bin(op: BinOp, a: i64, b: i64) -> Result<i64, String> {
    Ok(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::UDiv => {
            if b == 0 {
                return Err(format!("{a} udiv 0"));
            }
            ((a as u64) / (b as u64)) as i64
        }
        BinOp::SDiv => {
            if b == 0 || (a == i64::MIN && b == -1) {
                return Err(format!("{a} sdiv {b}"));
            }
            a / b
        }
        BinOp::URem => {
            if b == 0 {
                return Err(format!("{a} urem 0"));
            }
            ((a as u64) % (b as u64)) as i64
        }
        BinOp::SRem => {
            if b == 0 || (a == i64::MIN && b == -1) {
                return Err(format!("{a} srem {b}"));
            }
            a % b
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::LShr => ((a as u64) >> (b as u32 & 63)) as i64,
        BinOp::AShr => a >> (b as u32 & 63),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::ModuleBuilder;
    use fir::{CmpPred, Global, Operand};

    const FUEL: u64 = 1_000_000;

    fn run(module: &Module, func: &str, args: &[i64]) -> (CallResult, Process) {
        let mut os = Os::new();
        let (mut p, _) = os.spawn(module);
        let mut cov = CovMap::new();
        let mut ctx = HostCtx::new(&mut os, &mut cov);
        let m = Machine::new(module);
        let out = m.call(&mut p, &mut ctx, func, args, FUEL);
        (out.result, p)
    }

    #[test]
    fn arithmetic_and_return() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function_with_params("f", 2);
        let (a, b) = (f.param(0), f.param(1));
        let s = f.add(Operand::Reg(a), Operand::Reg(b));
        let m2 = f.mul(Operand::Reg(s), Operand::Imm(3));
        f.ret(Some(Operand::Reg(m2)));
        f.finish();
        let m = mb.finish();
        let (r, _) = run(&m, "f", &[4, 6]);
        assert_eq!(r, CallResult::Return(30));
    }

    #[test]
    fn division_by_zero_crashes() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function_with_params("f", 2);
        let d = f.bin(
            BinOp::SDiv,
            Operand::Reg(f.param(0)),
            Operand::Reg(f.param(1)),
        );
        f.ret(Some(Operand::Reg(d)));
        f.finish();
        let m = mb.finish();
        let (r, _) = run(&m, "f", &[10, 0]);
        assert_eq!(r.crash().unwrap().kind, CrashKind::DivisionByZero);
        let (r, _) = run(&m, "f", &[i64::MIN, -1]);
        assert_eq!(r.crash().unwrap().kind, CrashKind::DivisionByZero);
        let (r, _) = run(&m, "f", &[10, 2]);
        assert_eq!(r, CallResult::Return(5));
    }

    #[test]
    fn loop_with_branches() {
        // sum 0..n
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function_with_params("sum", 1);
        let n = f.param(0);
        let acc = f.const_i64(0);
        let i = f.const_i64(0);
        let hdr = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        f.br(hdr);
        f.switch_to(hdr);
        let c = f.cmp(CmpPred::SLt, Operand::Reg(i), Operand::Reg(n));
        f.cond_br(Operand::Reg(c), body, done);
        f.switch_to(body);
        let a2 = f.add(Operand::Reg(acc), Operand::Reg(i));
        f.mov_to(acc, Operand::Reg(a2));
        let i2 = f.add(Operand::Reg(i), Operand::Imm(1));
        f.mov_to(i, Operand::Reg(i2));
        f.br(hdr);
        f.switch_to(done);
        f.ret(Some(Operand::Reg(acc)));
        f.finish();
        let m = mb.finish();
        let (r, _) = run(&m, "sum", &[10]);
        assert_eq!(r, CallResult::Return(45));
    }

    #[test]
    fn nested_calls_and_return_values() {
        let mut mb = ModuleBuilder::new("m");
        let mut g = mb.function_with_params("double", 1);
        let d = g.add(Operand::Reg(g.param(0)), Operand::Reg(g.param(0)));
        g.ret(Some(Operand::Reg(d)));
        g.finish();
        let mut f = mb.function_with_params("f", 1);
        let r1 = f.call("double", vec![Operand::Reg(f.param(0))]);
        let r2 = f.call("double", vec![Operand::Reg(r1)]);
        f.ret(Some(Operand::Reg(r2)));
        f.finish();
        let m = mb.finish();
        let (r, _) = run(&m, "f", &[5]);
        assert_eq!(r, CallResult::Return(20));
    }

    #[test]
    fn recursion_overflow_detected() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function_with_params("inf", 1);
        let r = f.call("inf", vec![Operand::Reg(f.param(0))]);
        f.ret(Some(Operand::Reg(r)));
        f.finish();
        let m = mb.finish();
        let (r, _) = run(&m, "inf", &[1]);
        assert_eq!(r.crash().unwrap().kind, CrashKind::StackOverflow);
    }

    #[test]
    fn fuel_exhaustion_on_infinite_loop() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("spin");
        let l = f.new_block();
        f.br(l);
        f.switch_to(l);
        f.br(l);
        f.finish();
        let m = mb.finish();
        let (r, _) = run(&m, "spin", &[]);
        assert_eq!(r, CallResult::OutOfFuel);
    }

    #[test]
    fn globals_load_store_and_null_crash() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global(Global::zeroed("counter", 8));
        let mut f = mb.function("bump");
        let a = f.addr_of(g);
        let v = f.load64(Operand::Reg(a));
        let v2 = f.add(Operand::Reg(v), Operand::Imm(1));
        f.store64(Operand::Reg(a), Operand::Reg(v2));
        f.ret(Some(Operand::Reg(v2)));
        f.finish();
        let mut f = mb.function("nullread");
        let v = f.load64(Operand::Imm(0));
        f.ret(Some(Operand::Reg(v)));
        f.finish();
        let m = mb.finish();
        let mut os = Os::new();
        let (mut p, _) = os.spawn(&m);
        let mut cov = CovMap::new();
        let mut ctx = HostCtx::new(&mut os, &mut cov);
        let machine = Machine::new(&m);
        assert_eq!(
            machine.call(&mut p, &mut ctx, "bump", &[], FUEL).result,
            CallResult::Return(1)
        );
        assert_eq!(
            machine.call(&mut p, &mut ctx, "bump", &[], FUEL).result,
            CallResult::Return(2),
            "global state persists across calls in one process"
        );
        let r = machine.call(&mut p, &mut ctx, "nullread", &[], FUEL);
        assert_eq!(r.result.crash().unwrap().kind, CrashKind::NullPtrDeref);
    }

    #[test]
    fn alloca_stack_discipline() {
        let mut mb = ModuleBuilder::new("m");
        let mut inner = mb.function("inner");
        let buf = inner.alloca(64);
        inner.store64(Operand::Reg(buf), Operand::Imm(7));
        let v = inner.load64(Operand::Reg(buf));
        inner.ret(Some(Operand::Reg(v)));
        inner.finish();
        let mut f = mb.function("outer");
        let a = f.call("inner", vec![]);
        let b = f.call("inner", vec![]);
        let s = f.add(Operand::Reg(a), Operand::Reg(b));
        f.ret(Some(Operand::Reg(s)));
        f.finish();
        let m = mb.finish();
        let (r, p) = run(&m, "outer", &[]);
        assert_eq!(r, CallResult::Return(14));
        assert_eq!(p.sp, STACK_TOP, "stack fully unwound after return");
    }

    #[test]
    fn exit_hostcall_terminates() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f");
        f.call_void("exit", vec![Operand::Imm(3)]);
        f.unreachable();
        f.finish();
        let m = mb.finish();
        let (r, _) = run(&m, "f", &[]);
        assert_eq!(r, CallResult::Exited(3));
    }

    #[test]
    fn exit_hook_unwinds_instead() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f");
        f.call_void("closurex_exit_hook", vec![Operand::Imm(3)]);
        f.unreachable();
        f.finish();
        let m = mb.finish();
        let (r, p) = run(&m, "f", &[]);
        assert_eq!(r, CallResult::ExitHooked(3));
        assert!(p.frames.is_empty(), "frames unwound to harness");
    }

    #[test]
    fn setjmp_longjmp_roundtrip() {
        // main: if (setjmp(buf)) return 99; helper(); return 1;
        // helper: longjmp(buf, 7)  →  main returns... 99 path takes value 7?
        // We return the setjmp value to observe it.
        let mut mb = ModuleBuilder::new("m");
        let buf_g = mb.global(Global::zeroed("jbuf", 64));
        let mut h = mb.function("helper");
        let a = h.addr_of(buf_g);
        h.call_void("longjmp", vec![Operand::Reg(a), Operand::Imm(7)]);
        h.unreachable();
        h.finish();
        let mut f = mb.function("main");
        let a = f.addr_of(buf_g);
        let v = f.call("setjmp", vec![Operand::Reg(a)]);
        let taken = f.new_block();
        let normal = f.new_block();
        f.cond_br(Operand::Reg(v), taken, normal);
        f.switch_to(taken);
        f.ret(Some(Operand::Reg(v)));
        f.switch_to(normal);
        f.call_void("helper", vec![]);
        f.ret(Some(Operand::Imm(1)));
        f.finish();
        let m = mb.finish();
        let (r, _) = run(&m, "main", &[]);
        assert_eq!(r, CallResult::Return(7), "longjmp value arrives at setjmp");
    }

    #[test]
    fn longjmp_without_setjmp_crashes() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f");
        f.call_void("longjmp", vec![Operand::Imm(0x1234), Operand::Imm(1)]);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let (r, _) = run(&m, "f", &[]);
        assert_eq!(r.crash().unwrap().kind, CrashKind::BadLongjmp);
    }

    #[test]
    fn malloc_free_via_hostcalls() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f");
        let ptr = f.call("malloc", vec![Operand::Imm(32)]);
        f.store64(Operand::Reg(ptr), Operand::Imm(1234));
        let v = f.load64(Operand::Reg(ptr));
        f.call_void("free", vec![Operand::Reg(ptr)]);
        f.ret(Some(Operand::Reg(v)));
        f.finish();
        let m = mb.finish();
        let (r, p) = run(&m, "f", &[]);
        assert_eq!(r, CallResult::Return(1234));
        assert_eq!(p.heap.live_chunks(), 0);
    }

    #[test]
    fn use_after_free_via_hostcalls() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f");
        let ptr = f.call("malloc", vec![Operand::Imm(32)]);
        f.call_void("free", vec![Operand::Reg(ptr)]);
        let v = f.load64(Operand::Reg(ptr));
        f.ret(Some(Operand::Reg(v)));
        f.finish();
        let m = mb.finish();
        let (r, _) = run(&m, "f", &[]);
        assert_eq!(r.crash().unwrap().kind, CrashKind::UnaddressableAccess);
    }

    #[test]
    fn double_free_via_hostcalls() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f");
        let ptr = f.call("malloc", vec![Operand::Imm(8)]);
        f.call_void("free", vec![Operand::Reg(ptr)]);
        f.call_void("free", vec![Operand::Reg(ptr)]);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let (r, _) = run(&m, "f", &[]);
        assert_eq!(r.crash().unwrap().kind, CrashKind::DoubleFree);
    }

    #[test]
    fn file_io_roundtrip() {
        let mut mb = ModuleBuilder::new("m");
        let path = mb.global(Global::constant("path", b"/fuzz/input\0".to_vec()));
        let mut f = mb.function("f");
        let pa = f.addr_of(path);
        let h = f.call("fopen", vec![Operand::Reg(pa), Operand::Imm(0)]);
        let buf = f.alloca(16);
        let n = f.call(
            "fread",
            vec![
                Operand::Reg(buf),
                Operand::Imm(1),
                Operand::Imm(16),
                Operand::Reg(h),
            ],
        );
        let b0 = f.load8(Operand::Reg(buf));
        f.call_void("fclose", vec![Operand::Reg(h)]);
        let sum = f.add(Operand::Reg(n), Operand::Reg(b0));
        f.ret(Some(Operand::Reg(sum)));
        f.finish();
        let m = mb.finish();

        let mut os = Os::new();
        os.fs.write_file("/fuzz/input", vec![40, 2, 3]);
        let (mut p, _) = os.spawn(&m);
        let mut cov = CovMap::new();
        let mut ctx = HostCtx::new(&mut os, &mut cov);
        let out = Machine::new(&m).call(&mut p, &mut ctx, "f", &[], FUEL);
        // read 3 bytes, first byte 40 → 43
        assert_eq!(out.result, CallResult::Return(43));
        assert_eq!(p.fds.open_count(), 0);
    }

    #[test]
    fn fopen_missing_file_returns_null() {
        let mut mb = ModuleBuilder::new("m");
        let path = mb.global(Global::constant("path", b"/nope\0".to_vec()));
        let mut f = mb.function("f");
        let pa = f.addr_of(path);
        let h = f.call("fopen", vec![Operand::Reg(pa), Operand::Imm(0)]);
        f.ret(Some(Operand::Reg(h)));
        f.finish();
        let m = mb.finish();
        let (r, _) = run(&m, "f", &[]);
        assert_eq!(r, CallResult::Return(0));
    }

    #[test]
    fn negative_memcpy_detected() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f");
        let a = f.alloca(16);
        let b = f.alloca(16);
        f.call_void(
            "memcpy",
            vec![Operand::Reg(a), Operand::Reg(b), Operand::Imm(-5)],
        );
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let (r, _) = run(&m, "f", &[]);
        assert_eq!(r.crash().unwrap().kind, CrashKind::NegativeSizeMemcpy);
    }

    #[test]
    fn coverage_edges_recorded() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function_with_params("f", 1);
        f.call_void("__cov_edge", vec![Operand::Imm(100)]);
        let t = f.new_block();
        let e = f.new_block();
        f.cond_br(Operand::Reg(f.param(0)), t, e);
        f.switch_to(t);
        f.call_void("__cov_edge", vec![Operand::Imm(200)]);
        f.ret(Some(Operand::Imm(1)));
        f.switch_to(e);
        f.call_void("__cov_edge", vec![Operand::Imm(300)]);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        let m = mb.finish();

        let mut os = Os::new();
        let (mut p, _) = os.spawn(&m);
        let mut cov = CovMap::new();
        let mut trace = Vec::new();
        {
            let mut ctx = HostCtx::with_trace(&mut os, &mut cov, &mut trace);
            Machine::new(&m).call(&mut p, &mut ctx, "f", &[1], FUEL);
        }
        assert_eq!(cov.count_nonzero(), 2);
        assert_eq!(trace.len(), 2);

        // Different branch → different trace.
        let mut cov2 = CovMap::new();
        let mut trace2 = Vec::new();
        p.cov_state.reset();
        {
            let mut ctx = HostCtx::with_trace(&mut os, &mut cov2, &mut trace2);
            Machine::new(&m).call(&mut p, &mut ctx, "f", &[0], FUEL);
        }
        assert_ne!(trace, trace2);
    }

    #[test]
    fn switch_dispatch() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function_with_params("f", 1);
        let b1 = f.new_block();
        let b2 = f.new_block();
        let d = f.new_block();
        f.switch(Operand::Reg(f.param(0)), vec![(10, b1), (20, b2)], d);
        f.switch_to(b1);
        f.ret(Some(Operand::Imm(1)));
        f.switch_to(b2);
        f.ret(Some(Operand::Imm(2)));
        f.switch_to(d);
        f.ret(Some(Operand::Imm(-1)));
        f.finish();
        let m = mb.finish();
        assert_eq!(run(&m, "f", &[10]).0, CallResult::Return(1));
        assert_eq!(run(&m, "f", &[20]).0, CallResult::Return(2));
        assert_eq!(run(&m, "f", &[30]).0, CallResult::Return(-1));
    }

    #[test]
    fn unresolved_symbol_crashes() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f");
        f.call_void("no_such_fn", vec![]);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let (r, _) = run(&m, "f", &[]);
        let c = r.crash().unwrap();
        assert_eq!(c.kind, CrashKind::Abort);
        assert!(c.detail.contains("no_such_fn"));
    }

    #[test]
    fn closurex_wrappers_update_chunk_map() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f");
        let p1 = f.call("closurex_malloc", vec![Operand::Imm(10)]);
        let _p2 = f.call("closurex_malloc", vec![Operand::Imm(20)]);
        f.call_void("closurex_free", vec![Operand::Reg(p1)]);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let mut os = Os::new();
        let (mut p, _) = os.spawn(&m);
        p.rt.enabled = true;
        let mut cov = CovMap::new();
        let mut ctx = HostCtx::new(&mut os, &mut cov);
        Machine::new(&m).call(&mut p, &mut ctx, "f", &[], FUEL);
        assert_eq!(p.rt.chunk_map.len(), 1, "one leaked chunk tracked");
        assert_eq!(p.heap.live_chunks(), 1);
    }
}
