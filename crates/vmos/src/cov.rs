//! AFL-style edge coverage.
//!
//! The coverage pass instruments every basic block with
//! `__cov_edge(block_id)`; at runtime the classic AFL update is applied:
//! `map[block_id ^ prev] += 1; prev = block_id >> 1`. Both ClosureX and the
//! AFL++ baseline share this implementation, mirroring the paper's setup
//! ("the same hitcount-based edge coverage collection implementation,
//! loosely based on LLVM's Sanitizer Coverage Guards").

use serde::{Deserialize, Serialize};

/// Size of the shared coverage bitmap (64 KiB, AFL's default).
pub const MAP_SIZE: usize = 1 << 16;

/// A hitcount edge-coverage bitmap.
///
/// Alongside the 64 KiB byte map, the struct maintains a *sparse touched
/// list*: the index of every slot that went 0 → nonzero since the last
/// [`CovMap::clear`]. Because `map` is private and [`CovMap::hit`] is the
/// only writer, the list is always exactly the set of nonzero slots —
/// which lets `clear` and [`VirginMap::merge`] run in O(touched edges)
/// instead of O(64 KiB) on the fast-engine path.
#[derive(Clone, Serialize, Deserialize)]
pub struct CovMap {
    map: Vec<u8>,
    touched: Vec<u16>,
}

impl Default for CovMap {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CovMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CovMap")
            .field("edges_hit", &self.count_nonzero())
            .finish()
    }
}

impl CovMap {
    /// Fresh, all-zero map.
    pub fn new() -> Self {
        CovMap {
            map: vec![0; MAP_SIZE],
            touched: Vec::new(),
        }
    }

    /// Record a hit on `edge_index` (already XOR-folded).
    #[inline]
    pub fn hit(&mut self, edge_index: u16) {
        let slot = &mut self.map[edge_index as usize];
        if *slot == 0 {
            self.touched.push(edge_index);
        }
        *slot = slot.saturating_add(1);
    }

    /// Raw bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.map
    }

    /// Indices touched since the last [`CovMap::clear`], in hit order.
    pub fn touched(&self) -> &[u16] {
        &self.touched
    }

    /// Zero the map (between test cases).
    ///
    /// On the fast-engine path only the touched slots are zeroed; the
    /// reference path wipes all 64 KiB like the pre-change engine did.
    /// Both leave the map all-zero, so the choice is invisible to the
    /// simulation.
    pub fn clear(&mut self) {
        if crate::engine::reference_engine() {
            self.map.fill(0);
        } else {
            for &i in &self.touched {
                self.map[i as usize] = 0;
            }
        }
        self.touched.clear();
    }

    /// Number of edges with a non-zero hitcount.
    pub fn count_nonzero(&self) -> usize {
        self.map.iter().filter(|&&b| b != 0).count()
    }

    /// FNV-1a hash of the *bucketed* map — used as a cheap path identity.
    ///
    /// Bucketing runs word-at-a-time through [`classify_word`]; the FNV
    /// fold itself is inherently per-byte, so the hash value is identical
    /// to classifying byte-by-byte.
    pub fn classified_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for chunk in self.map.chunks_exact(8) {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            for b in classify_word(word).to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }
}

/// AFL's hitcount buckets, precomputed for every possible count so the hot
/// paths index a table instead of running [`classify_count_reference`]'s
/// branch ladder.
pub const COUNT_CLASS_LUT: [u8; 256] = {
    let mut lut = [0u8; 256];
    let mut c = 0usize;
    while c < 256 {
        lut[c] = match c {
            0 => 0,
            1 => 1,
            2 => 2,
            3 => 4,
            4..=7 => 8,
            8..=15 => 16,
            16..=31 => 32,
            32..=127 => 64,
            _ => 128,
        };
        c += 1;
    }
    lut
};

/// AFL's hitcount bucketing: collapse counts into power-of-two-ish buckets
/// so loop-iteration jitter doesn't register as new coverage.
#[inline]
pub fn classify_count(count: u8) -> u8 {
    COUNT_CLASS_LUT[count as usize]
}

/// The original branchy bucketing, kept as a test oracle for the LUT.
pub fn classify_count_reference(count: u8) -> u8 {
    match count {
        0 => 0,
        1 => 1,
        2 => 2,
        3 => 4,
        4..=7 => 8,
        8..=15 => 16,
        16..=31 => 32,
        32..=127 => 64,
        _ => 128,
    }
}

/// Classify all eight hitcount lanes of a little-endian `u64` at once
/// (AFL++'s `classify_word`). Zero words — the overwhelmingly common case
/// on a sparse map — return immediately.
#[inline]
pub fn classify_word(word: u64) -> u64 {
    if word == 0 {
        return 0;
    }
    let b = word.to_le_bytes();
    u64::from_le_bytes([
        COUNT_CLASS_LUT[b[0] as usize],
        COUNT_CLASS_LUT[b[1] as usize],
        COUNT_CLASS_LUT[b[2] as usize],
        COUNT_CLASS_LUT[b[3] as usize],
        COUNT_CLASS_LUT[b[4] as usize],
        COUNT_CLASS_LUT[b[5] as usize],
        COUNT_CLASS_LUT[b[6] as usize],
        COUNT_CLASS_LUT[b[7] as usize],
    ])
}

/// Tracks accumulated ("virgin") coverage across a whole campaign and
/// answers "did this execution produce anything new?".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirginMap {
    virgin: Vec<u8>,
    edges_found: usize,
}

impl Default for VirginMap {
    fn default() -> Self {
        Self::new()
    }
}

impl VirginMap {
    /// All-virgin map.
    pub fn new() -> Self {
        VirginMap {
            virgin: vec![0; MAP_SIZE],
            edges_found: 0,
        }
    }

    /// Merge a run's coverage; returns `true` if any new bucketed bit
    /// appeared (AFL's `has_new_bits`).
    ///
    /// Scans the map in 64-bit words and skips zero words, the same trick
    /// AFL uses to keep the per-execution scan off the profile.
    pub fn merge(&mut self, run: &CovMap) -> bool {
        self.merge_inner(run, None)
    }

    /// [`VirginMap::merge`], additionally recording `(index, new byte)` for
    /// every virgin byte the merge changed — the per-execution coverage
    /// delta a campaign journal persists. Behavior is otherwise identical
    /// to `merge`, so journaling cannot perturb a campaign's decisions.
    pub fn merge_tracked(&mut self, run: &CovMap, changed: &mut Vec<(usize, u8)>) -> bool {
        self.merge_inner(run, Some(changed))
    }

    fn merge_inner(&mut self, run: &CovMap, mut changed: Option<&mut Vec<(usize, u8)>>) -> bool {
        if !crate::engine::reference_engine() {
            // Fast path: the run's touched list is exactly its nonzero
            // slots, so visiting it (sorted, to preserve the reference
            // scan's index-ascending order — journal delta bytes depend on
            // it) performs the identical sequence of byte merges in
            // O(touched) instead of O(MAP_SIZE).
            let mut idxs = run.touched.clone();
            idxs.sort_unstable();
            let mut new = false;
            for idx in idxs {
                let i = idx as usize;
                let bucket = classify_count(run.map[i]);
                let v = &mut self.virgin[i];
                if *v & bucket != bucket {
                    if *v == 0 {
                        self.edges_found += 1;
                    }
                    *v |= bucket;
                    new = true;
                    if let Some(out) = changed.as_deref_mut() {
                        out.push((i, *v));
                    }
                }
            }
            return new;
        }
        let mut new = false;
        for (wi, chunk) in run.as_slice().chunks_exact(8).enumerate() {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            if word == 0 {
                continue;
            }
            for (k, &raw) in chunk.iter().enumerate() {
                if raw == 0 {
                    continue;
                }
                let i = wi * 8 + k;
                let bucket = classify_count(raw);
                let v = &mut self.virgin[i];
                if *v & bucket != bucket {
                    if *v == 0 {
                        self.edges_found += 1;
                    }
                    *v |= bucket;
                    new = true;
                    if let Some(out) = changed.as_deref_mut() {
                        out.push((i, *v));
                    }
                }
            }
        }
        new
    }

    /// Number of distinct edges seen so far.
    pub fn edges_found(&self) -> usize {
        self.edges_found
    }

    /// Raw accumulated map bytes (checkpoint serialization).
    pub fn as_bytes(&self) -> &[u8] {
        &self.virgin
    }

    /// Rebuild a map from bytes saved via [`VirginMap::as_bytes`]. The
    /// edge count is recomputed from the bytes themselves (it is exactly
    /// the number of nonzero bucket bytes), so a checkpoint cannot smuggle
    /// in an inconsistent counter.
    ///
    /// # Panics
    /// Panics if `bytes` is not [`MAP_SIZE`] long; checkpoint decoders
    /// validate the length first.
    pub fn from_saved(bytes: Vec<u8>) -> Self {
        assert_eq!(bytes.len(), MAP_SIZE, "virgin map must be MAP_SIZE bytes");
        let edges_found = bytes.iter().filter(|&&b| b != 0).count();
        VirginMap {
            virgin: bytes,
            edges_found,
        }
    }

    /// Overwrite one bucket byte, keeping the edge count consistent —
    /// journal replay applies per-execution coverage deltas through this.
    pub fn set_byte(&mut self, index: usize, value: u8) {
        let slot = &mut self.virgin[index];
        match (*slot, value) {
            (0, v) if v != 0 => self.edges_found += 1,
            (o, 0) if o != 0 => self.edges_found -= 1,
            _ => {}
        }
        *slot = value;
    }

    /// OR `value` into one bucket byte, keeping the edge count consistent.
    /// Unlike [`VirginMap::set_byte`] this can only grow coverage, which is
    /// what a shard merge needs: OR-ing never discards bucket bits another
    /// lane already contributed.
    pub fn or_byte(&mut self, index: usize, value: u8) {
        let slot = &mut self.virgin[index];
        if *slot == 0 && value != 0 {
            self.edges_found += 1;
        }
        *slot |= value;
    }

    /// OR another whole virgin map into `self`, recording `(index, merged
    /// byte)` for every byte that changed. Returns `true` if anything
    /// changed. Because bytewise OR is commutative and associative, the
    /// final map is independent of the order lanes are unioned in — the
    /// property the sharded campaign merge relies on.
    ///
    /// Scans in 64-bit words and skips words with no new bits, so unioning
    /// a lane that found nothing new is O(MAP_SIZE / 8) word loads.
    pub fn union_tracked(&mut self, other: &VirginMap, changed: &mut Vec<(usize, u8)>) -> bool {
        let mut new = false;
        for (wi, chunk) in other.virgin.chunks_exact(8).enumerate() {
            let theirs = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            if theirs == 0 {
                continue;
            }
            let base = wi * 8;
            let ours =
                u64::from_le_bytes(self.virgin[base..base + 8].try_into().expect("chunk of 8"));
            if theirs & !ours == 0 {
                continue;
            }
            for (k, &b) in chunk.iter().enumerate() {
                let i = base + k;
                let v = &mut self.virgin[i];
                if b & !*v != 0 {
                    if *v == 0 {
                        self.edges_found += 1;
                    }
                    *v |= b;
                    new = true;
                    changed.push((i, *v));
                }
            }
        }
        new
    }
}

/// The per-process coverage update state (AFL's `prev_loc`).
#[derive(Debug, Clone, Copy, Default)]
pub struct CovState {
    prev: u16,
}

impl CovState {
    /// Apply the AFL edge transform for a block with id `cur`, updating the
    /// map and returning the folded edge index.
    ///
    /// This is the single coverage entry point for every engine form: the
    /// reference interpreter's `CovEdge` hostcall, the decoded `CovEdgeK`
    /// op, the fused `CovCmpBr` superinstruction, and `Cov` components
    /// inside a `DOp::Chain` all funnel here — coverage equivalence across
    /// engines is by construction, not by parallel implementations.
    #[inline]
    pub fn edge(&mut self, cur: u16, map: &mut CovMap) -> u16 {
        let idx = cur ^ self.prev;
        map.hit(idx);
        self.prev = cur >> 1;
        idx
    }

    /// Reset `prev_loc` (start of a test case).
    pub fn reset(&mut self) {
        self.prev = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_buckets_are_monotone() {
        let buckets: Vec<u8> = (0..=255u16).map(|c| classify_count(c as u8)).collect();
        for w in buckets.windows(2) {
            assert!(w[1] >= w[0] || w[0] == 128);
        }
        assert_eq!(classify_count(0), 0);
        assert_eq!(classify_count(1), 1);
        assert_eq!(classify_count(200), 128);
    }

    #[test]
    fn edge_transform_distinguishes_direction() {
        // a->b and b->a must map to different indices (AFL's prev>>1 trick).
        let mut m1 = CovMap::new();
        let mut s = CovState::default();
        let ab = {
            s.reset();
            s.edge(10, &mut m1);
            s.edge(20, &mut m1)
        };
        let ba = {
            s.reset();
            s.edge(20, &mut m1);
            s.edge(10, &mut m1)
        };
        assert_ne!(ab, ba);
    }

    #[test]
    fn virgin_map_detects_new_then_saturates() {
        let mut virgin = VirginMap::new();
        let mut run = CovMap::new();
        run.hit(5);
        assert!(virgin.merge(&run));
        assert!(!virgin.merge(&run), "same coverage is not new");
        assert_eq!(virgin.edges_found(), 1);

        // Higher hitcount bucket on the same edge IS new.
        for _ in 0..10 {
            run.hit(5);
        }
        assert!(virgin.merge(&run));
        assert_eq!(virgin.edges_found(), 1, "same edge, new bucket");
    }

    #[test]
    fn virgin_save_restore_and_set_byte_keep_edge_count() {
        let mut v = VirginMap::new();
        let mut run = CovMap::new();
        run.hit(9);
        run.hit(4000);
        v.merge(&run);
        let restored = VirginMap::from_saved(v.as_bytes().to_vec());
        assert_eq!(restored, v);
        assert_eq!(restored.edges_found(), 2);

        let mut w = VirginMap::new();
        w.set_byte(7, 1);
        assert_eq!(w.edges_found(), 1);
        w.set_byte(7, 3); // same edge, new bucket
        assert_eq!(w.edges_found(), 1);
        w.set_byte(7, 0);
        assert_eq!(w.edges_found(), 0);
    }

    #[test]
    fn merge_tracked_reports_exactly_the_changed_bytes() {
        let mut a = VirginMap::new();
        let mut b = VirginMap::new();
        let mut run = CovMap::new();
        run.hit(3);
        run.hit(900);
        let mut changed = Vec::new();
        assert!(a.merge_tracked(&run, &mut changed));
        assert!(b.merge(&run));
        assert_eq!(a, b, "tracked merge must not change semantics");
        // Replaying the deltas onto a fresh map reproduces the merged map.
        let mut replay = VirginMap::new();
        for &(i, v) in &changed {
            replay.set_byte(i, v);
        }
        assert_eq!(replay, a);
        // A second identical merge changes nothing.
        changed.clear();
        assert!(!a.merge_tracked(&run, &mut changed));
        assert!(changed.is_empty());
    }

    #[test]
    fn lut_matches_branchy_oracle_for_all_counts() {
        for c in 0..=255u8 {
            assert_eq!(
                classify_count(c),
                classify_count_reference(c),
                "count {c}"
            );
            assert_eq!(COUNT_CLASS_LUT[c as usize], classify_count_reference(c));
        }
    }

    #[test]
    fn classify_word_matches_per_byte_classification() {
        let words = [
            0u64,
            1,
            0xFF,
            0x0102_0304_0506_0708,
            u64::MAX,
            0x8000_0000_0000_0001,
            0x2020_0303_FF00_1001,
        ];
        for w in words {
            let expect =
                u64::from_le_bytes(w.to_le_bytes().map(classify_count_reference));
            assert_eq!(classify_word(w), expect, "word {w:#x}");
        }
    }

    #[test]
    fn touched_list_is_exactly_the_nonzero_slots() {
        let mut m = CovMap::new();
        m.hit(9);
        m.hit(9);
        m.hit(3);
        m.hit(60000);
        let mut t = m.touched().to_vec();
        t.sort_unstable();
        assert_eq!(t, vec![3, 9, 60000], "no duplicates, every nonzero slot");
        m.clear();
        assert!(m.touched().is_empty());
        assert_eq!(m.count_nonzero(), 0);
        // Clearing on the reference path leaves the same all-zero state.
        m.hit(7);
        let _g = crate::engine::ReferenceEngineGuard::new();
        m.clear();
        assert_eq!(m.count_nonzero(), 0);
        assert!(m.touched().is_empty());
    }

    #[test]
    fn sparse_merge_matches_full_scan_merge() {
        let mut run = CovMap::new();
        // Hit in deliberately non-ascending order, with bucket variety.
        for &e in &[5000u16, 12, 64001, 12, 300, 7, 7, 7, 7] {
            run.hit(e);
        }
        let mut fast = VirginMap::new();
        let mut fast_changed = Vec::new();
        let fast_new = fast.merge_tracked(&run, &mut fast_changed);

        let _g = crate::engine::ReferenceEngineGuard::new();
        let mut slow = VirginMap::new();
        let mut slow_changed = Vec::new();
        let slow_new = slow.merge_tracked(&run, &mut slow_changed);

        assert_eq!(fast_new, slow_new);
        assert_eq!(fast, slow);
        assert_eq!(
            fast_changed, slow_changed,
            "journal delta order must match the reference scan"
        );
    }

    #[test]
    fn union_is_commutative_and_tracks_changes() {
        let mut runs = [CovMap::new(), CovMap::new(), CovMap::new()];
        for &e in &[5u16, 9000, 5, 77] {
            runs[0].hit(e);
        }
        for &e in &[5u16, 42, 60000] {
            runs[1].hit(e);
        }
        for _ in 0..40 {
            runs[2].hit(5); // same edge, bigger bucket than lane 0/1
        }
        let lanes: Vec<VirginMap> = runs
            .iter()
            .map(|r| {
                let mut v = VirginMap::new();
                v.merge(r);
                v
            })
            .collect();

        // Union in two different orders: identical result.
        let mut fwd = VirginMap::new();
        let mut rev = VirginMap::new();
        let mut fwd_changed = Vec::new();
        for l in &lanes {
            fwd.union_tracked(l, &mut fwd_changed);
        }
        for l in lanes.iter().rev() {
            rev.union_tracked(l, &mut Vec::new());
        }
        assert_eq!(fwd, rev, "union must be lane-order-invariant");

        // Replaying the changes through or_byte reproduces the union.
        let mut replay = VirginMap::new();
        for &(i, v) in &fwd_changed {
            replay.or_byte(i, v);
        }
        assert_eq!(replay, fwd);

        // Re-unioning an already-covered lane changes nothing.
        let mut changed = Vec::new();
        assert!(!fwd.union_tracked(&lanes[0], &mut changed));
        assert!(changed.is_empty());
    }

    #[test]
    fn or_byte_never_loses_bits() {
        let mut v = VirginMap::new();
        v.or_byte(3, 0b0000_0100);
        assert_eq!(v.edges_found(), 1);
        v.or_byte(3, 0b0010_0000);
        assert_eq!(v.as_bytes()[3], 0b0010_0100);
        assert_eq!(v.edges_found(), 1, "same edge, more buckets");
        v.or_byte(3, 0);
        assert_eq!(v.as_bytes()[3], 0b0010_0100, "OR with zero is a no-op");
        v.or_byte(9, 0);
        assert_eq!(v.edges_found(), 1, "zero value does not count an edge");
    }

    #[test]
    fn hitcounts_saturate() {
        let mut m = CovMap::new();
        for _ in 0..300 {
            m.hit(1);
        }
        assert_eq!(m.as_slice()[1], 255);
    }

    #[test]
    fn classified_hash_stable_under_jitter_within_bucket() {
        let mut a = CovMap::new();
        let mut b = CovMap::new();
        for _ in 0..33 {
            a.hit(7);
        }
        for _ in 0..100 {
            b.hit(7);
        }
        // 33 and 100 both land in bucket 64.
        assert_eq!(a.classified_hash(), b.classified_hash());
        let mut c = CovMap::new();
        c.hit(7);
        assert_ne!(a.classified_hash(), c.classified_hash());
    }
}
