//! Engine selection: decoded fast path vs. reference interpreter.
//!
//! The decoded-bytecode engine (see [`crate::decoded`]) and the coverage
//! fast paths are *host-speed* optimizations: they must leave every
//! simulated observable — cycle counts, coverage hashes, crash sites,
//! checkpoint bytes — bit-for-bit identical to the original tree-walking
//! interpreter. To make that claim testable, the original engine survives
//! as a **reference path** that can be selected two ways:
//!
//! * at compile time with `--features slow-interp`, which forces every
//!   thread onto the reference path (the golden equivalence tests build
//!   the workspace twice and compare results across binaries);
//! * at run time, per thread, with [`set_reference_engine`] — used by the
//!   in-process golden tests and by the `exec_throughput` bench, which
//!   measures both engines in the same run to report the speedup.
//!
//! The switch is thread-local so parallel bench trials can pin different
//! engines without racing each other.

use std::cell::Cell;

thread_local! {
    static FORCE_REFERENCE: Cell<bool> = const { Cell::new(false) };
    static DISABLE_DECODE_OPT: Cell<bool> = const { Cell::new(false) };
}

/// Force (or stop forcing) the reference interpreter and the pre-change
/// coverage scan on the **current thread**. No-op for other threads.
pub fn set_reference_engine(on: bool) {
    FORCE_REFERENCE.with(|c| c.set(on));
}

/// Is the current thread on the reference (pre-change) path? True when the
/// `slow-interp` feature is compiled in or [`set_reference_engine`] was
/// called with `true` on this thread.
#[inline]
pub fn reference_engine() -> bool {
    cfg!(feature = "slow-interp") || FORCE_REFERENCE.with(Cell::get)
}

/// RAII guard: reference engine on while alive, restored on drop. Keeps
/// tests from leaking the thread-local into later tests on a pooled
/// thread.
#[derive(Debug)]
pub struct ReferenceEngineGuard {
    prev: bool,
}

impl ReferenceEngineGuard {
    /// Switch the current thread to the reference engine until drop.
    pub fn new() -> Self {
        let prev = FORCE_REFERENCE.with(Cell::get);
        set_reference_engine(true);
        ReferenceEngineGuard { prev }
    }
}

impl Default for ReferenceEngineGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ReferenceEngineGuard {
    fn drop(&mut self) {
        set_reference_engine(self.prev);
    }
}

/// Enable (default) or disable the decode-time-optimized op streams on
/// the **current thread**. With optimization off, the decoded engine runs
/// the plain 1:1 streams — still the fast engine, just unoptimized. The
/// escape hatch behind `Campaign::decode_opt(false)`.
pub fn set_decode_opt(on: bool) {
    DISABLE_DECODE_OPT.with(|c| c.set(!on));
}

/// Should the decoded engine use optimized streams on this thread? False
/// when the `no-fir-opt` feature compiled the optimizer out or
/// [`set_decode_opt`] turned it off here.
#[inline]
pub fn decode_opt() -> bool {
    !cfg!(feature = "no-fir-opt") && !DISABLE_DECODE_OPT.with(Cell::get)
}

/// RAII guard: decode-time optimization **off** while alive, previous
/// state restored on drop. The three-way equivalence tests use this to
/// pin the plain decoded stream the way [`ReferenceEngineGuard`] pins the
/// reference interpreter.
#[derive(Debug)]
pub struct DecodeOptGuard {
    prev: bool,
}

impl DecodeOptGuard {
    /// Disable optimized streams on the current thread until drop.
    pub fn new() -> Self {
        let prev = DISABLE_DECODE_OPT.with(Cell::get);
        DISABLE_DECODE_OPT.with(|c| c.set(true));
        DecodeOptGuard { prev }
    }
}

impl Default for DecodeOptGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for DecodeOptGuard {
    fn drop(&mut self) {
        DISABLE_DECODE_OPT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_opt_guard_pins_plain_streams_and_restores() {
        assert!(decode_opt() || cfg!(feature = "no-fir-opt"));
        {
            let _g = DecodeOptGuard::new();
            assert!(!decode_opt());
            {
                let _inner = DecodeOptGuard::new();
                assert!(!decode_opt());
            }
            assert!(!decode_opt(), "outer guard still active");
        }
        assert!(decode_opt() || cfg!(feature = "no-fir-opt"));
    }

    #[test]
    fn decode_opt_switch_is_thread_local() {
        let _g = DecodeOptGuard::new();
        let other = std::thread::spawn(decode_opt).join().unwrap();
        assert!(
            other || cfg!(feature = "no-fir-opt"),
            "other threads keep optimization on"
        );
    }

    #[test]
    fn guard_restores_previous_state() {
        assert!(!reference_engine() || cfg!(feature = "slow-interp"));
        {
            let _g = ReferenceEngineGuard::new();
            assert!(reference_engine());
            {
                let _inner = ReferenceEngineGuard::new();
                assert!(reference_engine());
            }
            assert!(reference_engine(), "outer guard still active");
        }
        assert!(!reference_engine() || cfg!(feature = "slow-interp"));
    }

    #[test]
    fn switch_is_thread_local() {
        let _g = ReferenceEngineGuard::new();
        let other = std::thread::spawn(reference_engine).join().unwrap();
        assert!(
            !other || cfg!(feature = "slow-interp"),
            "other threads keep the default engine"
        );
    }
}
