//! The simulated filesystem: a flat path → bytes store shared by all
//! processes of one [`crate::os::Os`]. Fuzzing executors write the current
//! test case to [`FUZZ_INPUT_PATH`] before each run, exactly like AFL++'s
//! `.cur_input` file.

use std::collections::HashMap;

/// Path every target reads its fuzzed input from.
pub const FUZZ_INPUT_PATH: &str = "/fuzz/input";

/// A trivially simple in-memory filesystem.
#[derive(Debug, Clone, Default)]
pub struct SimFs {
    files: HashMap<String, Vec<u8>>,
}

impl SimFs {
    /// Empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create or replace a file.
    pub fn write_file(&mut self, path: impl Into<String>, data: Vec<u8>) {
        self.files.insert(path.into(), data);
    }

    /// Read a file's contents.
    pub fn read_file(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(|v| v.as_slice())
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Remove a file.
    pub fn remove(&mut self, path: &str) -> bool {
        self.files.remove(path).is_some()
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if no files exist.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_remove() {
        let mut fs = SimFs::new();
        assert!(fs.is_empty());
        fs.write_file("/a", vec![1, 2, 3]);
        assert_eq!(fs.read_file("/a"), Some(&[1u8, 2, 3][..]));
        assert!(fs.exists("/a"));
        assert_eq!(fs.len(), 1);
        assert!(fs.remove("/a"));
        assert!(!fs.remove("/a"));
        assert!(fs.read_file("/a").is_none());
    }

    #[test]
    fn overwrite_replaces() {
        let mut fs = SimFs::new();
        fs.write_file(FUZZ_INPUT_PATH, vec![1]);
        fs.write_file(FUZZ_INPUT_PATH, vec![2, 3]);
        assert_eq!(fs.read_file(FUZZ_INPUT_PATH), Some(&[2u8, 3][..]));
    }
}
