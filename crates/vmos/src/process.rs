//! The simulated process: memory, heap, descriptors, frames, and the
//! ClosureX runtime side-state installed by the compiler passes.

use std::collections::HashMap;

use fir::{FunctionId, Module};

use crate::cov::CovState;
use crate::crash::{Crash, CrashKind};
use crate::fd::FdTable;
use crate::heap::{AccessVerdict, HeapState, HEAP_BASE};
use crate::layout::GlobalMap;
use crate::mem::PageTable;

/// Top of the stack region; frames grow downward from here.
pub const STACK_TOP: u64 = 0x7fff_0000;
/// Maximum stack bytes before a stack-overflow crash.
pub const STACK_MAX_BYTES: u64 = 1 << 20;
/// Maximum call depth before a stack-overflow crash.
pub const MAX_CALL_DEPTH: usize = 384;
/// Null page extent: accesses below this are null-pointer dereferences.
pub const NULL_PAGE_END: u64 = 0x1_0000;

/// One interpreter activation record.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Function being executed.
    pub func: FunctionId,
    /// Current basic block.
    pub block: u32,
    /// Index of the *next* instruction in the block.
    pub ip: usize,
    /// Register file.
    pub regs: Vec<i64>,
    /// Stack pointer to restore when this frame pops.
    pub saved_sp: u64,
    /// Caller register that receives this frame's return value.
    pub ret_dst: Option<fir::Reg>,
}

/// A `setjmp` continuation.
#[derive(Debug, Clone)]
pub struct JmpCtx {
    /// Call-stack depth at `setjmp` time.
    pub depth: usize,
    /// Block of the instruction after the `setjmp` call.
    pub block: u32,
    /// Instruction index after the `setjmp` call.
    pub ip: usize,
    /// Stack pointer at `setjmp` time.
    pub sp: u64,
    /// Register receiving `setjmp`'s return value.
    pub dst: Option<fir::Reg>,
}

/// ClosureX runtime side-state, populated by the hooked host calls the
/// `HeapPass`/`FilePass`/`ExitPass` rewrote the target to use.
///
/// This is the *mechanism* half; the *policy* (when to sweep, snapshot,
/// restore) lives in the `closurex` crate's harness.
#[derive(Debug, Clone, Default)]
pub struct ClosureRt {
    /// Whether the hooks are active in this process.
    pub enabled: bool,
    /// Live chunk map: pointer → requested size (paper Fig. 5).
    pub chunk_map: HashMap<u64, u64>,
    /// Handles opened via `closurex_fopen` during test-case execution.
    pub open_files: Vec<u64>,
    /// Handles opened during the initialization phase; these are *rewound*
    /// (fseek to 0) between test cases instead of closed and reopened.
    pub init_files: Vec<u64>,
    /// True while the harness runs deferred initialization.
    pub in_init_phase: bool,
}

/// A simulated process.
#[derive(Debug, Clone)]
pub struct Process {
    /// Copy-on-write paged memory.
    pub mem: PageTable,
    /// Heap allocator state.
    pub heap: HeapState,
    /// Descriptor table.
    pub fds: FdTable,
    /// Loaded-globals layout.
    pub globals: GlobalMap,
    /// Live activation records (empty when idle).
    pub frames: Vec<Frame>,
    /// Current stack pointer.
    pub sp: u64,
    /// Coverage `prev_loc` state.
    pub cov_state: CovState,
    /// ClosureX runtime side-state.
    pub rt: ClosureRt,
    /// Live `setjmp` contexts keyed by `jmp_buf` address.
    pub jmpbufs: HashMap<u64, JmpCtx>,
    /// Deterministic PRNG state for the `rand` hostcall.
    pub rng_state: u64,
    /// Captured stdout.
    pub stdout: Vec<u8>,
    /// Pid for diagnostics.
    pub pid: u32,
}

impl Process {
    /// Load a module into a fresh process image.
    pub fn load(module: &Module, heap_limit: u64, fd_limit: usize, pid: u32) -> Self {
        let globals = GlobalMap::layout(module);
        let mut mem = PageTable::new();
        globals.load_into(module, &mut mem);
        // Heap-base ASLR analog: each process's heap lands at a slightly
        // different address, so stored pointers differ across fresh runs
        // (the paper's non-determinism source for global snapshots).
        let heap_base = HEAP_BASE + u64::from(pid % 16) * 0x10_0000;
        Process {
            mem,
            heap: HeapState::with_base(heap_base, heap_limit),
            fds: FdTable::new(fd_limit),
            globals,
            frames: Vec::new(),
            sp: STACK_TOP,
            cov_state: CovState::default(),
            rt: ClosureRt::default(),
            jmpbufs: HashMap::new(),
            rng_state: 0x243F6A8885A308D3 ^ u64::from(pid),
            stdout: Vec::new(),
            pid,
        }
    }

    /// Validate a memory access, producing the crash that a hardware MMU +
    /// sanitizer would report.
    ///
    /// # Errors
    /// The appropriate [`Crash`] for the faulting access.
    pub fn check_access(
        &self,
        addr: u64,
        len: u64,
        is_write: bool,
        function: &str,
        block: u32,
    ) -> Result<(), Crash> {
        let crash = |kind: CrashKind, detail: String| {
            Err(Crash {
                kind,
                function: function.to_string(),
                block,
                detail,
            })
        };
        if addr < NULL_PAGE_END {
            return crash(CrashKind::NullPtrDeref, format!("addr={addr:#x}"));
        }
        // Globals region.
        if self.globals.contains(addr) {
            return match self.globals.find(addr) {
                Some(slot) => {
                    if addr + len > slot.end() {
                        crash(
                            CrashKind::OutOfBoundsAccess,
                            format!("{} past global '{}'", addr + len - slot.end(), slot.name),
                        )
                    } else if is_write && !slot.writable {
                        crash(
                            CrashKind::InvalidWrite,
                            format!("write to read-only '{}'", slot.name),
                        )
                    } else {
                        Ok(())
                    }
                }
                None => {
                    if is_write {
                        crash(
                            CrashKind::InvalidWrite,
                            format!("addr={addr:#x} (global gap)"),
                        )
                    } else {
                        crash(
                            CrashKind::InvalidRead,
                            format!("addr={addr:#x} (global gap)"),
                        )
                    }
                }
            };
        }
        // Heap region.
        if (self.heap.base()..self.heap.high_water().max(self.heap.base())).contains(&addr) {
            return match self.heap.check_access(addr, len) {
                AccessVerdict::Ok => Ok(()),
                AccessVerdict::UseAfterFree => crash(
                    CrashKind::UnaddressableAccess,
                    format!("use-after-free at {addr:#x}"),
                ),
                AccessVerdict::OutOfBounds => crash(
                    CrashKind::OutOfBoundsAccess,
                    format!("heap OOB at {addr:#x}+{len}"),
                ),
                AccessVerdict::Unaddressable => crash(
                    CrashKind::UnaddressableAccess,
                    format!("heap gap at {addr:#x}"),
                ),
            };
        }
        // Stack region.
        if (STACK_TOP - STACK_MAX_BYTES..STACK_TOP).contains(&addr) {
            if addr + len <= STACK_TOP {
                return Ok(());
            }
            return crash(CrashKind::InvalidWrite, format!("past stack top {addr:#x}"));
        }
        crash(
            CrashKind::UnaddressableAccess,
            format!("unmapped addr={addr:#x} len={len}"),
        )
    }

    /// Read `len` bytes (unchecked; callers run [`Process::check_access`]).
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.mem.read(addr, &mut buf);
        buf
    }

    /// Write bytes (unchecked; callers run [`Process::check_access`]).
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        self.mem.write(addr, data);
    }

    /// Next value from the deterministic per-process PRNG (SplitMix64).
    pub fn next_rand(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Convenience: address just below the null page boundary is invalid, the
/// first global is at [`GLOBAL_BASE`].
pub fn is_null_addr(addr: u64) -> bool {
    addr < NULL_PAGE_END
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::GLOBAL_BASE;
    use fir::builder::ModuleBuilder;
    use fir::Global;

    fn proc() -> Process {
        let mut mb = ModuleBuilder::new("m");
        mb.global(Global::constant("ro", vec![9; 8]));
        mb.global(Global::zeroed("rw", 32));
        let m = mb.finish();
        Process::load(&m, 1 << 20, 16, 1)
    }

    #[test]
    fn null_deref_detected() {
        let p = proc();
        let e = p.check_access(0, 8, false, "f", 0).unwrap_err();
        assert_eq!(e.kind, CrashKind::NullPtrDeref);
        let e = p.check_access(0x8000, 1, true, "f", 0).unwrap_err();
        assert_eq!(e.kind, CrashKind::NullPtrDeref);
    }

    #[test]
    fn rodata_write_detected() {
        let p = proc();
        let ro = p.globals.addr_of_name("ro").unwrap();
        assert!(p.check_access(ro, 8, false, "f", 0).is_ok());
        let e = p.check_access(ro, 8, true, "f", 0).unwrap_err();
        assert_eq!(e.kind, CrashKind::InvalidWrite);
    }

    #[test]
    fn global_oob_detected() {
        let p = proc();
        let rw = p.globals.addr_of_name("rw").unwrap();
        assert!(p.check_access(rw + 31, 1, true, "f", 0).is_ok());
        let e = p.check_access(rw + 24, 16, true, "f", 0).unwrap_err();
        assert_eq!(e.kind, CrashKind::OutOfBoundsAccess);
    }

    #[test]
    fn heap_lifecycle_access_checks() {
        let mut p = proc();
        let a = p.heap.alloc(64).unwrap();
        assert!(p.check_access(a, 64, true, "f", 0).is_ok());
        p.heap.free(a).unwrap();
        let e = p.check_access(a, 1, false, "f", 0).unwrap_err();
        assert_eq!(e.kind, CrashKind::UnaddressableAccess);
    }

    #[test]
    fn stack_access_ok_unmapped_not() {
        let p = proc();
        assert!(p.check_access(STACK_TOP - 64, 32, true, "f", 0).is_ok());
        let e = p.check_access(0x6000_0000, 8, false, "f", 0).unwrap_err();
        assert_eq!(e.kind, CrashKind::UnaddressableAccess);
    }

    #[test]
    fn rng_is_deterministic_per_pid() {
        let mut a = proc();
        let mut b = proc();
        assert_eq!(a.next_rand(), b.next_rand());
        let mut c = {
            let mut mb = ModuleBuilder::new("m");
            mb.global(Global::zeroed("g", 8));
            Process::load(&mb.finish(), 1 << 20, 16, 2)
        };
        assert_ne!(a.next_rand(), c.next_rand());
    }

    #[test]
    fn globals_loaded_into_memory() {
        let p = proc();
        let ro = p.globals.addr_of_name("ro").unwrap();
        assert_eq!(p.read_bytes(ro, 8), vec![9; 8]);
        assert!(p.globals.contains(GLOBAL_BASE));
    }
}
