use std::sync::Arc;

use fir::builder::ModuleBuilder;
use fir::{CmpPred, Module, Operand};

use super::*;
use crate::hostcalls;

fn sample_module() -> Module {
    let mut mb = ModuleBuilder::new("m");
    let mut g = mb.function_with_params("helper", 1);
    let d = g.add(Operand::Reg(g.param(0)), Operand::Imm(1));
    g.ret(Some(Operand::Reg(d)));
    g.finish();
    let mut f = mb.function_with_params("main", 1);
    let r = f.call("helper", vec![Operand::Reg(f.param(0))]);
    let t = f.new_block();
    let e = f.new_block();
    f.cond_br(Operand::Reg(r), t, e);
    f.switch_to(t);
    f.call_void("puts", vec![Operand::Imm(0)]);
    f.ret(Some(Operand::Imm(1)));
    f.switch_to(e);
    f.call_void("no_such_symbol", vec![]);
    f.ret(Some(Operand::Imm(0)));
    f.finish();
    mb.finish()
}

/// `sum(n) = 0 + 1 + ... + n-1` with a coverage probe in the loop header —
/// the canonical MinC loop shape the fusion pass targets.
fn loop_module() -> Module {
    let mut mb = ModuleBuilder::new("m");
    let mut f = mb.function_with_params("sum", 1);
    let n = f.param(0);
    let acc = f.const_i64(0);
    let i = f.const_i64(0);
    let hdr = f.new_block();
    let body = f.new_block();
    let done = f.new_block();
    f.br(hdr);
    f.switch_to(hdr);
    f.call_void("__cov_edge", vec![Operand::Imm(7)]);
    let c = f.cmp(CmpPred::SLt, Operand::Reg(i), Operand::Reg(n));
    f.cond_br(Operand::Reg(c), body, done);
    f.switch_to(body);
    let a2 = f.add(Operand::Reg(acc), Operand::Reg(i));
    f.mov_to(acc, Operand::Reg(a2));
    let i2 = f.add(Operand::Reg(i), Operand::Imm(1));
    f.mov_to(i, Operand::Reg(i2));
    f.br(hdr);
    f.switch_to(done);
    f.ret(Some(Operand::Reg(acc)));
    f.finish();
    mb.finish()
}

#[test]
fn lowering_is_one_to_one_with_source() {
    let m = sample_module();
    let img = DecodedImage::new(&m);
    for (fi, f) in m.functions.iter().enumerate() {
        let df = &img.funcs[fi];
        let expect: usize = f.blocks.iter().map(|b| b.insts.len() + 1).sum();
        assert_eq!(df.ops.len(), expect);
        assert_eq!(df.block_of.len(), expect);
        assert_eq!(df.block_start.len(), f.blocks.len());
        // Round-trip every pc through (block, ip) coordinates.
        for pc in 0..df.ops.len() as u32 {
            let (b, ip) = df.coords(pc);
            assert_eq!(df.flat_pc(b, ip), pc);
            assert!(ip <= f.blocks[b as usize].insts.len());
        }
    }
}

#[test]
fn calls_are_classified_like_the_reference_precedence() {
    let m = sample_module();
    let img = DecodedImage::new(&m);
    let main = &img.funcs[m.function_id("main").unwrap().0 as usize];
    assert!(main
        .ops
        .iter()
        .any(|op| matches!(op, DOp::CallFn { callee, .. } if *callee == m.function_id("helper").unwrap())));
    assert!(main.ops.iter().any(|op| matches!(
        op,
        DOp::CallHost { host, .. } if host.fun == hostcalls::HostFn::Puts
    )));
    assert!(main
        .ops
        .iter()
        .any(|op| matches!(op, DOp::CallUnknown { name } if &**name == "no_such_symbol")));
}

#[test]
fn module_functions_shadow_hostcalls() {
    // A module defining its own `malloc` must win over the host table,
    // exactly like the reference interpreter's resolution order.
    let mut mb = ModuleBuilder::new("m");
    let mut g = mb.function_with_params("malloc", 1);
    g.ret(Some(Operand::Imm(0)));
    g.finish();
    let mut f = mb.function("main");
    let _ = f.call("malloc", vec![Operand::Imm(8)]);
    f.ret(None);
    f.finish();
    let m = mb.finish();
    let img = DecodedImage::new(&m);
    let main = &img.funcs[m.function_id("main").unwrap().0 as usize];
    assert!(main.ops.iter().any(|op| matches!(op, DOp::CallFn { .. })));
}

#[test]
fn cache_returns_same_image_for_equal_modules() {
    let m1 = sample_module();
    let m2 = sample_module();
    let i1 = DecodedImage::cached(&m1);
    let i2 = DecodedImage::cached(&m2);
    assert!(Arc::ptr_eq(&i1, &i2), "structurally equal modules share");
    assert_eq!(i1.fingerprint, m1.fingerprint());

    let mut m3 = sample_module();
    m3.function_mut("helper").unwrap().num_regs += 1;
    let i3 = DecodedImage::cached(&m3);
    assert!(!Arc::ptr_eq(&i1, &i3), "different module, different image");
}

#[test]
fn warm_populates_the_cache_and_reports_hits() {
    let mut m = sample_module();
    // A module no other test lowers, so the first warm is a miss.
    m.function_mut("helper").unwrap().num_regs += 7;
    let fp = m.fingerprint();
    assert!(!DecodedImage::cache_contains(fp));
    assert!(!DecodedImage::warm(&m), "first warm pays for the lowering");
    assert!(DecodedImage::cache_contains(fp));
    assert!(DecodedImage::warm(&m), "second warm is a cache hit");
}

#[test]
fn cache_key_mixes_the_optimizer_discriminant() {
    // The historical bug: images keyed by fingerprint alone, so a build
    // with a different optimizer configuration could be served another
    // configuration's stream. The key must differ from the raw
    // fingerprint for every fingerprint.
    for fp in [0u64, 1, 0xdead_beef, u64::MAX] {
        assert_ne!(DecodedImage::cache_key(fp), fp);
    }
}

#[cfg(not(feature = "no-fir-opt"))]
mod optimized {
    use super::*;

    #[test]
    fn loop_header_fuses_into_the_cov_cmp_br_triple() {
        let img = DecodedImage::new(&loop_module());
        assert!(img.has_opt());
        let stats = &img.stats;
        assert!(stats.fused_cov_cmp_br >= 1, "stats: {stats:?}");
        assert!(stats.movs_coalesced >= 2, "latch movs coalesce: {stats:?}");
        let df = &img.opt_funcs.as_ref().unwrap()[0];
        assert!(df.ops.iter().any(|op| matches!(op, DOp::CovCmpBr { .. })));
        // The plain stream must stay strictly 1:1.
        assert!(img.funcs[0]
            .ops
            .iter()
            .all(|op| !matches!(op, DOp::CovCmpBr { .. } | DOp::CovEdgeK { .. })));
        assert!(img.funcs[0].pre.iter().all(|&p| p == 0));
    }

    /// Every eliminated or fused source instruction must still be charged
    /// exactly once: live pcs + `pre` counters + fused-component extras
    /// must add up to the source instruction count.
    #[test]
    fn charge_capacity_matches_the_source_instruction_count() {
        let m = loop_module();
        let img = DecodedImage::new(&m);
        let f = &m.functions[0];
        let source_total: usize = f.blocks.iter().map(|b| b.insts.len() + 1).sum();
        let df = &img.opt_funcs.as_ref().unwrap()[0];
        let extras: usize = df
            .ops
            .iter()
            .map(|op| match op {
                DOp::CovCmpBr { .. } => 2,
                DOp::CmpBr { .. }
                | DOp::BinBr { .. }
                | DOp::MovBr { .. }
                | DOp::StoreBr { .. }
                | DOp::BinLoad { .. }
                | DOp::LoadBin { .. } => 1,
                DOp::BrChain { skipped, .. } => *skipped as usize,
                // A chain charges each component (head rides the stream
                // charge) plus every absorbed eliminated slot plus the
                // absorbed branch, if any.
                DOp::Chain { comps, tail } => {
                    let comp_charges: usize = comps
                        .iter()
                        .skip(1)
                        .map(|c| 1 + c.pre as usize)
                        .sum();
                    comp_charges
                        + match tail {
                            ChainTail::Next => 0,
                            ChainTail::Br { pre, .. } => 1 + *pre as usize,
                            ChainTail::CondBr { pre, .. } => 1 + *pre as usize,
                        }
                }
                _ => 0,
            })
            .sum();
        let pres: usize = df.pre.iter().map(|&p| p as usize).sum();
        assert_eq!(df.ops.len() + pres + extras, source_total);
    }

    #[test]
    fn resume_map_is_total_over_source_coordinates() {
        for m in [sample_module(), loop_module()] {
            let img = DecodedImage::new(&m);
            for (fi, f) in m.functions.iter().enumerate() {
                let df = &img.opt_funcs.as_ref().unwrap()[fi];
                for (bi, b) in f.blocks.iter().enumerate() {
                    for ip in 0..=b.insts.len() {
                        let pc = df.src_pc(bi as u32, ip);
                        assert!(
                            (pc as usize) < df.ops.len(),
                            "{}: ({bi},{ip}) -> {pc} out of range",
                            f.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn small_leaf_callees_inline_at_decode_time() {
        let mut mb = ModuleBuilder::new("m");
        let mut g = mb.function_with_params("inc", 1);
        let d = g.add(Operand::Reg(g.param(0)), Operand::Imm(1));
        g.ret(Some(Operand::Reg(d)));
        g.finish();
        let mut f = mb.function_with_params("count", 1);
        let n = f.param(0);
        let i = f.const_i64(0);
        let hdr = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        f.br(hdr);
        f.switch_to(hdr);
        let c = f.cmp(CmpPred::SLt, Operand::Reg(i), Operand::Reg(n));
        f.cond_br(Operand::Reg(c), body, done);
        f.switch_to(body);
        let i2 = f.call("inc", vec![Operand::Reg(i)]);
        f.mov_to(i, Operand::Reg(i2));
        f.br(hdr);
        f.switch_to(done);
        f.ret(Some(Operand::Reg(i)));
        f.finish();
        let m = mb.finish();
        let img = DecodedImage::new(&m);
        assert!(img.stats.inline_sites >= 1, "stats: {:?}", img.stats);
        assert_eq!(img.stats.inlined_callees, 1);
        let count = &img.opt_funcs.as_ref().unwrap()[m.function_id("count").unwrap().0 as usize];
        assert!(count.ops.iter().any(|op| matches!(op, DOp::InlineEnter { .. })));
        assert!(count.ops.iter().any(|op| matches!(op, DOp::InlineRet { .. })));
        assert!(count.ops.iter().all(|op| !matches!(op, DOp::CallFn { .. })));
        // The inline window extends the register file beyond the source's.
        let src_regs = m.function("count").unwrap().num_regs;
        assert!(count.num_regs > src_regs);
        // The plain stream still calls.
        assert!(img.funcs[m.function_id("count").unwrap().0 as usize]
            .ops
            .iter()
            .any(|op| matches!(op, DOp::CallFn { .. })));
    }

    #[test]
    fn dense_switches_become_jump_tables() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function_with_params("classify", 1);
        let v = f.param(0);
        let a = f.new_block();
        let b = f.new_block();
        let c = f.new_block();
        let dflt = f.new_block();
        f.switch(Operand::Reg(v), vec![(10, a), (11, b), (12, c)], dflt);
        for (blk, r) in [(a, 1i64), (b, 2), (c, 3), (dflt, 0)] {
            f.switch_to(blk);
            f.ret(Some(Operand::Imm(r)));
        }
        f.finish();
        let m = mb.finish();
        let img = DecodedImage::new(&m);
        assert_eq!(img.stats.switch_tables, 1);
        let df = &img.opt_funcs.as_ref().unwrap()[0];
        let table = df
            .ops
            .iter()
            .find_map(|op| match op {
                DOp::SwitchTable { base, table, .. } => Some((*base, table.len())),
                _ => None,
            })
            .expect("switch specialized");
        assert_eq!(table, (10, 3));
    }

    #[test]
    fn setjmp_functions_skip_elimination_but_not_layout() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global(fir::Global::zeroed("jbuf", 64));
        let mut f = mb.function("main");
        let a = f.addr_of(g);
        let v = f.call("setjmp", vec![Operand::Reg(a)]);
        // A dead temp that DCE would normally erase.
        let dead = f.add(Operand::Reg(v), Operand::Imm(1));
        let _ = dead;
        f.ret(Some(Operand::Reg(v)));
        f.finish();
        let m = mb.finish();
        let img = DecodedImage::new(&m);
        let df = &img.opt_funcs.as_ref().unwrap()[0];
        // Nothing eliminated: longjmp re-entry makes static liveness moot.
        assert!(df.pre.iter().all(|&p| p == 0));
        assert_eq!(df.ops.len(), img.funcs[0].ops.len());
    }
}

#[test]
fn dop_size_stays_dispatch_friendly() {
    // The ops array stride is the dispatch loop's cache footprint;
    // growing the largest variant taxes every target. 72 bytes is the
    // current stride (set by the fattest fused variants); anyone adding a
    // wider op should box its payload instead of raising this bound.
    assert!(
        std::mem::size_of::<DOp>() <= 72,
        "DOp grew to {} bytes — box the new variant's payload",
        std::mem::size_of::<DOp>()
    );
}
