//! Decode-time optimizer: block IR, operand pre-resolution, coalescing,
//! and dead decoded-temp elimination (phase A of the pass stack).
//!
//! The optimizer never changes what the program *simulates* — every pass
//! must leave cycle charges, instruction counts, coverage updates, crash
//! sites, and `setjmp` coordinates bit-identical to the reference
//! interpreter. The passes here exploit exactly two degrees of freedom:
//!
//! 1. **Registers are host-only state at abnormal boundaries.** When a
//!    call ends in a crash / `OutOfFuel` / exit, `Machine::call` truncates
//!    the frames it pushed, so mid-call register contents never escape.
//!    Dead register writes are therefore pure host bookkeeping and can be
//!    skipped — as long as their *instruction charge* survives, which the
//!    emitted stream preserves through per-pc `pre` counters (see
//!    [`super::fuse`]).
//! 2. **Decode-time constants are run-time constants.** Global addresses
//!    ([`GlobalMap::layout`] is deterministic per module) and
//!    const-assigned registers can be forwarded into operand slots without
//!    changing any computed value.
//!
//! `setjmp` is the boundary of both arguments: a `longjmp` re-enters a
//! function at the recorded source coordinates with whatever register
//! file the suspended frame held, which static liveness does not model.
//! Functions containing `setjmp` therefore skip coalescing and DCE
//! entirely (const-forwarding stays safe because the lattice is cleared
//! at every `setjmp`).

use fir::liveness::{liveness, RegSet};
use fir::{BinOp, Module, Operand};

use super::{fuse, inline, lower, DFunc, DOp, OptStats};
use crate::layout::GlobalMap;

/// What a slot contributes to the emitted stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum Kind {
    /// Emitted as an op with its own pc.
    Live,
    /// Not emitted; its instruction charge folds into the next live pc's
    /// `pre` counter. Only ops with no effect beyond a dead register
    /// write (or a branch folded by block merging) are eliminated.
    Elim,
    /// Consumed as a component of a fused superinstruction; the fused op
    /// (which precedes it in slot order) executes and charges it.
    Absorbed,
}

/// One op slot in the optimizer IR. Branch fields of `op` hold **block
/// indices** (not pcs) until emission resolves the final layout.
#[derive(Debug, Clone)]
pub(super) struct Slot {
    pub op: DOp,
    pub kind: Kind,
    /// Function whose *name* crash/host sites at this op report
    /// (differs from the owner only in inlined regions).
    pub site_fn: u32,
    /// Source block crash sites at this op report (callee block inside
    /// inlined regions).
    pub site_block: u32,
    /// Source `(block, ip)` coordinate this slot descends from, for the
    /// `pc_of_src` resume map. `None` for inlined-body slots.
    pub src: Option<(u32, u32)>,
}

/// A block of slots. The last [`Kind::Live`] slot is the terminator
/// (`Br`/`CondBr`/`Switch`/`Ret`/`Unreachable` or, after inlining,
/// `InlineEnter`/`InlineRet`).
#[derive(Debug, Clone, Default)]
pub(super) struct OBlock {
    pub slots: Vec<Slot>,
}

impl OBlock {
    /// Index of the last live slot (the terminator), if any.
    pub fn last_live(&self) -> Option<usize> {
        self.slots.iter().rposition(|s| s.kind == Kind::Live)
    }
}

/// One function in optimizer IR form.
#[derive(Debug, Clone)]
pub(super) struct FuncIr {
    pub name: String,
    pub num_params: u32,
    /// May exceed the source register file after inlining (scratch space).
    pub num_regs: u32,
    /// Blocks; indices 0..orig_start.len() are source blocks, anything
    /// beyond was appended by splitting/inlining.
    pub blocks: Vec<OBlock>,
    /// Does the function contain a `setjmp`? Disables elimination.
    pub has_setjmp: bool,
    /// No `CallFn`/`setjmp`/`longjmp` anywhere — an inlining candidate.
    pub leaf: bool,
    /// Source flat-coordinate base per source block
    /// (`insts.len() + 1` accumulated) — the index space of `pc_of_src`.
    pub orig_start: Vec<u32>,
    /// Total number of source coordinates (`orig_start` end).
    pub src_total: u32,
}

impl FuncIr {
    /// Number of live (emitted) ops.
    pub fn live_size(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| &b.slots)
            .filter(|s| s.kind == Kind::Live)
            .count()
    }
}

/// Run the whole decode-time pass stack over `module`, returning the
/// optimized streams (same [`fir::FunctionId`] indexing as the plain
/// ones).
pub(super) fn optimize_module(module: &Module, stats: &mut OptStats) -> Vec<DFunc> {
    let gmap = GlobalMap::layout(module);
    let mut irs: Vec<FuncIr> = module
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| build_ir(module, i as u32, f))
        .collect();

    let skip = std::env::var("CLOSUREX_OPT_SKIP").unwrap_or_default();
    let skip = |name: &str| skip.split(',').any(|s| s == name);

    // Phase A: per-function local passes.
    for (i, ir) in irs.iter_mut().enumerate() {
        if !skip("resolve") {
            resolve(ir, &gmap, stats);
        }
        if !ir.has_setjmp {
            let lv = liveness(&module.functions[i]);
            if !skip("coalesce") {
                coalesce(ir, &lv.live_out, stats);
            }
            if !skip("dce") {
                dce(ir, &lv.live_out, stats);
            }
        }
    }

    // Phase B: decode-time inlining of small leaf callees.
    if !skip("inline") {
        inline::inline_all(module, &mut irs, stats);
    }

    // Phase C: layout — merge, chain folding, linearization,
    // specialization, fusion, emission.
    irs.into_iter().map(|ir| fuse::finish(ir, stats)).collect()
}

/// Lower one function into optimizer IR. Reuses the plain lowering's
/// instruction/call classification so the two streams cannot diverge; only
/// terminators differ (block indices instead of pcs).
fn build_ir(module: &Module, self_fid: u32, f: &fir::Function) -> FuncIr {
    let mut orig_start = Vec::with_capacity(f.blocks.len());
    let mut acc: u32 = 0;
    for b in &f.blocks {
        orig_start.push(acc);
        acc += b.insts.len() as u32 + 1;
    }

    let mut has_setjmp = false;
    let mut leaf = true;
    let blocks = f
        .blocks
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            let mut slots = Vec::with_capacity(b.insts.len() + 1);
            for (ip, inst) in b.insts.iter().enumerate() {
                let op = lower::lower_inst(module, inst, bi as u32, ip as u32);
                match op {
                    DOp::Setjmp { .. } => {
                        has_setjmp = true;
                        leaf = false;
                    }
                    DOp::Longjmp { .. } | DOp::CallFn { .. } => leaf = false,
                    _ => {}
                }
                slots.push(Slot {
                    op,
                    kind: Kind::Live,
                    site_fn: self_fid,
                    site_block: bi as u32,
                    src: Some((bi as u32, ip as u32)),
                });
            }
            slots.push(Slot {
                op: lower::lower_term(&b.term, |t| t.0),
                kind: Kind::Live,
                site_fn: self_fid,
                site_block: bi as u32,
                src: Some((bi as u32, b.insts.len() as u32)),
            });
            OBlock { slots }
        })
        .collect();

    FuncIr {
        name: f.name.clone(),
        num_params: f.num_params,
        num_regs: f.num_regs,
        blocks,
        has_setjmp,
        leaf,
        orig_start,
        src_total: acc,
    }
}

/// Operand pre-resolution: `addr_of` results become decode-time constants
/// (the global layout is deterministic per module), and registers known to
/// hold a constant are forwarded into operand slots. Purely local
/// (per-block); the constant lattice is cleared at `setjmp` so nothing is
/// forwarded across a `longjmp` re-entry point.
fn resolve(ir: &mut FuncIr, gmap: &GlobalMap, stats: &mut OptStats) {
    use std::collections::HashMap;
    for block in &mut ir.blocks {
        let mut known: HashMap<u32, i64> = HashMap::new();
        for slot in &mut block.slots {
            // Rewrite uses before looking at the definition.
            slot.op.for_each_use_mut(|o| {
                if let Operand::Reg(r) = o {
                    if let Some(c) = known.get(&r.0) {
                        *o = Operand::Imm(*c);
                        stats.operands_resolved += 1;
                    }
                }
            });
            if let DOp::AddrOf { dst, global } = slot.op {
                let addr = gmap.addr_of(global).expect("verified global") as i64;
                slot.op = DOp::Const { dst, value: addr };
                stats.operands_resolved += 1;
            }
            match &slot.op {
                DOp::Const { dst, value } => {
                    known.insert(*dst, *value);
                }
                DOp::Mov {
                    dst,
                    src: Operand::Imm(v),
                } => {
                    known.insert(*dst, *v);
                }
                DOp::Setjmp { .. } => known.clear(),
                op => {
                    if let Some(d) = op.def_reg() {
                        known.remove(&d);
                    }
                }
            }
        }
    }
}

/// Can this op's destination be redirected by coalescing? Calls are
/// excluded: a `CallFn`'s destination write happens when the callee
/// returns, so redirecting it would move a visible-to-`longjmp` write —
/// and the simple ops below already cover the MinC `tmp = ...; mov x, tmp`
/// idiom.
fn coalescable(op: &DOp) -> bool {
    matches!(
        op,
        DOp::Const { .. }
            | DOp::Mov { .. }
            | DOp::Bin { .. }
            | DOp::Cmp { .. }
            | DOp::Select { .. }
            | DOp::Load { .. }
            | DOp::AddrOf { .. }
            | DOp::Alloca { .. }
    )
}

/// Is register `r` read by any live slot at or after index `from`?
fn used_later(slots: &[Slot], from: usize, r: u32) -> bool {
    slots[from..]
        .iter()
        .filter(|s| s.kind == Kind::Live)
        .any(|s| s.op.use_regs().contains(&r))
}

/// Collapse `t = <op>; v = mov t` into `v = <op>` when `t` dies at the
/// mov. The mov slot is eliminated (charge preserved via `pre`); the
/// defining op simply writes the final destination. Skipped entirely for
/// functions containing `setjmp` (see module docs).
fn coalesce(ir: &mut FuncIr, live_out: &[RegSet], stats: &mut OptStats) {
    for (bi, block) in ir.blocks.iter_mut().enumerate() {
        let out = &live_out[bi];
        let mut prev: Option<usize> = None;
        for i in 0..block.slots.len() {
            if block.slots[i].kind != Kind::Live {
                continue;
            }
            if let DOp::Mov {
                dst: v,
                src: Operand::Reg(t),
            } = block.slots[i].op
            {
                if let Some(pi) = prev {
                    if t.0 != v
                        && block.slots[pi].op.def_reg() == Some(t.0)
                        && coalescable(&block.slots[pi].op)
                        && !out.contains(t.0)
                        && !used_later(&block.slots, i + 1, t.0)
                    {
                        block.slots[pi].op.set_def_reg(v);
                        block.slots[i].kind = Kind::Elim;
                        stats.movs_coalesced += 1;
                        // `prev` keeps pointing at the (re-targeted)
                        // defining op, so mov chains collapse fully.
                        continue;
                    }
                }
            }
            prev = Some(i);
        }
    }
}

/// A binop that can never trap, so eliminating it when its result is dead
/// removes no crash.
fn bin_is_safe(op: BinOp, rhs: Operand) -> bool {
    match op {
        BinOp::Add
        | BinOp::Sub
        | BinOp::Mul
        | BinOp::And
        | BinOp::Or
        | BinOp::Xor
        | BinOp::Shl
        | BinOp::LShr
        | BinOp::AShr => true,
        BinOp::UDiv | BinOp::URem => matches!(rhs, Operand::Imm(v) if v != 0),
        // `i64::MIN / -1` also traps, and the lhs is not known statically.
        BinOp::SDiv | BinOp::SRem => matches!(rhs, Operand::Imm(v) if v != 0 && v != -1),
    }
}

/// Dead decoded-temp elimination: backward scan per block seeded with the
/// source function's live-out set. Only effect-free ops (no memory, no
/// coverage, no possible trap) with a dead destination are eliminated;
/// their charges survive as `pre` counts. Skipped for `setjmp` functions.
fn dce(ir: &mut FuncIr, live_out: &[RegSet], stats: &mut OptStats) {
    for (bi, block) in ir.blocks.iter_mut().enumerate() {
        let mut live = live_out[bi].clone();
        for slot in block.slots.iter_mut().rev() {
            if slot.kind != Kind::Live {
                continue;
            }
            let eliminable = match &slot.op {
                DOp::Const { .. }
                | DOp::Mov { .. }
                | DOp::Cmp { .. }
                | DOp::Select { .. }
                | DOp::AddrOf { .. } => true,
                DOp::Bin { op, rhs, .. } => bin_is_safe(*op, *rhs),
                _ => false,
            };
            if eliminable {
                if let Some(d) = slot.op.def_reg() {
                    if !live.contains(d) {
                        slot.kind = Kind::Elim;
                        stats.insts_eliminated += 1;
                        continue;
                    }
                }
            }
            if let Some(d) = slot.op.def_reg() {
                live.remove(d);
            }
            for r in slot.op.use_regs() {
                live.insert(r);
            }
        }
    }
}
