//! Plain 1:1 lowering of FIR functions into [`DOp`] streams.
//!
//! Lowering is strictly 1:1 — one `DOp` per instruction plus one per block
//! terminator — so a flat pc and the reference engine's `(block, ip)`
//! coordinates are interconvertible: `pc = block_start[block] + ip`. That
//! equivalence is what lets the decoded loop share the `Process` frame
//! representation (frames store source coordinates) with the reference
//! engine, `setjmp`/`longjmp` included. The optimizer ([`super::opt`])
//! reuses [`lower_inst`] / [`lower_call`] / [`lower_term`] to build its
//! block-level IR, so call-site classification can never diverge between
//! the two streams.

use fir::{BlockId, Inst, Module, Operand, Terminator};

use super::{DFunc, DOp};
use crate::hostcalls;

/// Lower one function into the plain stream. The classification of call
/// sites mirrors the reference interpreter's run-time precedence exactly:
/// `__cov_edge`, then `setjmp`, then `longjmp`, then module functions
/// (first name match), then host calls, and finally the unresolved-symbol
/// crash.
pub(super) fn lower(module: &Module, self_fid: u32, f: &fir::Function) -> DFunc {
    let mut block_start = Vec::with_capacity(f.blocks.len());
    let mut pc: u32 = 0;
    for b in &f.blocks {
        block_start.push(pc);
        pc += b.insts.len() as u32 + 1; // +1 for the terminator
    }
    let total = pc as usize;

    let mut ops = Vec::with_capacity(total);
    let mut block_of = Vec::with_capacity(total);
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ip, inst) in b.insts.iter().enumerate() {
            ops.push(lower_inst(module, inst, bi as u32, ip as u32));
            block_of.push(bi as u32);
        }
        ops.push(lower_term(&b.term, |b| block_start[b.0 as usize]));
        block_of.push(bi as u32);
    }
    debug_assert_eq!(ops.len(), total);

    DFunc {
        name: f.name.clone(),
        num_params: f.num_params,
        num_regs: f.num_regs,
        pre: vec![0; total],
        fname_of: vec![self_fid; total],
        orig_start: block_start.clone(),
        pc_of_src: (0..total as u32).collect(),
        ops,
        block_start,
        block_of,
    }
}

/// Lower one non-terminator instruction. `(bi, ip)` are the instruction's
/// *source* coordinates; calls and `setjmp`s embed the coordinates of the
/// following instruction as their resume point, which stays valid under
/// every later pass because those ops are never moved relative to the
/// source coordinate space.
pub(super) fn lower_inst(module: &Module, inst: &Inst, bi: u32, ip: u32) -> DOp {
    match inst {
        Inst::Const { dst, value } => DOp::Const {
            dst: dst.0,
            value: *value,
        },
        Inst::Mov { dst, src } => DOp::Mov {
            dst: dst.0,
            src: *src,
        },
        Inst::Bin { op, dst, lhs, rhs } => DOp::Bin {
            op: *op,
            dst: dst.0,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Cmp {
            pred,
            dst,
            lhs,
            rhs,
        } => DOp::Cmp {
            pred: *pred,
            dst: dst.0,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Select {
            dst,
            cond,
            if_true,
            if_false,
        } => DOp::Select {
            dst: dst.0,
            cond: *cond,
            if_true: *if_true,
            if_false: *if_false,
        },
        Inst::Load { dst, addr, width } => DOp::Load {
            dst: dst.0,
            addr: *addr,
            bytes: width.bytes(),
        },
        Inst::Store { addr, value, width } => DOp::Store {
            addr: *addr,
            value: *value,
            bytes: width.bytes(),
        },
        Inst::AddrOf { dst, global } => DOp::AddrOf {
            dst: dst.0,
            global: *global,
        },
        Inst::Alloca { dst, size } => DOp::Alloca {
            dst: dst.0,
            size: *size,
            rounded: u64::from(*size).div_ceil(16) * 16,
        },
        Inst::Call { dst, callee, args } => lower_call(module, *dst, callee, args, bi, ip),
    }
}

pub(super) fn lower_call(
    module: &Module,
    dst: Option<fir::Reg>,
    callee: &str,
    args: &[Operand],
    bi: u32,
    ip: u32,
) -> DOp {
    let arg_or = |i: usize, default: i64| args.get(i).copied().unwrap_or(Operand::Imm(default));
    match callee {
        "__cov_edge" => DOp::CovEdge { id: arg_or(0, 0) },
        "setjmp" => DOp::Setjmp {
            dst,
            buf: arg_or(0, 0),
            ret_block: bi,
            ret_ip: ip + 1,
        },
        "longjmp" => DOp::Longjmp {
            buf: arg_or(0, 0),
            val: arg_or(1, 1),
        },
        _ => {
            if let Some(fid) = module.function_id(callee) {
                DOp::CallFn {
                    dst,
                    callee: fid,
                    args: args.into(),
                    ret_block: bi,
                    ret_ip: ip + 1,
                }
            } else if let Some(host) = hostcalls::resolve(callee) {
                DOp::CallHost {
                    dst,
                    host,
                    args: args.into(),
                }
            } else {
                DOp::CallUnknown {
                    name: callee.into(),
                }
            }
        }
    }
}

/// Lower a terminator, mapping block targets through `target` (flat pcs
/// for the plain stream, block indices inside the optimizer's IR).
pub(super) fn lower_term(term: &Terminator, target: impl Fn(BlockId) -> u32) -> DOp {
    match term {
        Terminator::Ret(v) => DOp::Ret(*v),
        Terminator::Br(b) => DOp::Br(target(*b)),
        Terminator::CondBr {
            cond,
            if_true,
            if_false,
        } => DOp::CondBr {
            cond: *cond,
            if_true: target(*if_true),
            if_false: target(*if_false),
        },
        Terminator::Switch {
            value,
            cases,
            default,
        } => DOp::Switch {
            value: *value,
            cases: cases.iter().map(|(v, b)| (*v, target(*b))).collect(),
            default: target(*default),
        },
        Terminator::Unreachable => DOp::Unreachable,
    }
}
