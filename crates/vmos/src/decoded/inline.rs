//! Phase B of the decode-time pass stack: inlining small leaf callees
//! into their call sites.
//!
//! An inlined call keeps the reference engine's *complete* observable
//! behavior without pushing a frame: [`DOp::InlineEnter`] performs the
//! depth check, the 2-cycle call overhead, the zeroing of the callee
//! register window and the parameter copy; [`DOp::InlineRet`] restores the
//! stack pointer and delivers the return value for 1 instruction, exactly
//! like the `Ret` it replaces. The callee's registers live at
//! `base..base+nregs` of the caller's *extended* register file, where
//! `base` is the caller's **source** register count — source operands
//! always index below `base`, so the windows can never collide, and every
//! inlined site of a caller reuses the same scratch window (calls never
//! overlap in time within one frame).
//!
//! Eligibility is strict: the callee must be a leaf (no `CallFn`, no
//! `setjmp`/`longjmp` — hostcalls are fine, they never touch frames),
//! small (live size after phase A ≤ [`INLINE_MAX_OPS`]), and have a
//! modest register file. Callee bodies are snapshotted *before* any
//! inlining happens, so inlining never cascades. Crash and hostcall sites
//! inside the spliced body keep the **callee's** function name and block
//! — the same report the reference engine produces from its own frame.

use std::collections::{HashMap, HashSet};

use fir::{BlockId, Module, Operand};

use super::opt::{FuncIr, Kind, OBlock, Slot};
use super::{DOp, OptStats};

/// Largest callee (live ops, post phase A) considered for inlining.
const INLINE_MAX_OPS: usize = 24;
/// Largest callee register file considered for inlining.
const INLINE_MAX_REGS: u32 = 96;
/// Per-caller growth budget (live ops added by splicing).
const INLINE_CALLER_GROWTH: usize = 512;

/// Inline eligible callees into every caller, hot (loop-resident) call
/// sites first until the per-caller growth budget runs out.
pub(super) fn inline_all(module: &Module, irs: &mut [FuncIr], stats: &mut OptStats) {
    let snapshots: HashMap<u32, FuncIr> = irs
        .iter()
        .enumerate()
        .filter(|(_, ir)| {
            ir.leaf
                && !ir.has_setjmp
                && ir.live_size() <= INLINE_MAX_OPS
                && ir.num_regs <= INLINE_MAX_REGS
        })
        .map(|(i, ir)| (i as u32, ir.clone()))
        .collect();
    if snapshots.is_empty() {
        return;
    }

    let mut inlined_callees: HashSet<u32> = HashSet::new();
    for (ci, ir) in irs.iter_mut().enumerate() {
        let hot_src = fir::cfg::loop_blocks(&module.functions[ci]);
        let mut hotness: Vec<bool> = (0..ir.blocks.len() as u32)
            .map(|b| hot_src.contains(&BlockId(b)))
            .collect();
        // The scratch window base: the caller's *source* register count.
        // (`ir.num_regs` may already have grown from earlier splices.)
        let base = module.functions[ci].num_regs;
        let mut budget = INLINE_CALLER_GROWTH;
        for hot_pass in [true, false] {
            let mut bi = 0;
            while bi < ir.blocks.len() {
                if hot_pass && !hotness[bi] {
                    bi += 1;
                    continue;
                }
                for si in 0..ir.blocks[bi].slots.len() {
                    let slot = &ir.blocks[bi].slots[si];
                    if slot.kind != Kind::Live {
                        continue;
                    }
                    let DOp::CallFn { callee, .. } = &slot.op else {
                        continue;
                    };
                    let Some(cs) = snapshots.get(&callee.0) else {
                        continue;
                    };
                    if cs.live_size() > budget {
                        continue;
                    }
                    budget -= cs.live_size();
                    inlined_callees.insert(callee.0);
                    stats.inline_sites += 1;
                    splice(ir, &mut hotness, bi, si, cs, base);
                    // Everything after the call moved to the continuation
                    // block (appended; scanned later in this same walk).
                    break;
                }
                bi += 1;
            }
        }
    }
    stats.inlined_callees += inlined_callees.len() as u64;
}

/// Splice callee snapshot `cs` into caller `ir` at the live `CallFn` slot
/// `(bi, si)`: the block is split at the call, the call slot becomes an
/// [`DOp::InlineEnter`], the tail becomes the continuation block, and the
/// callee's blocks are appended with registers shifted by `base` and
/// `Ret` rewritten to [`DOp::InlineRet`].
fn splice(ir: &mut FuncIr, hotness: &mut Vec<bool>, bi: usize, si: usize, cs: &FuncIr, base: u32) {
    let nregs = cs.num_regs;
    let sp_slot = base + nregs;
    ir.num_regs = ir.num_regs.max(sp_slot + 1);
    let hot = hotness[bi];

    let cont_idx = ir.blocks.len() as u32;
    let callee_off = cont_idx + 1;

    let tail = ir.blocks[bi].slots.split_off(si + 1);
    let call = ir.blocks[bi].slots.pop().expect("call slot");
    let DOp::CallFn {
        dst,
        callee,
        args,
        ..
    } = call.op
    else {
        unreachable!("splice target must be a CallFn");
    };
    // The reference copies `argv.iter().take(num_params)` — trim now.
    let args: Box<[Operand]> = args
        .iter()
        .copied()
        .take(cs.num_params as usize)
        .collect();
    ir.blocks[bi].slots.push(Slot {
        op: DOp::InlineEnter {
            callee,
            args,
            base,
            nregs,
            sp_slot,
            entry: callee_off,
        },
        kind: Kind::Live,
        site_fn: call.site_fn,
        site_block: call.site_block,
        src: call.src,
    });

    // Continuation: the split-off tail. Source coordinates ride along, so
    // the post-call resume coordinate maps to its first live op.
    ir.blocks.push(OBlock { slots: tail });
    hotness.push(hot);

    for cb in &cs.blocks {
        let slots = cb
            .slots
            .iter()
            .map(|s| {
                let mut op = s.op.clone();
                op.for_each_use_mut(|o| {
                    if let Operand::Reg(r) = o {
                        *o = Operand::Reg(fir::Reg(r.0 + base));
                    }
                });
                if let Some(d) = op.def_reg() {
                    op.set_def_reg(d + base);
                }
                op.retarget(|t| t + callee_off);
                if let DOp::Ret(val) = op {
                    op = DOp::InlineRet {
                        val,
                        dst: dst.map(|r| r.0),
                        sp_slot,
                        resume: cont_idx,
                    };
                }
                Slot {
                    op,
                    kind: s.kind,
                    site_fn: s.site_fn,
                    site_block: s.site_block,
                    src: None,
                }
            })
            .collect();
        ir.blocks.push(OBlock { slots });
        hotness.push(hot);
    }
}
