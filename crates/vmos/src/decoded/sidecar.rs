//! Sidecar persistence for [`DecodedImage`]: the decoded-image half of the
//! checkpoint story.
//!
//! Campaign snapshots store FIR, so historically every resume paid a full
//! re-lower (the eager warm-up in PR 5 only moved the cost ahead of
//! replay). This module serializes the *decoded* image to a sidecar file
//! next to the snapshots — `decoded-{key:016x}.img`, keyed by the full
//! decode-cache key ([`DecodedImage::cache_key`]: module fingerprint ⊕
//! optimizer version/flags/skip-list discriminant) — so a resume, or a
//! service restoring a thousand campaigns of one target, deserializes the
//! op streams instead of re-running the lowering and optimizer stack.
//!
//! The sidecar is strictly a **cache**: a missing, truncated, bit-flipped,
//! or wrong-configuration file makes [`load`] return `None` and the caller
//! re-lowers from the module. It can therefore never affect campaign
//! observables — only how much decode work a warm-up pays. For the same
//! reason sidecar I/O deliberately stays *outside* the `aflrs::storage`
//! fault plane: it must not consume deterministic fault-plan op numbers.
//!
//! Framing: `b"CXDI"` magic, format version, cache key, then a
//! length-prefixed payload sealed with FNV-1a — same corruption posture as
//! the checkpoint files (decode errors, never panics; trailing garbage is
//! rejected).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use fir::{BinOp, CmpPred, FunctionId, GlobalId, Operand};

use super::{ChainComp, ChainOp, ChainTail, DFunc, DOp, DecodedImage, OptStats};
use crate::hostcalls::{HostFn, HostId};
use crate::wire::{fnv1a, Reader, WireError, Writer};

/// Magic prefix of a sidecar file.
const MAGIC: &[u8; 4] = b"CXDI";

/// Bump on any layout change; readers reject other versions (and fall
/// back to lowering — the sidecar is append-only in spirit but cheap to
/// regenerate, so no migration machinery).
pub const SIDECAR_VERSION: u32 = 1;

/// `decoded-{key:016x}.img` inside `dir`.
pub fn sidecar_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("decoded-{key:016x}.img"))
}

/// Serialize `img` into `dir` under its current cache key, crash-safely
/// (tmp → fsync → rename). Returns `Ok(false)` when the file already
/// existed (another campaign of the same target won the race), `Ok(true)`
/// when this call wrote it.
///
/// # Errors
/// Propagates I/O failures; callers treat them as "no sidecar", never as
/// fatal.
pub fn save(dir: &Path, img: &DecodedImage) -> io::Result<bool> {
    let key = DecodedImage::cache_key(img.fingerprint);
    let path = sidecar_path(dir, key);
    if path.exists() {
        return Ok(false);
    }
    let bytes = seal(img, key);
    fs::create_dir_all(dir)?;
    let tmp = dir.join(format!("decoded-{key:016x}.img.tmp"));
    fs::write(&tmp, &bytes)?;
    let f = fs::File::open(&tmp)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, &path)?;
    super::note(|c| c.sidecar_saves += 1);
    Ok(true)
}

/// Load the sidecar image for `key` from `dir`, or `None` when there is no
/// usable one (absent, unreadable, corrupt, version or key mismatch).
/// Callers still validate the decoded fingerprint against their module.
pub fn load(dir: &Path, key: u64) -> Option<Arc<DecodedImage>> {
    let bytes = fs::read(sidecar_path(dir, key)).ok()?;
    open(&bytes, key).ok().map(Arc::new)
}

fn seal(img: &DecodedImage, key: u64) -> Vec<u8> {
    let mut payload = Writer::new();
    encode_image(img, &mut payload);
    let payload = payload.into_bytes();
    let mut w = Writer::new();
    w.put_bytes(&MAGIC[..]);
    w.put_u32(SIDECAR_VERSION);
    w.put_u64(key);
    w.put_u64(fnv1a(&payload));
    w.put_bytes(&payload);
    w.into_bytes()
}

fn open(bytes: &[u8], want_key: u64) -> Result<DecodedImage, WireError> {
    let mut r = Reader::new(bytes);
    if r.get_bytes()? != MAGIC {
        return Err(WireError::Malformed("sidecar magic"));
    }
    if r.get_u32()? != SIDECAR_VERSION {
        return Err(WireError::Malformed("sidecar version"));
    }
    if r.get_u64()? != want_key {
        return Err(WireError::Malformed("sidecar cache key"));
    }
    let digest = r.get_u64()?;
    let payload = r.get_bytes()?;
    if !r.is_empty() {
        return Err(WireError::Malformed("sidecar trailing bytes"));
    }
    if fnv1a(&payload) != digest {
        return Err(WireError::Malformed("sidecar checksum"));
    }
    let mut r = Reader::new(&payload);
    let img = decode_image(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::Malformed("sidecar payload trailing bytes"));
    }
    Ok(img)
}

// ---------------------------------------------------------------------------
// Image / function / stats codecs
// ---------------------------------------------------------------------------

fn encode_image(img: &DecodedImage, w: &mut Writer) {
    w.put_u64(img.fingerprint);
    encode_stats(&img.stats, w);
    w.put_usize(img.funcs.len());
    for f in &img.funcs {
        encode_func(f, w);
    }
    match &img.opt_funcs {
        None => w.put_bool(false),
        Some(fs) => {
            w.put_bool(true);
            w.put_usize(fs.len());
            for f in fs {
                encode_func(f, w);
            }
        }
    }
}

fn decode_image(r: &mut Reader<'_>) -> Result<DecodedImage, WireError> {
    let fingerprint = r.get_u64()?;
    let stats = decode_stats(r)?;
    let n = bounded_count(r)?;
    let mut funcs = Vec::with_capacity(n);
    for _ in 0..n {
        funcs.push(decode_func(r)?);
    }
    let opt_funcs = if r.get_bool()? {
        let n = bounded_count(r)?;
        let mut fs = Vec::with_capacity(n);
        for _ in 0..n {
            fs.push(decode_func(r)?);
        }
        Some(fs)
    } else {
        None
    };
    Ok(DecodedImage {
        funcs,
        opt_funcs,
        fingerprint,
        stats,
    })
}

fn encode_stats(s: &OptStats, w: &mut Writer) {
    w.put_u32(s.version);
    for v in [
        s.fused_cov_cmp_br,
        s.fused_cmp_br,
        s.fused_bin_br,
        s.fused_mov_br,
        s.fused_store_br,
        s.fused_bin_load,
        s.fused_load_bin,
        s.chains,
        s.chain_comps,
        s.switch_tables,
        s.br_chains_folded,
        s.blocks_merged,
        s.insts_eliminated,
        s.movs_coalesced,
        s.operands_resolved,
        s.cov_edges_resolved,
        s.inline_sites,
        s.inlined_callees,
        s.decode_micros,
    ] {
        w.put_u64(v);
    }
}

fn decode_stats(r: &mut Reader<'_>) -> Result<OptStats, WireError> {
    Ok(OptStats {
        version: r.get_u32()?,
        fused_cov_cmp_br: r.get_u64()?,
        fused_cmp_br: r.get_u64()?,
        fused_bin_br: r.get_u64()?,
        fused_mov_br: r.get_u64()?,
        fused_store_br: r.get_u64()?,
        fused_bin_load: r.get_u64()?,
        fused_load_bin: r.get_u64()?,
        chains: r.get_u64()?,
        chain_comps: r.get_u64()?,
        switch_tables: r.get_u64()?,
        br_chains_folded: r.get_u64()?,
        blocks_merged: r.get_u64()?,
        insts_eliminated: r.get_u64()?,
        movs_coalesced: r.get_u64()?,
        operands_resolved: r.get_u64()?,
        cov_edges_resolved: r.get_u64()?,
        inline_sites: r.get_u64()?,
        inlined_callees: r.get_u64()?,
        decode_micros: r.get_u64()?,
    })
}

fn encode_func(f: &DFunc, w: &mut Writer) {
    w.put_str(&f.name);
    w.put_u32(f.num_params);
    w.put_u32(f.num_regs);
    w.put_usize(f.ops.len());
    for op in &f.ops {
        encode_op(op, w);
    }
    put_u16s(w, &f.pre);
    put_u32s(w, &f.block_of);
    put_u32s(w, &f.fname_of);
    put_u32s(w, &f.block_start);
    put_u32s(w, &f.orig_start);
    put_u32s(w, &f.pc_of_src);
}

fn decode_func(r: &mut Reader<'_>) -> Result<DFunc, WireError> {
    let name = r.get_str()?;
    let num_params = r.get_u32()?;
    let num_regs = r.get_u32()?;
    let n = bounded_count(r)?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(decode_op(r)?);
    }
    Ok(DFunc {
        name,
        num_params,
        num_regs,
        ops,
        pre: get_u16s(r)?,
        block_of: get_u32s(r)?,
        fname_of: get_u32s(r)?,
        block_start: get_u32s(r)?,
        orig_start: get_u32s(r)?,
        pc_of_src: get_u32s(r)?,
    })
}

// ---------------------------------------------------------------------------
// Small-value helpers
// ---------------------------------------------------------------------------

/// Read a count of variable-size records, bounded by the bytes that remain
/// (every record is at least one byte) so a corrupt prefix cannot trigger
/// a huge allocation.
fn bounded_count(r: &mut Reader<'_>) -> Result<usize, WireError> {
    let n = r.get_count()?;
    if n > r.remaining() {
        return Err(WireError::Truncated);
    }
    Ok(n)
}

fn put_u16s(w: &mut Writer, v: &[u16]) {
    w.put_usize(v.len());
    for &x in v {
        w.put_u16(x);
    }
}

fn get_u16s(r: &mut Reader<'_>) -> Result<Vec<u16>, WireError> {
    let n = r.get_count()?;
    if n > r.remaining() / 2 {
        return Err(WireError::Truncated);
    }
    (0..n).map(|_| r.get_u16()).collect()
}

fn put_u32s(w: &mut Writer, v: &[u32]) {
    w.put_usize(v.len());
    for &x in v {
        w.put_u32(x);
    }
}

fn get_u32s(r: &mut Reader<'_>) -> Result<Vec<u32>, WireError> {
    let n = r.get_count()?;
    if n > r.remaining() / 4 {
        return Err(WireError::Truncated);
    }
    (0..n).map(|_| r.get_u32()).collect()
}

fn put_operand(w: &mut Writer, o: &Operand) {
    match o {
        Operand::Reg(r) => {
            w.put_u8(0);
            w.put_u32(r.0);
        }
        Operand::Imm(v) => {
            w.put_u8(1);
            w.put_i64(*v);
        }
    }
}

fn get_operand(r: &mut Reader<'_>) -> Result<Operand, WireError> {
    Ok(match r.get_u8()? {
        0 => Operand::Reg(fir::Reg(r.get_u32()?)),
        1 => Operand::Imm(r.get_i64()?),
        _ => return Err(WireError::Malformed("operand tag")),
    })
}

fn put_operands(w: &mut Writer, os: &[Operand]) {
    w.put_usize(os.len());
    for o in os {
        put_operand(w, o);
    }
}

fn get_operands(r: &mut Reader<'_>) -> Result<Box<[Operand]>, WireError> {
    let n = bounded_count(r)?;
    (0..n).map(|_| get_operand(r)).collect()
}

fn put_opt_reg(w: &mut Writer, v: Option<fir::Reg>) {
    match v {
        None => w.put_bool(false),
        Some(reg) => {
            w.put_bool(true);
            w.put_u32(reg.0);
        }
    }
}

fn get_opt_reg(r: &mut Reader<'_>) -> Result<Option<fir::Reg>, WireError> {
    Ok(if r.get_bool()? {
        Some(fir::Reg(r.get_u32()?))
    } else {
        None
    })
}

fn bin_op_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::UDiv => 3,
        BinOp::SDiv => 4,
        BinOp::URem => 5,
        BinOp::SRem => 6,
        BinOp::And => 7,
        BinOp::Or => 8,
        BinOp::Xor => 9,
        BinOp::Shl => 10,
        BinOp::LShr => 11,
        BinOp::AShr => 12,
    }
}

fn bin_op_from(tag: u8) -> Result<BinOp, WireError> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::UDiv,
        4 => BinOp::SDiv,
        5 => BinOp::URem,
        6 => BinOp::SRem,
        7 => BinOp::And,
        8 => BinOp::Or,
        9 => BinOp::Xor,
        10 => BinOp::Shl,
        11 => BinOp::LShr,
        12 => BinOp::AShr,
        _ => return Err(WireError::Malformed("binop tag")),
    })
}

fn cmp_pred_tag(p: CmpPred) -> u8 {
    match p {
        CmpPred::Eq => 0,
        CmpPred::Ne => 1,
        CmpPred::ULt => 2,
        CmpPred::ULe => 3,
        CmpPred::UGt => 4,
        CmpPred::UGe => 5,
        CmpPred::SLt => 6,
        CmpPred::SLe => 7,
        CmpPred::SGt => 8,
        CmpPred::SGe => 9,
    }
}

fn cmp_pred_from(tag: u8) -> Result<CmpPred, WireError> {
    Ok(match tag {
        0 => CmpPred::Eq,
        1 => CmpPred::Ne,
        2 => CmpPred::ULt,
        3 => CmpPred::ULe,
        4 => CmpPred::UGt,
        5 => CmpPred::UGe,
        6 => CmpPred::SLt,
        7 => CmpPred::SLe,
        8 => CmpPred::SGt,
        9 => CmpPred::SGe,
        _ => return Err(WireError::Malformed("cmp pred tag")),
    })
}

fn host_fn_tag(f: HostFn) -> u8 {
    match f {
        HostFn::Malloc => 0,
        HostFn::Calloc => 1,
        HostFn::Realloc => 2,
        HostFn::Free => 3,
        HostFn::Memcpy => 4,
        HostFn::Memset => 5,
        HostFn::Memcmp => 6,
        HostFn::Strlen => 7,
        HostFn::Strcmp => 8,
        HostFn::Fopen => 9,
        HostFn::Fclose => 10,
        HostFn::Fread => 11,
        HostFn::Fgetc => 12,
        HostFn::Fseek => 13,
        HostFn::Ftell => 14,
        HostFn::Feof => 15,
        HostFn::Fsize => 16,
        HostFn::Exit => 17,
        HostFn::ExitHook => 18,
        HostFn::Abort => 19,
        HostFn::Getpid => 20,
        HostFn::Rand => 21,
        HostFn::Puts => 22,
        HostFn::Putchar => 23,
        HostFn::PrintInt => 24,
    }
}

fn host_fn_from(tag: u8) -> Result<HostFn, WireError> {
    Ok(match tag {
        0 => HostFn::Malloc,
        1 => HostFn::Calloc,
        2 => HostFn::Realloc,
        3 => HostFn::Free,
        4 => HostFn::Memcpy,
        5 => HostFn::Memset,
        6 => HostFn::Memcmp,
        7 => HostFn::Strlen,
        8 => HostFn::Strcmp,
        9 => HostFn::Fopen,
        10 => HostFn::Fclose,
        11 => HostFn::Fread,
        12 => HostFn::Fgetc,
        13 => HostFn::Fseek,
        14 => HostFn::Ftell,
        15 => HostFn::Feof,
        16 => HostFn::Fsize,
        17 => HostFn::Exit,
        18 => HostFn::ExitHook,
        19 => HostFn::Abort,
        20 => HostFn::Getpid,
        21 => HostFn::Rand,
        22 => HostFn::Puts,
        23 => HostFn::Putchar,
        24 => HostFn::PrintInt,
        _ => return Err(WireError::Malformed("host fn tag")),
    })
}

// ---------------------------------------------------------------------------
// DOp codec
// ---------------------------------------------------------------------------

fn encode_op(op: &DOp, w: &mut Writer) {
    match op {
        DOp::Const { dst, value } => {
            w.put_u8(0);
            w.put_u32(*dst);
            w.put_i64(*value);
        }
        DOp::Mov { dst, src } => {
            w.put_u8(1);
            w.put_u32(*dst);
            put_operand(w, src);
        }
        DOp::Bin { op, dst, lhs, rhs } => {
            w.put_u8(2);
            w.put_u8(bin_op_tag(*op));
            w.put_u32(*dst);
            put_operand(w, lhs);
            put_operand(w, rhs);
        }
        DOp::Cmp {
            pred,
            dst,
            lhs,
            rhs,
        } => {
            w.put_u8(3);
            w.put_u8(cmp_pred_tag(*pred));
            w.put_u32(*dst);
            put_operand(w, lhs);
            put_operand(w, rhs);
        }
        DOp::Select {
            dst,
            cond,
            if_true,
            if_false,
        } => {
            w.put_u8(4);
            w.put_u32(*dst);
            put_operand(w, cond);
            put_operand(w, if_true);
            put_operand(w, if_false);
        }
        DOp::Load { dst, addr, bytes } => {
            w.put_u8(5);
            w.put_u32(*dst);
            put_operand(w, addr);
            w.put_u64(*bytes);
        }
        DOp::Store { addr, value, bytes } => {
            w.put_u8(6);
            put_operand(w, addr);
            put_operand(w, value);
            w.put_u64(*bytes);
        }
        DOp::AddrOf { dst, global } => {
            w.put_u8(7);
            w.put_u32(*dst);
            w.put_u32(global.0);
        }
        DOp::Alloca { dst, size, rounded } => {
            w.put_u8(8);
            w.put_u32(*dst);
            w.put_u32(*size);
            w.put_u64(*rounded);
        }
        DOp::CovEdge { id } => {
            w.put_u8(9);
            put_operand(w, id);
        }
        DOp::Setjmp {
            dst,
            buf,
            ret_block,
            ret_ip,
        } => {
            w.put_u8(10);
            put_opt_reg(w, *dst);
            put_operand(w, buf);
            w.put_u32(*ret_block);
            w.put_u32(*ret_ip);
        }
        DOp::Longjmp { buf, val } => {
            w.put_u8(11);
            put_operand(w, buf);
            put_operand(w, val);
        }
        DOp::CallFn {
            dst,
            callee,
            args,
            ret_block,
            ret_ip,
        } => {
            w.put_u8(12);
            put_opt_reg(w, *dst);
            w.put_u32(callee.0);
            put_operands(w, args);
            w.put_u32(*ret_block);
            w.put_u32(*ret_ip);
        }
        DOp::CallHost { dst, host, args } => {
            w.put_u8(13);
            put_opt_reg(w, *dst);
            w.put_u8(host_fn_tag(host.fun));
            w.put_bool(host.hooked);
            put_operands(w, args);
        }
        DOp::CallUnknown { name } => {
            w.put_u8(14);
            w.put_str(name);
        }
        DOp::Ret(v) => {
            w.put_u8(15);
            match v {
                None => w.put_bool(false),
                Some(o) => {
                    w.put_bool(true);
                    put_operand(w, o);
                }
            }
        }
        DOp::Br(t) => {
            w.put_u8(16);
            w.put_u32(*t);
        }
        DOp::CondBr {
            cond,
            if_true,
            if_false,
        } => {
            w.put_u8(17);
            put_operand(w, cond);
            w.put_u32(*if_true);
            w.put_u32(*if_false);
        }
        DOp::Switch {
            value,
            cases,
            default,
        } => {
            w.put_u8(18);
            put_operand(w, value);
            w.put_usize(cases.len());
            for (v, t) in cases.iter() {
                w.put_i64(*v);
                w.put_u32(*t);
            }
            w.put_u32(*default);
        }
        DOp::Unreachable => w.put_u8(19),
        DOp::CovEdgeK { id } => {
            w.put_u8(20);
            w.put_u16(*id);
        }
        DOp::CovCmpBr {
            id,
            pred,
            dst,
            lhs,
            rhs,
            if_true,
            if_false,
        } => {
            w.put_u8(21);
            w.put_u16(*id);
            w.put_u8(cmp_pred_tag(*pred));
            w.put_u32(*dst);
            put_operand(w, lhs);
            put_operand(w, rhs);
            w.put_u32(*if_true);
            w.put_u32(*if_false);
        }
        DOp::CmpBr {
            pred,
            dst,
            lhs,
            rhs,
            if_true,
            if_false,
        } => {
            w.put_u8(22);
            w.put_u8(cmp_pred_tag(*pred));
            w.put_u32(*dst);
            put_operand(w, lhs);
            put_operand(w, rhs);
            w.put_u32(*if_true);
            w.put_u32(*if_false);
        }
        DOp::BinBr {
            op,
            dst,
            lhs,
            rhs,
            target,
        } => {
            w.put_u8(23);
            w.put_u8(bin_op_tag(*op));
            w.put_u32(*dst);
            put_operand(w, lhs);
            put_operand(w, rhs);
            w.put_u32(*target);
        }
        DOp::MovBr { dst, src, target } => {
            w.put_u8(24);
            w.put_u32(*dst);
            put_operand(w, src);
            w.put_u32(*target);
        }
        DOp::StoreBr {
            addr,
            value,
            bytes,
            target,
        } => {
            w.put_u8(25);
            put_operand(w, addr);
            put_operand(w, value);
            w.put_u64(*bytes);
            w.put_u32(*target);
        }
        DOp::BinLoad {
            op,
            bdst,
            lhs,
            rhs,
            ldst,
            addr,
            bytes,
        } => {
            w.put_u8(26);
            w.put_u8(bin_op_tag(*op));
            w.put_u32(*bdst);
            put_operand(w, lhs);
            put_operand(w, rhs);
            w.put_u32(*ldst);
            put_operand(w, addr);
            w.put_u64(*bytes);
        }
        DOp::LoadBin {
            ldst,
            addr,
            bytes,
            op,
            bdst,
            lhs,
            rhs,
        } => {
            w.put_u8(27);
            w.put_u32(*ldst);
            put_operand(w, addr);
            w.put_u64(*bytes);
            w.put_u8(bin_op_tag(*op));
            w.put_u32(*bdst);
            put_operand(w, lhs);
            put_operand(w, rhs);
        }
        DOp::BrChain { target, skipped } => {
            w.put_u8(28);
            w.put_u32(*target);
            w.put_u16(*skipped);
        }
        DOp::SwitchTable {
            value,
            base,
            table,
            default,
        } => {
            w.put_u8(29);
            put_operand(w, value);
            w.put_i64(*base);
            put_u32s(w, table);
            w.put_u32(*default);
        }
        DOp::InlineEnter {
            callee,
            args,
            base,
            nregs,
            sp_slot,
            entry,
        } => {
            w.put_u8(30);
            w.put_u32(callee.0);
            put_operands(w, args);
            w.put_u32(*base);
            w.put_u32(*nregs);
            w.put_u32(*sp_slot);
            w.put_u32(*entry);
        }
        DOp::InlineRet {
            val,
            dst,
            sp_slot,
            resume,
        } => {
            w.put_u8(31);
            match val {
                None => w.put_bool(false),
                Some(o) => {
                    w.put_bool(true);
                    put_operand(w, o);
                }
            }
            match dst {
                None => w.put_bool(false),
                Some(d) => {
                    w.put_bool(true);
                    w.put_u32(*d);
                }
            }
            w.put_u32(*sp_slot);
            w.put_u32(*resume);
        }
        DOp::Chain { comps, tail } => {
            w.put_u8(32);
            w.put_usize(comps.len());
            for c in comps.iter() {
                w.put_u16(c.pre);
                encode_chain_op(&c.op, w);
            }
            match tail {
                ChainTail::Next => w.put_u8(0),
                ChainTail::Br { pre, target } => {
                    w.put_u8(1);
                    w.put_u16(*pre);
                    w.put_u32(*target);
                }
                ChainTail::CondBr {
                    pre,
                    cond,
                    if_true,
                    if_false,
                } => {
                    w.put_u8(2);
                    w.put_u16(*pre);
                    put_operand(w, cond);
                    w.put_u32(*if_true);
                    w.put_u32(*if_false);
                }
            }
        }
    }
}

fn decode_op(r: &mut Reader<'_>) -> Result<DOp, WireError> {
    Ok(match r.get_u8()? {
        0 => DOp::Const {
            dst: r.get_u32()?,
            value: r.get_i64()?,
        },
        1 => DOp::Mov {
            dst: r.get_u32()?,
            src: get_operand(r)?,
        },
        2 => DOp::Bin {
            op: bin_op_from(r.get_u8()?)?,
            dst: r.get_u32()?,
            lhs: get_operand(r)?,
            rhs: get_operand(r)?,
        },
        3 => DOp::Cmp {
            pred: cmp_pred_from(r.get_u8()?)?,
            dst: r.get_u32()?,
            lhs: get_operand(r)?,
            rhs: get_operand(r)?,
        },
        4 => DOp::Select {
            dst: r.get_u32()?,
            cond: get_operand(r)?,
            if_true: get_operand(r)?,
            if_false: get_operand(r)?,
        },
        5 => DOp::Load {
            dst: r.get_u32()?,
            addr: get_operand(r)?,
            bytes: r.get_u64()?,
        },
        6 => DOp::Store {
            addr: get_operand(r)?,
            value: get_operand(r)?,
            bytes: r.get_u64()?,
        },
        7 => DOp::AddrOf {
            dst: r.get_u32()?,
            global: GlobalId(r.get_u32()?),
        },
        8 => DOp::Alloca {
            dst: r.get_u32()?,
            size: r.get_u32()?,
            rounded: r.get_u64()?,
        },
        9 => DOp::CovEdge {
            id: get_operand(r)?,
        },
        10 => DOp::Setjmp {
            dst: get_opt_reg(r)?,
            buf: get_operand(r)?,
            ret_block: r.get_u32()?,
            ret_ip: r.get_u32()?,
        },
        11 => DOp::Longjmp {
            buf: get_operand(r)?,
            val: get_operand(r)?,
        },
        12 => DOp::CallFn {
            dst: get_opt_reg(r)?,
            callee: FunctionId(r.get_u32()?),
            args: get_operands(r)?,
            ret_block: r.get_u32()?,
            ret_ip: r.get_u32()?,
        },
        13 => DOp::CallHost {
            dst: get_opt_reg(r)?,
            host: HostId {
                fun: host_fn_from(r.get_u8()?)?,
                hooked: r.get_bool()?,
            },
            args: get_operands(r)?,
        },
        14 => DOp::CallUnknown {
            name: r.get_str()?.into_boxed_str(),
        },
        15 => DOp::Ret(if r.get_bool()? {
            Some(get_operand(r)?)
        } else {
            None
        }),
        16 => DOp::Br(r.get_u32()?),
        17 => DOp::CondBr {
            cond: get_operand(r)?,
            if_true: r.get_u32()?,
            if_false: r.get_u32()?,
        },
        18 => {
            let value = get_operand(r)?;
            let n = bounded_count(r)?;
            let mut cases = Vec::with_capacity(n);
            for _ in 0..n {
                cases.push((r.get_i64()?, r.get_u32()?));
            }
            DOp::Switch {
                value,
                cases: cases.into_boxed_slice(),
                default: r.get_u32()?,
            }
        }
        19 => DOp::Unreachable,
        20 => DOp::CovEdgeK { id: r.get_u16()? },
        21 => DOp::CovCmpBr {
            id: r.get_u16()?,
            pred: cmp_pred_from(r.get_u8()?)?,
            dst: r.get_u32()?,
            lhs: get_operand(r)?,
            rhs: get_operand(r)?,
            if_true: r.get_u32()?,
            if_false: r.get_u32()?,
        },
        22 => DOp::CmpBr {
            pred: cmp_pred_from(r.get_u8()?)?,
            dst: r.get_u32()?,
            lhs: get_operand(r)?,
            rhs: get_operand(r)?,
            if_true: r.get_u32()?,
            if_false: r.get_u32()?,
        },
        23 => DOp::BinBr {
            op: bin_op_from(r.get_u8()?)?,
            dst: r.get_u32()?,
            lhs: get_operand(r)?,
            rhs: get_operand(r)?,
            target: r.get_u32()?,
        },
        24 => DOp::MovBr {
            dst: r.get_u32()?,
            src: get_operand(r)?,
            target: r.get_u32()?,
        },
        25 => DOp::StoreBr {
            addr: get_operand(r)?,
            value: get_operand(r)?,
            bytes: r.get_u64()?,
            target: r.get_u32()?,
        },
        26 => DOp::BinLoad {
            op: bin_op_from(r.get_u8()?)?,
            bdst: r.get_u32()?,
            lhs: get_operand(r)?,
            rhs: get_operand(r)?,
            ldst: r.get_u32()?,
            addr: get_operand(r)?,
            bytes: r.get_u64()?,
        },
        27 => DOp::LoadBin {
            ldst: r.get_u32()?,
            addr: get_operand(r)?,
            bytes: r.get_u64()?,
            op: bin_op_from(r.get_u8()?)?,
            bdst: r.get_u32()?,
            lhs: get_operand(r)?,
            rhs: get_operand(r)?,
        },
        28 => DOp::BrChain {
            target: r.get_u32()?,
            skipped: r.get_u16()?,
        },
        29 => DOp::SwitchTable {
            value: get_operand(r)?,
            base: r.get_i64()?,
            table: get_u32s(r)?.into_boxed_slice(),
            default: r.get_u32()?,
        },
        30 => DOp::InlineEnter {
            callee: FunctionId(r.get_u32()?),
            args: get_operands(r)?,
            base: r.get_u32()?,
            nregs: r.get_u32()?,
            sp_slot: r.get_u32()?,
            entry: r.get_u32()?,
        },
        31 => DOp::InlineRet {
            val: if r.get_bool()? {
                Some(get_operand(r)?)
            } else {
                None
            },
            dst: if r.get_bool()? {
                Some(r.get_u32()?)
            } else {
                None
            },
            sp_slot: r.get_u32()?,
            resume: r.get_u32()?,
        },
        32 => {
            let n = bounded_count(r)?;
            let mut comps = Vec::with_capacity(n);
            for _ in 0..n {
                comps.push(ChainComp {
                    pre: r.get_u16()?,
                    op: decode_chain_op(r)?,
                });
            }
            let tail = match r.get_u8()? {
                0 => ChainTail::Next,
                1 => ChainTail::Br {
                    pre: r.get_u16()?,
                    target: r.get_u32()?,
                },
                2 => ChainTail::CondBr {
                    pre: r.get_u16()?,
                    cond: get_operand(r)?,
                    if_true: r.get_u32()?,
                    if_false: r.get_u32()?,
                },
                _ => return Err(WireError::Malformed("chain tail tag")),
            };
            DOp::Chain {
                comps: comps.into_boxed_slice(),
                tail,
            }
        }
        _ => return Err(WireError::Malformed("dop tag")),
    })
}

fn encode_chain_op(op: &ChainOp, w: &mut Writer) {
    match op {
        ChainOp::Const { dst, value } => {
            w.put_u8(0);
            w.put_u32(*dst);
            w.put_i64(*value);
        }
        ChainOp::Mov { dst, src } => {
            w.put_u8(1);
            w.put_u32(*dst);
            put_operand(w, src);
        }
        ChainOp::Bin { op, dst, lhs, rhs } => {
            w.put_u8(2);
            w.put_u8(bin_op_tag(*op));
            w.put_u32(*dst);
            put_operand(w, lhs);
            put_operand(w, rhs);
        }
        ChainOp::Cmp {
            pred,
            dst,
            lhs,
            rhs,
        } => {
            w.put_u8(3);
            w.put_u8(cmp_pred_tag(*pred));
            w.put_u32(*dst);
            put_operand(w, lhs);
            put_operand(w, rhs);
        }
        ChainOp::Select {
            dst,
            cond,
            if_true,
            if_false,
        } => {
            w.put_u8(4);
            w.put_u32(*dst);
            put_operand(w, cond);
            put_operand(w, if_true);
            put_operand(w, if_false);
        }
        ChainOp::Cov { id } => {
            w.put_u8(5);
            w.put_u16(*id);
        }
        ChainOp::Load { dst, addr, bytes } => {
            w.put_u8(6);
            w.put_u32(*dst);
            put_operand(w, addr);
            w.put_u64(*bytes);
        }
        ChainOp::Store { addr, value, bytes } => {
            w.put_u8(7);
            put_operand(w, addr);
            put_operand(w, value);
            w.put_u64(*bytes);
        }
        ChainOp::AddrOf { dst, global } => {
            w.put_u8(8);
            w.put_u32(*dst);
            w.put_u32(global.0);
        }
    }
}

fn decode_chain_op(r: &mut Reader<'_>) -> Result<ChainOp, WireError> {
    Ok(match r.get_u8()? {
        0 => ChainOp::Const {
            dst: r.get_u32()?,
            value: r.get_i64()?,
        },
        1 => ChainOp::Mov {
            dst: r.get_u32()?,
            src: get_operand(r)?,
        },
        2 => ChainOp::Bin {
            op: bin_op_from(r.get_u8()?)?,
            dst: r.get_u32()?,
            lhs: get_operand(r)?,
            rhs: get_operand(r)?,
        },
        3 => ChainOp::Cmp {
            pred: cmp_pred_from(r.get_u8()?)?,
            dst: r.get_u32()?,
            lhs: get_operand(r)?,
            rhs: get_operand(r)?,
        },
        4 => ChainOp::Select {
            dst: r.get_u32()?,
            cond: get_operand(r)?,
            if_true: get_operand(r)?,
            if_false: get_operand(r)?,
        },
        5 => ChainOp::Cov { id: r.get_u16()? },
        6 => ChainOp::Load {
            dst: r.get_u32()?,
            addr: get_operand(r)?,
            bytes: r.get_u64()?,
        },
        7 => ChainOp::Store {
            addr: get_operand(r)?,
            value: get_operand(r)?,
            bytes: r.get_u64()?,
        },
        8 => ChainOp::AddrOf {
            dst: r.get_u32()?,
            global: GlobalId(r.get_u32()?),
        },
        _ => return Err(WireError::Malformed("chain op tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::ModuleBuilder;
    use fir::Module;

    fn sample_module() -> Module {
        let mut mb = ModuleBuilder::new("sidecar-sample");
        let mut f = mb.function_with_params("sum", 1);
        let n = f.param(0);
        let acc = f.const_i64(0);
        let i = f.const_i64(0);
        let hdr = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        f.br(hdr);
        f.switch_to(hdr);
        f.call_void("__cov_edge", vec![Operand::Imm(7)]);
        let c = f.cmp(CmpPred::SLt, Operand::Reg(i), Operand::Reg(n));
        f.cond_br(Operand::Reg(c), body, done);
        f.switch_to(body);
        let acc2 = f.add(Operand::Reg(acc), Operand::Reg(i));
        f.mov_to(acc, Operand::Reg(acc2));
        let i2 = f.add(Operand::Reg(i), Operand::Imm(1));
        f.mov_to(i, Operand::Reg(i2));
        f.br(hdr);
        f.switch_to(done);
        f.call_void("puts", vec![Operand::Imm(0)]);
        f.ret(Some(Operand::Reg(acc)));
        f.finish();
        mb.finish()
    }

    #[test]
    fn roundtrip_is_exact() {
        let m = sample_module();
        let img = DecodedImage::new(&m);
        let key = DecodedImage::cache_key(img.fingerprint);
        let bytes = seal(&img, key);
        let back = open(&bytes, key).expect("roundtrip");
        assert_eq!(img, back);
    }

    #[test]
    fn save_and_load_through_files() {
        let dir = std::env::temp_dir().join(format!("cx-sidecar-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let m = sample_module();
        let img = DecodedImage::new(&m);
        let key = DecodedImage::cache_key(img.fingerprint);
        assert!(save(&dir, &img).expect("save"));
        // Second save is a no-op: the file already exists.
        assert!(!save(&dir, &img).expect("save again"));
        let back = load(&dir, key).expect("load");
        assert_eq!(img, *back);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_rejected_not_panicked() {
        let m = sample_module();
        let img = DecodedImage::new(&m);
        let key = DecodedImage::cache_key(img.fingerprint);
        let good = seal(&img, key);
        // Wrong key.
        assert!(open(&good, key ^ 1).is_err());
        // Truncations at every prefix length must error, never panic.
        for cut in 0..good.len().min(64) {
            assert!(open(&good[..cut], key).is_err());
        }
        // Single-bit flips anywhere must error (checksum or structure).
        for i in (0..good.len()).step_by(97) {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(open(&bad, key).is_err() || bad == good);
        }
    }
}
