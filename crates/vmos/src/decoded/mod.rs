//! Pre-decoded FIR bytecode: the host-throughput execution engine.
//!
//! The reference interpreter ([`crate::interp::Machine::run`]) re-walks the
//! `fir` AST on every instruction: nested `functions[f].blocks[b].insts[i]`
//! indexing, callee resolution by *string name* at every call site, and
//! hostcall dispatch through a string match. None of that work depends on
//! run-time state, so this module does it **once per module**. It produces
//! two op streams per function:
//!
//! * a **plain** stream ([`lower`]) — strictly 1:1 with the source, one
//!   [`DOp`] per instruction plus one per terminator, with block targets
//!   pre-resolved to flat pcs and callees pre-bound;
//! * an **optimized** stream ([`opt`], [`fuse`], [`inline`]) — the same
//!   program after a decode-time pass stack: operand pre-resolution
//!   (`addr_of`/const forwarding), dead decoded-temp elimination,
//!   superinstruction fusion (`cmp`+branch, `bin`+load, load+`bin`,
//!   counter-update+branch, coverage-probe+compare+branch), block
//!   linearization with fallthrough merging, and small leaf-callee
//!   inlining.
//!
//! **The equivalence contract.** Both streams perform the *same sequence
//! of simulated state transitions* as the reference interpreter: identical
//! cycle charges, instruction counts (fuel), coverage-map updates, crash
//! sites, and `setjmp`/checkpoint coordinates. Fused ops charge each
//! component exactly where the reference would, with an inline fuel check
//! between components; eliminated host-only work (dead register writes,
//! folded jumps) is bulk-charged through per-pc `pre` counters, which is
//! observationally identical because eliminated ops have no effect beyond
//! the charge and frame registers are never observable at an
//! `OutOfFuel`/crash boundary (frames are truncated by `Machine::call`).
//! `tests/engine_equivalence.rs` enforces all of this end-to-end, three
//! ways (reference / decoded / decoded+opt).
//!
//! Images are immutable and cached per module fingerprint **and optimizer
//! discriminant** (version + compiled-in feature flags — see
//! [`DecodedImage::cached`]), so toggling optimization can never serve a
//! stale image and every executor in a campaign — including respawned and
//! restored processes — shares one decode.

mod fuse;
mod inline;
mod lower;
mod opt;
pub mod sidecar;

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use fir::{BinOp, CmpPred, FunctionId, GlobalId, Module, Operand};
use serde::{Deserialize, Serialize};

use crate::hostcalls::HostId;

/// One pre-decoded operation. Branch operands are flat pcs into the owning
/// function's `ops`; register/immediate operands keep the (Copy) `fir`
/// representation since reading them is already a single array index.
///
/// The variants after [`DOp::Unreachable`] only appear in optimized
/// streams: pre-resolved forms and fused superinstructions. Each fused op
/// executes its components in source order, charging one instruction per
/// component with an inline fuel check between components, so the fuel
/// boundary and every observable effect land exactly where the reference
/// interpreter puts them.
#[derive(Debug, Clone, PartialEq)]
pub enum DOp {
    /// `dst = value`
    Const { dst: u32, value: i64 },
    /// `dst = src`
    Mov { dst: u32, src: Operand },
    /// `dst = op lhs, rhs`
    Bin {
        op: BinOp,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = cmp pred lhs, rhs`
    Cmp {
        pred: CmpPred,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = cond ? if_true : if_false`
    Select {
        dst: u32,
        cond: Operand,
        if_true: Operand,
        if_false: Operand,
    },
    /// `dst = load bytes, [addr]` — width pre-resolved to a byte count.
    Load { dst: u32, addr: Operand, bytes: u64 },
    /// `store bytes value, [addr]`
    Store {
        addr: Operand,
        value: Operand,
        bytes: u64,
    },
    /// `dst = &global`
    AddrOf { dst: u32, global: GlobalId },
    /// `dst = alloca size` with the 16-byte rounding pre-computed
    /// (`size` is kept for the crash message).
    Alloca { dst: u32, size: u32, rounded: u64 },
    /// `__cov_edge(id)` — the coverage probe intrinsic.
    CovEdge { id: Operand },
    /// `setjmp(buf)`. `ret_block`/`ret_ip` are the *source* coordinates of
    /// the next instruction — what the `JmpCtx` must record regardless of
    /// how this stream is laid out.
    Setjmp {
        dst: Option<fir::Reg>,
        buf: Operand,
        ret_block: u32,
        ret_ip: u32,
    },
    /// `longjmp(buf, val)` — missing `val` defaults to `Imm(1)` exactly
    /// like the reference's `argv.get(1).unwrap_or(&1)`.
    Longjmp { buf: Operand, val: Operand },
    /// Call to a module-defined function, pre-bound by id. `ret_block`/
    /// `ret_ip` are the source coordinates the caller frame resumes at.
    CallFn {
        dst: Option<fir::Reg>,
        callee: FunctionId,
        args: Box<[Operand]>,
        ret_block: u32,
        ret_ip: u32,
    },
    /// Call to the simulated libc, pre-bound to a [`HostId`].
    CallHost {
        dst: Option<fir::Reg>,
        host: HostId,
        args: Box<[Operand]>,
    },
    /// Call to a name nothing resolves — executing it is the
    /// unresolved-symbol crash.
    CallUnknown { name: Box<str> },
    /// Return, optionally with a value.
    Ret(Option<Operand>),
    /// Unconditional jump to a flat pc.
    Br(u32),
    /// Conditional jump on `cond != 0`.
    CondBr {
        cond: Operand,
        if_true: u32,
        if_false: u32,
    },
    /// Multi-way dispatch; first matching case wins, like the reference.
    Switch {
        value: Operand,
        cases: Box<[(i64, u32)]>,
        default: u32,
    },
    /// Executing this is an `UnreachableExecuted` crash.
    Unreachable,

    // ----- optimized streams only -----
    /// `__cov_edge` with the edge id pre-resolved to a constant.
    CovEdgeK { id: u16 },
    /// Fused coverage probe + compare + conditional branch — the loop
    /// header superinstruction. Charges 3 instructions.
    CovCmpBr {
        id: u16,
        pred: CmpPred,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
        if_true: u32,
        if_false: u32,
    },
    /// Fused compare + conditional branch on the compared value.
    /// Charges 2 instructions.
    CmpBr {
        pred: CmpPred,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
        if_true: u32,
        if_false: u32,
    },
    /// Fused binop + unconditional branch (loop latch counter update).
    /// Charges 2 instructions.
    BinBr {
        op: BinOp,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
        target: u32,
    },
    /// Fused move + unconditional branch. Charges 2 instructions.
    MovBr { dst: u32, src: Operand, target: u32 },
    /// Fused store + unconditional branch. Charges 2 instructions.
    StoreBr {
        addr: Operand,
        value: Operand,
        bytes: u64,
        target: u32,
    },
    /// Fused address-compute + load. Charges 2 instructions.
    BinLoad {
        op: BinOp,
        bdst: u32,
        lhs: Operand,
        rhs: Operand,
        ldst: u32,
        addr: Operand,
        bytes: u64,
    },
    /// Fused load + binop over the loaded value. Charges 2 instructions.
    LoadBin {
        ldst: u32,
        addr: Operand,
        bytes: u64,
        op: BinOp,
        bdst: u32,
        lhs: Operand,
        rhs: Operand,
    },
    /// Unconditional jump with `skipped` folded jump-only blocks
    /// bulk-charged (1 + `skipped` instructions total).
    BrChain { target: u32, skipped: u16 },
    /// Dense jump-table form of `Switch`: `pc = table[value - base]`, out
    /// of range → `default`. First-match-wins duplicates were resolved at
    /// decode time.
    SwitchTable {
        value: Operand,
        base: i64,
        table: Box<[u32]>,
        default: u32,
    },
    /// Inlined-call prologue: the decode-time splice of a small leaf
    /// callee. Performs exactly what the reference `Call` does (depth
    /// check, +2 cycles, zeroed callee registers at `base..base+nregs`,
    /// parameter copy) except that the callee's registers live in the
    /// *caller's* extended register file and the stack pointer is saved in
    /// scratch slot `sp_slot` instead of a new frame.
    InlineEnter {
        callee: FunctionId,
        args: Box<[Operand]>,
        base: u32,
        nregs: u32,
        sp_slot: u32,
        entry: u32,
    },
    /// Inlined-call epilogue: restores the stack pointer, writes the
    /// return value to the caller's destination register, and jumps to the
    /// continuation. Charges 1 instruction, exactly like the `Ret` it
    /// replaces.
    InlineRet {
        val: Option<Operand>,
        dst: Option<u32>,
        sp_slot: u32,
        resume: u32,
    },
    /// Fused straight-line run: a whole sequence of simple ops executed
    /// under **one** dispatch, in a tight loop over an out-of-line
    /// component array. Each component charges 1 instruction behind its
    /// own fuel check (plus its `pre` worth of absorbed eliminated
    /// instructions), so every coverage update, memory effect, and crash
    /// lands at exactly the fuel position the reference interpreter gives
    /// it. Every crash-capable component (`Bin`/`Load`/`Store`) shares the
    /// head's `(site_fn, site_block)`, so `crash_here!` at the head pc
    /// reports the right source location; pure register and coverage
    /// components may cross merge seams because their site is never
    /// observable.
    Chain {
        comps: Box<[ChainComp]>,
        tail: ChainTail,
    },
}

/// One component of a [`DOp::Chain`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChainComp {
    /// Eliminated-instruction charge owed immediately before this
    /// component executes (interior dead temps / folded branches the
    /// chain absorbed). Always 0 on the first component — the head's
    /// charge lives in the stream-level [`DFunc::pre`] array.
    pub pre: u16,
    pub op: ChainOp,
}

/// The simple op forms a [`DOp::Chain`] may carry: everything that stays
/// within one frame and one pc run — register arithmetic, coverage
/// probes, and straight-line memory traffic. Control flow, calls, and
/// `setjmp`/`longjmp` machinery never chain.
#[derive(Debug, Clone, PartialEq)]
pub enum ChainOp {
    /// `dst = value`
    Const { dst: u32, value: i64 },
    /// `dst = src`
    Mov { dst: u32, src: Operand },
    /// `dst = op lhs, rhs` (may crash: division traps).
    Bin {
        op: BinOp,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = cmp pred lhs, rhs`
    Cmp {
        pred: CmpPred,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = cond ? if_true : if_false`
    Select {
        dst: u32,
        cond: Operand,
        if_true: Operand,
        if_false: Operand,
    },
    /// Coverage probe with a pre-resolved edge id.
    Cov { id: u16 },
    /// `dst = load bytes, [addr]` (may crash: invalid memory).
    Load { dst: u32, addr: Operand, bytes: u64 },
    /// `store bytes value, [addr]` (may crash: invalid memory).
    Store {
        addr: Operand,
        value: Operand,
        bytes: u64,
    },
    /// `dst = &global`
    AddrOf { dst: u32, global: GlobalId },
}

/// How a [`DOp::Chain`] hands control back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChainTail {
    /// Fall through to `pc + 1`.
    Next,
    /// Absorbed unconditional branch: bulk-charge `pre` eliminated
    /// instructions, charge 1 for the branch itself, jump to `target`.
    Br { pre: u16, target: u32 },
    /// Absorbed conditional branch (from a `CondBr`, or the branch half of
    /// a decomposed `CmpBr`/`CovCmpBr`, whose compare became the last
    /// component): bulk-charge `pre`, charge 1, branch on `cond != 0`.
    CondBr {
        pre: u16,
        cond: Operand,
        if_true: u32,
        if_false: u32,
    },
}

impl DOp {
    /// Rewrite every flat-pc (or, inside the optimizer, block-index)
    /// branch-target field through `f`. This is the single source of truth
    /// for "which `u32`s are control-flow targets" — the optimizer uses it
    /// to remap block indices when splicing, and emission uses it to
    /// resolve block indices to final pcs.
    pub(crate) fn retarget(&mut self, mut f: impl FnMut(u32) -> u32) {
        match self {
            DOp::Br(t)
            | DOp::BinBr { target: t, .. }
            | DOp::MovBr { target: t, .. }
            | DOp::StoreBr { target: t, .. }
            | DOp::BrChain { target: t, .. }
            | DOp::InlineEnter { entry: t, .. }
            | DOp::InlineRet { resume: t, .. } => *t = f(*t),
            DOp::CondBr {
                if_true, if_false, ..
            }
            | DOp::CmpBr {
                if_true, if_false, ..
            }
            | DOp::CovCmpBr {
                if_true, if_false, ..
            } => {
                *if_true = f(*if_true);
                *if_false = f(*if_false);
            }
            DOp::Switch { cases, default, .. } => {
                for (_, t) in cases.iter_mut() {
                    *t = f(*t);
                }
                *default = f(*default);
            }
            DOp::SwitchTable { table, default, .. } => {
                for t in table.iter_mut() {
                    *t = f(*t);
                }
                *default = f(*default);
            }
            DOp::Chain { tail, .. } => match tail {
                ChainTail::Next => {}
                ChainTail::Br { target, .. } => *target = f(*target),
                ChainTail::CondBr {
                    if_true, if_false, ..
                } => {
                    *if_true = f(*if_true);
                    *if_false = f(*if_false);
                }
            },
            _ => {}
        }
    }

    /// The branch targets this op can transfer control to (same fields as
    /// [`DOp::retarget`]).
    pub(crate) fn targets(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut probe = self.clone();
        probe.retarget(|t| {
            out.push(t);
            t
        });
        out
    }

    /// Apply `f` to every *read* operand (not destinations). Used by the
    /// operand pre-resolution pass.
    pub(crate) fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            DOp::Mov { src, .. } | DOp::MovBr { src, .. } => f(src),
            DOp::Bin { lhs, rhs, .. }
            | DOp::Cmp { lhs, rhs, .. }
            | DOp::CmpBr { lhs, rhs, .. }
            | DOp::CovCmpBr { lhs, rhs, .. }
            | DOp::BinBr { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            DOp::BinLoad { lhs, rhs, addr, .. } | DOp::LoadBin { lhs, rhs, addr, .. } => {
                f(lhs);
                f(rhs);
                f(addr);
            }
            DOp::Select {
                cond,
                if_true,
                if_false,
                ..
            } => {
                f(cond);
                f(if_true);
                f(if_false);
            }
            DOp::Load { addr, .. } => f(addr),
            DOp::Store { addr, value, .. } | DOp::StoreBr { addr, value, .. } => {
                f(addr);
                f(value);
            }
            DOp::CovEdge { id } => f(id),
            DOp::Setjmp { buf, .. } => f(buf),
            DOp::Longjmp { buf, val } => {
                f(buf);
                f(val);
            }
            DOp::CallFn { args, .. }
            | DOp::CallHost { args, .. }
            | DOp::InlineEnter { args, .. } => {
                for a in args.iter_mut() {
                    f(a);
                }
            }
            DOp::Ret(Some(v)) | DOp::InlineRet { val: Some(v), .. } => f(v),
            DOp::CondBr { cond, .. } => f(cond),
            DOp::Switch { value, .. } | DOp::SwitchTable { value, .. } => f(value),
            DOp::Chain { comps, tail } => {
                if let ChainTail::CondBr { cond, .. } = tail {
                    f(cond);
                }
                for c in comps.iter_mut() {
                    match &mut c.op {
                        ChainOp::Mov { src, .. } => f(src),
                        ChainOp::Bin { lhs, rhs, .. } | ChainOp::Cmp { lhs, rhs, .. } => {
                            f(lhs);
                            f(rhs);
                        }
                        ChainOp::Select {
                            cond,
                            if_true,
                            if_false,
                            ..
                        } => {
                            f(cond);
                            f(if_true);
                            f(if_false);
                        }
                        ChainOp::Load { addr, .. } => f(addr),
                        ChainOp::Store { addr, value, .. } => {
                            f(addr);
                            f(value);
                        }
                        ChainOp::Const { .. } | ChainOp::Cov { .. } | ChainOp::AddrOf { .. } => {}
                    }
                }
            }
            DOp::Const { .. }
            | DOp::AddrOf { .. }
            | DOp::Alloca { .. }
            | DOp::CallUnknown { .. }
            | DOp::Ret(None)
            | DOp::InlineRet { val: None, .. }
            | DOp::Br(_)
            | DOp::BrChain { .. }
            | DOp::CovEdgeK { .. }
            | DOp::Unreachable => {}
        }
    }

    /// Registers this op *reads* (same coverage as
    /// [`DOp::for_each_use_mut`], collected).
    pub(crate) fn use_regs(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut probe = self.clone();
        probe.for_each_use_mut(|o| {
            if let Operand::Reg(r) = o {
                out.push(r.0);
            }
        });
        out
    }

    /// The plain register this op defines, when that write is its *only*
    /// register effect (used by coalescing/DCE; call-style dsts are
    /// handled separately).
    pub(crate) fn def_reg(&self) -> Option<u32> {
        match self {
            DOp::Const { dst, .. }
            | DOp::Mov { dst, .. }
            | DOp::Bin { dst, .. }
            | DOp::Cmp { dst, .. }
            | DOp::Select { dst, .. }
            | DOp::Load { dst, .. }
            | DOp::AddrOf { dst, .. }
            | DOp::Alloca { dst, .. } => Some(*dst),
            DOp::CallFn { dst, .. } | DOp::CallHost { dst, .. } => dst.map(|r| r.0),
            _ => None,
        }
    }

    /// Redirect this op's destination register (coalescing). Must only be
    /// called on ops for which [`DOp::def_reg`] returns `Some`.
    pub(crate) fn set_def_reg(&mut self, r: u32) {
        match self {
            DOp::Const { dst, .. }
            | DOp::Mov { dst, .. }
            | DOp::Bin { dst, .. }
            | DOp::Cmp { dst, .. }
            | DOp::Select { dst, .. }
            | DOp::Load { dst, .. }
            | DOp::AddrOf { dst, .. }
            | DOp::Alloca { dst, .. } => *dst = r,
            DOp::CallFn { dst, .. } | DOp::CallHost { dst, .. } => *dst = Some(fir::Reg(r)),
            _ => unreachable!("set_def_reg on a non-defining op"),
        }
    }
}

/// One lowered function (plain or optimized stream — same representation,
/// one execution loop).
#[derive(Debug, Clone, PartialEq)]
pub struct DFunc {
    /// Symbol name (crash sites and hostcall sites report it).
    pub name: String,
    /// Number of parameters.
    pub num_params: u32,
    /// Register file size. Optimized streams may extend this beyond the
    /// source function's file for inline scratch space (host-only state;
    /// the decoded loop grows the entry frame on the way in).
    pub num_regs: u32,
    /// Flat op stream.
    pub ops: Vec<DOp>,
    /// `pre[pc]` = number of *eliminated* source instructions charged
    /// immediately before the op at `pc` executes (0 almost everywhere;
    /// identically 0 in plain streams).
    pub pre: Vec<u16>,
    /// `block_of[pc]` = source block of the op at `pc` (crash sites;
    /// for inlined ops this is the **callee's** block).
    pub block_of: Vec<u32>,
    /// `fname_of[pc]` = `FunctionId` index whose *name* sites at `pc`
    /// report (differs from the owning function only inside inlined
    /// regions).
    pub fname_of: Vec<u32>,
    /// `block_start[b]` = flat pc a branch to source block `b` lands on.
    pub block_start: Vec<u32>,
    /// `orig_start[b]` = base of block `b` in *source* flat coordinates
    /// (`insts.len() + 1` per block) — the index space of `pc_of_src`.
    pub orig_start: Vec<u32>,
    /// Source-coordinate → pc map: `pc_of_src[orig_start[b] + ip]` is the
    /// pc to resume at for reference coordinates `(b, ip)`. Identity for
    /// plain streams.
    pub pc_of_src: Vec<u32>,
}

impl DFunc {
    /// Convert a flat pc back to the reference engine's `(block, ip)`
    /// coordinates. Only meaningful for **plain** (1:1) streams, where the
    /// op layout matches the source layout.
    #[inline]
    pub fn coords(&self, pc: u32) -> (u32, usize) {
        let block = self.block_of[pc as usize];
        (block, (pc - self.block_start[block as usize]) as usize)
    }

    /// Convert reference `(block, ip)` coordinates to a flat pc. Only
    /// meaningful for plain streams; optimized streams resume through
    /// [`DFunc::src_pc`].
    #[inline]
    pub fn flat_pc(&self, block: u32, ip: usize) -> u32 {
        self.block_start[block as usize] + ip as u32
    }

    /// The pc at which execution of reference coordinates `(block, ip)`
    /// resumes in this stream. Valid for every resume point the engine can
    /// produce (function entry, post-call, post-`setjmp`); total over all
    /// source coordinates.
    #[inline]
    pub fn src_pc(&self, block: u32, ip: usize) -> u32 {
        self.pc_of_src[(self.orig_start[block as usize] + ip as u32) as usize]
    }
}

/// Decode-time optimization statistics for one module image, surfaced by
/// `exec_throughput` so pass regressions are visible next to throughput.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptStats {
    /// Optimizer version baked into the cache key.
    pub version: u32,
    /// Fused coverage-probe + compare + branch triples.
    pub fused_cov_cmp_br: u64,
    /// Fused compare + conditional-branch pairs.
    pub fused_cmp_br: u64,
    /// Fused binop + unconditional-branch pairs (loop latches).
    pub fused_bin_br: u64,
    /// Fused move + unconditional-branch pairs.
    pub fused_mov_br: u64,
    /// Fused store + unconditional-branch pairs.
    pub fused_store_br: u64,
    /// Fused address-compute + load pairs.
    pub fused_bin_load: u64,
    /// Fused load + binop pairs.
    pub fused_load_bin: u64,
    /// Fused straight-line chains (one dispatch each).
    pub chains: u64,
    /// Total ops absorbed into chains as components (incl. heads and
    /// absorbed tail branches).
    pub chain_comps: u64,
    /// `Switch` terminators converted to dense jump tables.
    pub switch_tables: u64,
    /// Jump-only blocks folded out of unconditional branch chains.
    pub br_chains_folded: u64,
    /// Blocks merged into their unique predecessor's pc range.
    pub blocks_merged: u64,
    /// Dead decoded temps eliminated (charges preserved via `pre`).
    pub insts_eliminated: u64,
    /// `mov` destinations coalesced into their defining op.
    pub movs_coalesced: u64,
    /// Operands rewritten to immediates (const/`addr_of` forwarding).
    pub operands_resolved: u64,
    /// Coverage probes with pre-resolved constant edge ids.
    pub cov_edges_resolved: u64,
    /// Call sites inlined at decode time.
    pub inline_sites: u64,
    /// Distinct leaf callees that were inlined somewhere.
    pub inlined_callees: u64,
    /// Wall-clock time of the whole decode (lower + optimize), in
    /// microseconds.
    pub decode_micros: u64,
}

impl OptStats {
    /// Total fused superinstructions across all kinds.
    pub fn fused_total(&self) -> u64 {
        self.fused_cov_cmp_br
            + self.fused_cmp_br
            + self.fused_bin_br
            + self.fused_mov_br
            + self.fused_store_br
            + self.fused_bin_load
            + self.fused_load_bin
            + self.chains
    }
}

/// A fully lowered module image, shared (behind `Arc`) by every executor
/// running the module.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedImage {
    /// Plain 1:1 lowered functions, indexed by [`FunctionId`]. This is the
    /// stream the escape hatches (`Campaign::decode_opt(false)`, the
    /// `no-fir-opt` feature) pin.
    pub funcs: Vec<DFunc>,
    /// Optimized streams, same indexing. `None` when the `no-fir-opt`
    /// feature compiled the optimizer out.
    pub opt_funcs: Option<Vec<DFunc>>,
    /// Fingerprint of the module this image was lowered from.
    pub fingerprint: u64,
    /// What the optimizer did (all zeros when it didn't run).
    pub stats: OptStats,
}

/// Bump when a pass changes in any observable-layout way: the value is
/// folded into the image cache key, so stale images can never be served
/// across optimizer revisions.
pub const OPT_VERSION: u32 = 1;

/// Where a decoded-image warm-up got its image from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WarmSource {
    /// Already in the process-wide cache — nothing was paid.
    Cache,
    /// Deserialized from a sidecar file next to the snapshots — no
    /// re-lower; cost is O(file size).
    Sidecar,
    /// Nothing cached anywhere: this warm-up paid the full lower +
    /// optimize.
    Lowered,
}

impl WarmSource {
    /// Did the warm-up avoid re-lowering the module?
    pub fn was_warm(self) -> bool {
        !matches!(self, WarmSource::Lowered)
    }
}

/// Process-wide decode accounting: how many images were fully lowered,
/// served from the in-memory cache, or revived from sidecar files. The
/// service-restore correctness gate ("restoring 1000 campaigns of one
/// target decodes once") is asserted against these counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeCounters {
    /// Full decodes paid (lower + optimizer stack).
    pub lowered: u64,
    /// [`DecodedImage::cached`] / warm-up calls answered by the in-memory
    /// cache.
    pub cache_hits: u64,
    /// Images deserialized from a sidecar file.
    pub sidecar_loads: u64,
    /// Sidecar files written.
    pub sidecar_saves: u64,
}

fn counters() -> &'static Mutex<DecodeCounters> {
    static COUNTERS: OnceLock<Mutex<DecodeCounters>> = OnceLock::new();
    COUNTERS.get_or_init(|| Mutex::new(DecodeCounters::default()))
}

/// Snapshot the process-wide decode counters.
pub fn decode_counters() -> DecodeCounters {
    *counters().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Reset the process-wide decode counters to zero (bench/test hook).
pub fn reset_decode_counters() {
    *counters().lock().unwrap_or_else(PoisonError::into_inner) = DecodeCounters::default();
}

fn note(f: impl FnOnce(&mut DecodeCounters)) {
    f(&mut counters().lock().unwrap_or_else(PoisonError::into_inner));
}

impl DecodedImage {
    /// Lower every function of `module` and, unless compiled out, run the
    /// decode-time optimizer stack over it.
    pub fn new(module: &Module) -> Self {
        let started = std::time::Instant::now();
        let funcs: Vec<DFunc> = module
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| lower::lower(module, i as u32, f))
            .collect();
        let mut stats = OptStats {
            version: OPT_VERSION,
            ..OptStats::default()
        };
        let opt_funcs = if cfg!(feature = "no-fir-opt") {
            None
        } else {
            Some(opt::optimize_module(module, &mut stats))
        };
        stats.decode_micros = started.elapsed().as_micros() as u64;
        note(|c| c.lowered += 1);
        DecodedImage {
            funcs,
            opt_funcs,
            fingerprint: module.fingerprint(),
            stats,
        }
    }

    /// Does this image carry an optimized stream?
    pub fn has_opt(&self) -> bool {
        self.opt_funcs.is_some()
    }

    /// The discriminant mixed into the cache key: optimizer version, the
    /// compiled-in feature set that changes what `new` produces, **and**
    /// the runtime pass-skip list. `CLOSUREX_OPT_SKIP` is consulted
    /// per-decode by the optimizer, so two processes (or two points in
    /// time in one process) with different skip lists produce different
    /// images for the same module — the key must separate them or a
    /// resume after toggling the env would warm up against a stale image.
    /// Under `no-fir-opt` the optimizer never runs, the skip list cannot
    /// change the image, and it is deliberately left out of the key.
    fn opt_discriminant() -> u64 {
        let flags =
            u64::from(cfg!(feature = "no-fir-opt")) | u64::from(cfg!(feature = "slow-interp")) << 1;
        let mut d = (u64::from(OPT_VERSION) << 8 | flags).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if !cfg!(feature = "no-fir-opt") {
            let skip = std::env::var("CLOSUREX_OPT_SKIP").unwrap_or_default();
            if !skip.is_empty() {
                d ^= crate::wire::fnv1a(skip.as_bytes());
            }
        }
        d
    }

    /// The process-wide cache key for a module fingerprint: the
    /// fingerprint alone is **not** enough, because what an image contains
    /// depends on the optimizer version and flag set (the historical bug
    /// this fixes: toggling optimization could serve a stale image keyed
    /// only by fingerprint).
    pub fn cache_key(fingerprint: u64) -> u64 {
        fingerprint ^ Self::opt_discriminant()
    }

    /// Lower `module`, or return the image another executor already
    /// lowered for a structurally identical module. The cache is global
    /// and keyed by [`DecodedImage::cache_key`] — [`Module::fingerprint`]
    /// plus the optimizer version+flag discriminant — so a campaign's
    /// respawn / restore churn — and parallel bench trials over the same
    /// target — decode each module exactly once per process, and no
    /// configuration change can alias another configuration's image.
    pub fn cached(module: &Module) -> Arc<DecodedImage> {
        let mut map = Self::cache().lock().unwrap_or_else(PoisonError::into_inner);
        match map.entry(Self::cache_key(module.fingerprint())) {
            std::collections::hash_map::Entry::Occupied(e) => {
                note(|c| c.cache_hits += 1);
                Arc::clone(e.get())
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                Arc::clone(e.insert(Arc::new(DecodedImage::new(module))))
            }
        }
    }

    /// Is an image for `fingerprint` (under the current optimizer
    /// discriminant) already in the process-wide cache? Checkpoint resume
    /// uses this to report whether the decoded image was ready before
    /// replay began.
    pub fn cache_contains(fingerprint: u64) -> bool {
        Self::cache()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(&Self::cache_key(fingerprint))
    }

    /// Ensure `module`'s decoded image is in the process-wide cache,
    /// lowering it now if absent. Returns `true` when the image was
    /// already present (a warm hit) and `false` when this call paid for
    /// the lowering — resume paths call this eagerly so no campaign step
    /// ever re-lowers lazily.
    pub fn warm(module: &Module) -> bool {
        let hit = Self::cache_contains(module.fingerprint());
        if !hit {
            let _ = Self::cached(module);
        }
        hit
    }

    /// Like [`DecodedImage::warm`], but with a sidecar cache directory to
    /// try before paying a lowering: cache hit → sidecar deserialize →
    /// full lower, in that order. A sidecar that is missing, corrupt, or
    /// does not match the module falls through to lowering silently — the
    /// sidecar is a cache, never a source of truth.
    pub fn warm_with_sidecar(module: &Module, dir: Option<&std::path::Path>) -> WarmSource {
        let fp = module.fingerprint();
        if Self::cache_contains(fp) {
            note(|c| c.cache_hits += 1);
            return WarmSource::Cache;
        }
        if let Some(dir) = dir {
            if let Some(img) = sidecar::load(dir, Self::cache_key(fp)) {
                // An optimized image is only valid for an optimizing build
                // (and vice versa): opt-ness must disagree with `no-fir-opt`.
                if img.fingerprint == fp && img.has_opt() != cfg!(feature = "no-fir-opt") {
                    note(|c| c.sidecar_loads += 1);
                    Self::cache()
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .entry(Self::cache_key(fp))
                        .or_insert(img);
                    return WarmSource::Sidecar;
                }
            }
        }
        let _ = Self::cached(module);
        WarmSource::Lowered
    }

    /// Drop every image from the process-wide cache. Test/bench hook: lets
    /// one process simulate a server restart (`service_eval` restores N
    /// campaigns against a cold cache and asserts exactly one decode).
    pub fn cache_evict_all() {
        Self::cache()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    fn cache() -> &'static Mutex<HashMap<u64, Arc<DecodedImage>>> {
        static CACHE: OnceLock<Mutex<HashMap<u64, Arc<DecodedImage>>>> = OnceLock::new();
        CACHE.get_or_init(|| Mutex::new(HashMap::new()))
    }
}

#[cfg(test)]
mod tests;
