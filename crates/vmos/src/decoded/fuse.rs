//! Phase C of the decode-time pass stack: block merging, jump-chain
//! folding, hot-path linearization, op specialization, superinstruction
//! fusion, and final emission into a [`DFunc`].
//!
//! ## Charge accounting
//!
//! The emitted stream carries a `pre[pc]` counter: the number of
//! eliminated source instructions that execute (conceptually) *before*
//! the live op at `pc`. The interpreter bulk-charges `pre[pc]` at the top
//! of each dispatch, clamped so an `OutOfFuel` exec still reports
//! `insts == fuel` exactly. For this to be sound, two invariants must
//! hold and are maintained here:
//!
//! * **Ordering** — a *pair/triple* fused op may only combine strictly
//!   adjacent live slots. If an eliminated slot sat between two
//!   components, its charge would be bulk-applied before component 1 even
//!   though the reference engine executes it between the components, and
//!   a fuel boundary could then observe (e.g.) a coverage update on one
//!   engine but not the other. [`DOp::Chain`]s relax this safely: each
//!   component carries its own `pre` counter, charged at exactly the
//!   component's position, so interior eliminated slots are absorbed
//!   without reordering a single charge.
//! * **Entry** — every resume point (function entry, post-call, post-
//!   `setjmp`, branch targets) lands at the start of an eliminated run,
//!   never inside one, so the whole `pre` count is owed on arrival. This
//!   holds because eliminations never move across a call/`setjmp` (those
//!   ops are never eliminated or fused) and branch targets are always
//!   block starts.
//!
//! ## Placement
//!
//! A fused op occupies its *first* component's slot; later components
//! become [`Kind::Absorbed`] and their source coordinates map backward to
//! the fused pc. Absorbed coordinates are never resume targets: calls and
//! `setjmp`s never fuse, and fusion never crosses a block boundary.

use std::collections::HashSet;

use fir::Operand;

use super::opt::{FuncIr, Kind, OBlock};
use super::{ChainComp, ChainOp, ChainTail, DFunc, DOp, OptStats};

/// Largest value span a `Switch` may cover to become a `SwitchTable`.
const SWITCH_TABLE_MAX_SPAN: i128 = 512;
/// Minimum number of cases worth a table.
const SWITCH_TABLE_MIN_CASES: usize = 3;

/// Run the layout pipeline over one function IR and emit the final
/// optimized stream.
pub(super) fn finish(mut ir: FuncIr, stats: &mut OptStats) -> DFunc {
    let skip = std::env::var("CLOSUREX_OPT_SKIP").unwrap_or_default();
    let skip = |name: &str| skip.split(',').any(|s| s == name);
    if !skip("merge") {
        merge(&mut ir, stats);
    }
    if !skip("chains") {
        fold_chains(&mut ir, stats);
    }
    let layout = linearize(&ir);
    if !skip("specialize") {
        specialize(&mut ir, stats);
    }
    if !skip("fuse") {
        fuse_ops(&mut ir, stats);
    }
    if !skip("straight") {
        build_chains(&mut ir, stats);
    }
    emit(ir, &layout)
}

/// Index of the last live slot of a block, if any. Blocks emptied by
/// merging have none.
fn term_idx(b: &OBlock) -> Option<usize> {
    b.last_live()
}

/// Block targets of a block's terminator (empty for merged-away blocks).
fn term_targets(b: &OBlock) -> Vec<u32> {
    term_idx(b).map_or_else(Vec::new, |i| b.slots[i].op.targets())
}

/// Fallthrough merging: a block whose only predecessor reaches it through
/// an unconditional `Br` is spliced into that predecessor; the `Br` slot
/// becomes [`Kind::Elim`] in place. Because the merged block had exactly
/// one predecessor, every execution that reaches its slots passes through
/// the eliminated `Br`, so folding the branch charge into the next live
/// pc's `pre` is exact. Runs to a fixpoint so whole hot chains become one
/// straight-line block.
fn merge(ir: &mut FuncIr, stats: &mut OptStats) {
    loop {
        // Recompute predecessor counts each round (merging changes them).
        let mut preds = vec![0u32; ir.blocks.len()];
        for b in &ir.blocks {
            for t in term_targets(b) {
                preds[t as usize] += 1;
            }
        }
        let mut merged = None;
        for a in 0..ir.blocks.len() {
            let Some(ti) = term_idx(&ir.blocks[a]) else {
                continue;
            };
            let DOp::Br(t) = ir.blocks[a].slots[ti].op else {
                continue;
            };
            let t = t as usize;
            if t == a || t == 0 || preds[t] != 1 {
                continue;
            }
            merged = Some((a, ti, t));
            break;
        }
        let Some((a, ti, t)) = merged else {
            break;
        };
        ir.blocks[a].slots[ti].kind = Kind::Elim;
        let spliced = std::mem::take(&mut ir.blocks[t].slots);
        ir.blocks[a].slots.extend(spliced);
        stats.blocks_merged += 1;
    }
}

/// Is this block nothing but an unconditional `Br` (plus eliminated
/// slots)? Returns the target and the total instruction charge of passing
/// through it.
fn trivial_jump(b: &OBlock) -> Option<(u32, u32)> {
    let ti = term_idx(b)?;
    let DOp::Br(t) = b.slots[ti].op else {
        return None;
    };
    if b.slots
        .iter()
        .enumerate()
        .any(|(i, s)| s.kind == Kind::Live && i != ti)
    {
        return None;
    }
    let charge = b.slots.iter().filter(|s| s.kind != Kind::Absorbed).count() as u32;
    Some((t, charge))
}

/// Fold chains of jump-only blocks: a `Br` whose target is itself a
/// jump-only block becomes a [`DOp::BrChain`] straight to the end of the
/// chain, with `skipped` carrying the aggregate charge of every hop
/// (each hop's `Br` plus any eliminated slots it held). The interpreter
/// bulk-charges `skipped` after the chain op's own charge, clamped at the
/// fuel boundary. Multi-predecessor jump blocks — the ones merging cannot
/// touch — are exactly the ones this pass erases from the hot path.
fn fold_chains(ir: &mut FuncIr, stats: &mut OptStats) {
    for a in 0..ir.blocks.len() {
        let Some(ti) = term_idx(&ir.blocks[a]) else {
            continue;
        };
        let DOp::Br(first) = ir.blocks[a].slots[ti].op else {
            continue;
        };
        let mut seen = HashSet::from([a as u32, first]);
        let mut cur = first;
        let mut skipped: u32 = 0;
        let mut hops: u64 = 0;
        while let Some((next, charge)) = trivial_jump(&ir.blocks[cur as usize]) {
            // A cycle of jump-only blocks must keep charging per hop
            // (it can burn fuel forever); never fold into it.
            if !seen.insert(next) {
                break;
            }
            skipped += charge;
            hops += 1;
            cur = next;
        }
        if hops > 0 && skipped <= u32::from(u16::MAX) {
            ir.blocks[a].slots[ti].op = DOp::BrChain {
                target: cur,
                skipped: skipped as u16,
            };
            stats.br_chains_folded += hops;
        }
    }
}

/// Depth-first layout over live terminator edges: hot chains stay
/// contiguous (the first successor is laid out immediately after its
/// branch), merged-away and unreachable blocks are dropped. Purely a
/// cache-locality ordering — no charges change here.
fn linearize(ir: &FuncIr) -> Vec<u32> {
    let mut seen = HashSet::from([0u32]);
    let mut order = Vec::with_capacity(ir.blocks.len());
    let mut stack = vec![0u32];
    while let Some(b) = stack.pop() {
        order.push(b);
        let ts = term_targets(&ir.blocks[b as usize]);
        // Push in reverse so the first successor is visited next.
        for t in ts.into_iter().rev() {
            if seen.insert(t) {
                stack.push(t);
            }
        }
    }
    order
}

/// Specialize ops whose operands resolved to constants: `CovEdge` with an
/// immediate id becomes the unboxed `CovEdgeK`, and dense `Switch`es
/// become first-match-preserving jump tables.
fn specialize(ir: &mut FuncIr, stats: &mut OptStats) {
    for block in &mut ir.blocks {
        for slot in &mut block.slots {
            if slot.kind != Kind::Live {
                continue;
            }
            match &slot.op {
                DOp::CovEdge { id: Operand::Imm(v) } => {
                    // Same truncation as the reference hostcall path:
                    // the first argv value `as u16`.
                    slot.op = DOp::CovEdgeK { id: *v as u16 };
                    stats.cov_edges_resolved += 1;
                }
                DOp::Switch {
                    value,
                    cases,
                    default,
                } if cases.len() >= SWITCH_TABLE_MIN_CASES => {
                    let lo = cases.iter().map(|(v, _)| *v).min().expect("cases");
                    let hi = cases.iter().map(|(v, _)| *v).max().expect("cases");
                    let span = i128::from(hi) - i128::from(lo) + 1;
                    if span > SWITCH_TABLE_MAX_SPAN {
                        continue;
                    }
                    let mut table = vec![*default; span as usize];
                    let mut filled = vec![false; span as usize];
                    // First match wins, exactly like the linear scan.
                    for (v, t) in cases.iter() {
                        let i = (v - lo) as usize;
                        if !filled[i] {
                            table[i] = *t;
                            filled[i] = true;
                        }
                    }
                    slot.op = DOp::SwitchTable {
                        value: *value,
                        base: lo,
                        table: table.into_boxed_slice(),
                        default: *default,
                    };
                    stats.switch_tables += 1;
                }
                _ => {}
            }
        }
    }
}

/// Superinstruction fusion over strictly adjacent live slots. Greedy,
/// longest-pattern-first, left to right; consumed components become
/// [`Kind::Absorbed`]. Each fused op charges its components individually
/// at run time (one dispatch, component-exact fuel checks), so coverage
/// updates, register writes, and crash points land on the same
/// instruction boundary as the reference engine.
fn fuse_ops(ir: &mut FuncIr, stats: &mut OptStats) {
    for block in &mut ir.blocks {
        let n = block.slots.len();
        let mut i = 0;
        while i < n {
            if block.slots[i].kind != Kind::Live {
                i += 1;
                continue;
            }
            // Adjacency in *slot index* space, which is stricter than
            // "next live op": an Elim between components would reorder
            // its pre-charge relative to component effects. Components
            // must also share a crash site — the fused op reports its
            // head's `(site_fn, site_block)`, so fusing across a merge
            // seam would mis-attribute a crash in the second component.
            let site = |k: usize| (block.slots[k].site_fn, block.slots[k].site_block);
            let live2 = i + 1 < n && block.slots[i + 1].kind == Kind::Live && site(i + 1) == site(i);
            let live3 =
                live2 && i + 2 < n && block.slots[i + 2].kind == Kind::Live && site(i + 2) == site(i);

            // Triple: coverage probe + compare + branch — the MinC `while`
            // header. One dispatch for the three hottest ops in a loop.
            if live3 {
                if let (
                    DOp::CovEdgeK { id },
                    DOp::Cmp {
                        pred,
                        dst,
                        lhs,
                        rhs,
                    },
                    DOp::CondBr {
                        cond: Operand::Reg(c),
                        if_true,
                        if_false,
                    },
                ) = (
                    &block.slots[i].op,
                    &block.slots[i + 1].op,
                    &block.slots[i + 2].op,
                ) {
                    if c.0 == *dst {
                        block.slots[i].op = DOp::CovCmpBr {
                            id: *id,
                            pred: *pred,
                            dst: *dst,
                            lhs: *lhs,
                            rhs: *rhs,
                            if_true: *if_true,
                            if_false: *if_false,
                        };
                        block.slots[i + 1].kind = Kind::Absorbed;
                        block.slots[i + 2].kind = Kind::Absorbed;
                        stats.fused_cov_cmp_br += 1;
                        i += 3;
                        continue;
                    }
                }
            }

            if live2 {
                let fused = match (&block.slots[i].op, &block.slots[i + 1].op) {
                    (
                        DOp::Cmp {
                            pred,
                            dst,
                            lhs,
                            rhs,
                        },
                        DOp::CondBr {
                            cond: Operand::Reg(c),
                            if_true,
                            if_false,
                        },
                    ) if c.0 == *dst => {
                        stats.fused_cmp_br += 1;
                        Some(DOp::CmpBr {
                            pred: *pred,
                            dst: *dst,
                            lhs: *lhs,
                            rhs: *rhs,
                            if_true: *if_true,
                            if_false: *if_false,
                        })
                    }
                    (DOp::Bin { op, dst, lhs, rhs }, DOp::Br(t)) => {
                        stats.fused_bin_br += 1;
                        Some(DOp::BinBr {
                            op: *op,
                            dst: *dst,
                            lhs: *lhs,
                            rhs: *rhs,
                            target: *t,
                        })
                    }
                    (DOp::Mov { dst, src }, DOp::Br(t)) => {
                        stats.fused_mov_br += 1;
                        Some(DOp::MovBr {
                            dst: *dst,
                            src: *src,
                            target: *t,
                        })
                    }
                    (DOp::Store { addr, value, bytes }, DOp::Br(t)) => {
                        stats.fused_store_br += 1;
                        Some(DOp::StoreBr {
                            addr: *addr,
                            value: *value,
                            bytes: *bytes,
                            target: *t,
                        })
                    }
                    (
                        DOp::Bin { op, dst, lhs, rhs },
                        DOp::Load {
                            dst: ldst,
                            addr,
                            bytes,
                        },
                    ) => {
                        stats.fused_bin_load += 1;
                        Some(DOp::BinLoad {
                            op: *op,
                            bdst: *dst,
                            lhs: *lhs,
                            rhs: *rhs,
                            ldst: *ldst,
                            addr: *addr,
                            bytes: *bytes,
                        })
                    }
                    (
                        DOp::Load { dst, addr, bytes },
                        DOp::Bin {
                            op,
                            dst: bdst,
                            lhs,
                            rhs,
                        },
                    ) => {
                        stats.fused_load_bin += 1;
                        Some(DOp::LoadBin {
                            ldst: *dst,
                            addr: *addr,
                            bytes: *bytes,
                            op: *op,
                            bdst: *bdst,
                            lhs: *lhs,
                            rhs: *rhs,
                        })
                    }
                    _ => None,
                };
                if let Some(op) = fused {
                    block.slots[i].op = op;
                    block.slots[i + 1].kind = Kind::Absorbed;
                    i += 2;
                    continue;
                }
            }
            i += 1;
        }
    }
}

/// The chain-component form of a plain op, if it has one. Control flow,
/// calls, `setjmp`/`longjmp`, `Alloca` (stack-pointer motion feeds crash
/// details), and already-fused superinstructions never chain.
fn chain_op(op: &DOp) -> Option<ChainOp> {
    Some(match op {
        DOp::Const { dst, value } => ChainOp::Const {
            dst: *dst,
            value: *value,
        },
        DOp::Mov { dst, src } => ChainOp::Mov {
            dst: *dst,
            src: *src,
        },
        DOp::Bin { op, dst, lhs, rhs } => ChainOp::Bin {
            op: *op,
            dst: *dst,
            lhs: *lhs,
            rhs: *rhs,
        },
        DOp::Cmp {
            pred,
            dst,
            lhs,
            rhs,
        } => ChainOp::Cmp {
            pred: *pred,
            dst: *dst,
            lhs: *lhs,
            rhs: *rhs,
        },
        DOp::Select {
            dst,
            cond,
            if_true,
            if_false,
        } => ChainOp::Select {
            dst: *dst,
            cond: *cond,
            if_true: *if_true,
            if_false: *if_false,
        },
        DOp::CovEdgeK { id } => ChainOp::Cov { id: *id },
        DOp::Load { dst, addr, bytes } => ChainOp::Load {
            dst: *dst,
            addr: *addr,
            bytes: *bytes,
        },
        DOp::Store { addr, value, bytes } => ChainOp::Store {
            addr: *addr,
            value: *value,
            bytes: *bytes,
        },
        DOp::AddrOf { dst, global } => ChainOp::AddrOf {
            dst: *dst,
            global: *global,
        },
        _ => return None,
    })
}

/// Can this component crash? Crash-capable components report the chain
/// *head's* `(site_fn, site_block)`, so they may only join a chain whose
/// head shares their site; pure register/coverage components have no
/// observable site and may cross merge seams freely.
fn crashy(op: &ChainOp) -> bool {
    matches!(
        op,
        ChainOp::Bin { .. } | ChainOp::Load { .. } | ChainOp::Store { .. }
    )
}

/// The two-component decomposition of a fused interior pair
/// (`BinLoad`/`LoadBin`), if the op is one. A chain charges one cycle per
/// component, exactly what the fused op charges for its two source
/// instructions, so decomposing is cost-neutral — and it keeps one
/// pair-fusion site from splitting a long straight-line run in half.
fn pair_comps(op: &DOp) -> Option<[ChainOp; 2]> {
    match op {
        DOp::BinLoad {
            op,
            bdst,
            lhs,
            rhs,
            ldst,
            addr,
            bytes,
        } => Some([
            ChainOp::Bin {
                op: *op,
                dst: *bdst,
                lhs: *lhs,
                rhs: *rhs,
            },
            ChainOp::Load {
                dst: *ldst,
                addr: *addr,
                bytes: *bytes,
            },
        ]),
        DOp::LoadBin {
            ldst,
            addr,
            bytes,
            op,
            bdst,
            lhs,
            rhs,
        } => Some([
            ChainOp::Load {
                dst: *ldst,
                addr: *addr,
                bytes: *bytes,
            },
            ChainOp::Bin {
                op: *op,
                dst: *bdst,
                lhs: *lhs,
                rhs: *rhs,
            },
        ]),
        _ => None,
    }
}

/// Collapse straight-line runs of simple ops into [`DOp::Chain`]s — the
/// big dispatch-count lever. A run is a maximal sequence (in slot-index
/// space) of live chainable ops; interior eliminated slots are absorbed
/// into the *next* component's `pre` counter, so their charge lands at
/// exactly the reference position, and an unconditional `Br` terminator
/// immediately following the run is absorbed into the chain's tail. The
/// head slot stays live carrying the chain; every other consumed slot
/// becomes [`Kind::Absorbed`]. Trailing eliminated slots that never found
/// a following component stay [`Kind::Elim`] and ride the next live op's
/// stream-level `pre` as before.
fn build_chains(ir: &mut FuncIr, stats: &mut OptStats) {
    for block in &mut ir.blocks {
        let n = block.slots.len();
        let mut i = 0;
        while i < n {
            if block.slots[i].kind != Kind::Live {
                i += 1;
                continue;
            }
            // A fused pair may head a chain too: its second component has
            // `pre == 0` and draws the fused op's second charge, and its
            // site is the head site by construction.
            let mut comps = if let Some(op) = chain_op(&block.slots[i].op) {
                vec![ChainComp { pre: 0, op }]
            } else if let Some([a, b]) = pair_comps(&block.slots[i].op) {
                vec![
                    ChainComp { pre: 0, op: a },
                    ChainComp { pre: 0, op: b },
                ]
            } else {
                i += 1;
                continue;
            };
            let head_site = (block.slots[i].site_fn, block.slots[i].site_block);
            let mut tail = ChainTail::Next;
            // Last slot index consumed by the chain (head so far).
            let mut committed = i;
            // Eliminated slots seen since the last committed component,
            // owed by whatever component commits next.
            let mut pending: u16 = 0;
            let mut j = i + 1;
            while j < n {
                let slot = &block.slots[j];
                match slot.kind {
                    Kind::Absorbed => break,
                    Kind::Elim => {
                        let Some(p) = pending.checked_add(1) else {
                            break;
                        };
                        pending = p;
                    }
                    Kind::Live => {
                        // Terminator absorption first: the block's branch —
                        // including the compare/bin/store half of an
                        // already-fused branch, which decomposes back into
                        // a component plus a plain tail — ends the chain
                        // with the whole block under one dispatch.
                        let same_site = (slot.site_fn, slot.site_block) == head_site;
                        let absorbed = match &slot.op {
                            DOp::Br(t) => Some(ChainTail::Br {
                                pre: pending,
                                target: *t,
                            }),
                            DOp::CondBr {
                                cond,
                                if_true,
                                if_false,
                            } => Some(ChainTail::CondBr {
                                pre: pending,
                                cond: *cond,
                                if_true: *if_true,
                                if_false: *if_false,
                            }),
                            DOp::CmpBr {
                                pred,
                                dst,
                                lhs,
                                rhs,
                                if_true,
                                if_false,
                            } => {
                                comps.push(ChainComp {
                                    pre: pending,
                                    op: ChainOp::Cmp {
                                        pred: *pred,
                                        dst: *dst,
                                        lhs: *lhs,
                                        rhs: *rhs,
                                    },
                                });
                                Some(ChainTail::CondBr {
                                    pre: 0,
                                    cond: Operand::Reg(fir::Reg(*dst)),
                                    if_true: *if_true,
                                    if_false: *if_false,
                                })
                            }
                            DOp::CovCmpBr {
                                id,
                                pred,
                                dst,
                                lhs,
                                rhs,
                                if_true,
                                if_false,
                            } => {
                                comps.push(ChainComp {
                                    pre: pending,
                                    op: ChainOp::Cov { id: *id },
                                });
                                comps.push(ChainComp {
                                    pre: 0,
                                    op: ChainOp::Cmp {
                                        pred: *pred,
                                        dst: *dst,
                                        lhs: *lhs,
                                        rhs: *rhs,
                                    },
                                });
                                Some(ChainTail::CondBr {
                                    pre: 0,
                                    cond: Operand::Reg(fir::Reg(*dst)),
                                    if_true: *if_true,
                                    if_false: *if_false,
                                })
                            }
                            DOp::BinBr {
                                op,
                                dst,
                                lhs,
                                rhs,
                                target,
                            } if same_site => {
                                comps.push(ChainComp {
                                    pre: pending,
                                    op: ChainOp::Bin {
                                        op: *op,
                                        dst: *dst,
                                        lhs: *lhs,
                                        rhs: *rhs,
                                    },
                                });
                                Some(ChainTail::Br {
                                    pre: 0,
                                    target: *target,
                                })
                            }
                            DOp::MovBr { dst, src, target } => {
                                comps.push(ChainComp {
                                    pre: pending,
                                    op: ChainOp::Mov {
                                        dst: *dst,
                                        src: *src,
                                    },
                                });
                                Some(ChainTail::Br {
                                    pre: 0,
                                    target: *target,
                                })
                            }
                            DOp::StoreBr {
                                addr,
                                value,
                                bytes,
                                target,
                            } if same_site => {
                                comps.push(ChainComp {
                                    pre: pending,
                                    op: ChainOp::Store {
                                        addr: *addr,
                                        value: *value,
                                        bytes: *bytes,
                                    },
                                });
                                Some(ChainTail::Br {
                                    pre: 0,
                                    target: *target,
                                })
                            }
                            _ => None,
                        };
                        if let Some(t) = absorbed {
                            tail = t;
                            committed = j;
                            break;
                        }
                        // Interior fused pairs decompose into components
                        // rather than fragmenting the run — a chain already
                        // charges per component, so `Bin`+`Load` inside a
                        // chain costs exactly what `BinLoad` does. Both
                        // halves are crash-capable, so a pair from another
                        // site ends the chain.
                        if let Some([a, b]) = pair_comps(&slot.op) {
                            if !same_site {
                                break;
                            }
                            comps.push(ChainComp { pre: pending, op: a });
                            comps.push(ChainComp { pre: 0, op: b });
                            pending = 0;
                            committed = j;
                            j += 1;
                            continue;
                        }
                        let Some(op) = chain_op(&slot.op) else {
                            break;
                        };
                        if crashy(&op) && !same_site {
                            break;
                        }
                        comps.push(ChainComp { pre: pending, op });
                        pending = 0;
                        committed = j;
                    }
                }
                j += 1;
            }
            // A chain that consumed only its own head slot gains nothing
            // (a lone op — or a lone fused pair — is already one
            // dispatch); one that absorbed further slots or a terminator
            // always saves dispatches.
            if committed == i && matches!(tail, ChainTail::Next) {
                i += 1;
                continue;
            }
            for k in i + 1..=committed {
                debug_assert_ne!(block.slots[k].kind, Kind::Absorbed);
                block.slots[k].kind = Kind::Absorbed;
            }
            stats.chains += 1;
            stats.chain_comps += comps.len() as u64;
            block.slots[i].op = DOp::Chain {
                comps: comps.into_boxed_slice(),
                tail,
            };
            i = committed + 1;
        }
    }
}

/// Emit the laid-out IR as a [`DFunc`]: assign pcs to live slots, resolve
/// branch targets from block indices to pcs, accumulate `pre` counters
/// from eliminated slots, and build the source-coordinate resume map.
fn emit(ir: FuncIr, layout: &[u32]) -> DFunc {
    // Pass 1: pc of each block's first live slot (branch target), plus a
    // per-slot pc assignment for live slots.
    let mut block_entry = vec![0u32; ir.blocks.len()];
    let mut pc: u32 = 0;
    for &b in layout {
        let mut first = true;
        for slot in &ir.blocks[b as usize].slots {
            if slot.kind != Kind::Live {
                continue;
            }
            if first {
                block_entry[b as usize] = pc;
                first = false;
            }
            pc += 1;
        }
        debug_assert!(!first, "laid-out block {b} has no live terminator");
    }
    let total = pc as usize;

    // Pass 2: emit.
    let mut ops = Vec::with_capacity(total);
    let mut pre = Vec::with_capacity(total);
    let mut block_of = Vec::with_capacity(total);
    let mut fname_of = Vec::with_capacity(total);
    let mut pc_of_src = vec![0u32; ir.src_total as usize];
    let mut pending: u16 = 0;
    let mut pending_srcs: Vec<(u32, u32)> = Vec::new();
    let mut last_pc: u32 = 0;
    let src_idx = |src: (u32, u32)| (ir.orig_start[src.0 as usize] + src.1) as usize;
    for &b in layout {
        for slot in &ir.blocks[b as usize].slots {
            match slot.kind {
                Kind::Elim => {
                    pending = pending.checked_add(1).expect("pre counter fits u16");
                    if let Some(src) = slot.src {
                        pending_srcs.push(src);
                    }
                }
                Kind::Absorbed => {
                    // Components of a fused op map backward to it.
                    if let Some(src) = slot.src {
                        pc_of_src[src_idx(src)] = last_pc;
                    }
                }
                Kind::Live => {
                    let pc = ops.len() as u32;
                    let mut op = slot.op.clone();
                    op.retarget(|blk| block_entry[blk as usize]);
                    ops.push(op);
                    pre.push(pending);
                    block_of.push(slot.site_block);
                    fname_of.push(slot.site_fn);
                    // Eliminated slots resume at the next live op, with
                    // their charge owed in its `pre`.
                    for src in pending_srcs.drain(..) {
                        pc_of_src[src_idx(src)] = pc;
                    }
                    if let Some(src) = slot.src {
                        pc_of_src[src_idx(src)] = pc;
                    }
                    pending = 0;
                    last_pc = pc;
                }
            }
        }
        debug_assert_eq!(pending, 0, "block must end in a live terminator");
    }
    debug_assert_eq!(ops.len(), total);

    // Source block starts, through the resume map (a source block whose
    // slots were merged into a predecessor still resolves correctly).
    let block_start = ir
        .orig_start
        .iter()
        .map(|&s| pc_of_src.get(s as usize).copied().unwrap_or(0))
        .collect();

    DFunc {
        name: ir.name,
        num_params: ir.num_params,
        num_regs: ir.num_regs,
        ops,
        pre,
        block_of,
        fname_of,
        block_start,
        orig_start: ir.orig_start,
        pc_of_src,
    }
}
