//! The simulated-cycle cost model.
//!
//! All Table 5 speedups in the paper come from the difference between
//! per-test-case *process management* cost (fork, exec, teardown) and
//! ClosureX's *fine-grain restore* cost. The constants here are chosen so
//! the reproduction lands in the paper's measured range (2.4–4.8×,
//! average ≈3.5×); see `DESIGN.md` §5 and the `fig_continuum` bench for the
//! decomposition.

use serde::{Deserialize, Serialize};

/// Cycle charges for every simulated OS and runtime operation.
///
/// The decoded engine and its pre-decode optimizer (DESIGN.md §17) are
/// bound to this model by the equivalence contract: a fused
/// superinstruction or `Chain` component charges exactly the `inst`-cycle
/// sum of the source instructions it stands for, and eliminated
/// instructions still charge via bulk `pre` counters. The optimizer
/// removes host dispatches, never simulated cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles per interpreted FIR instruction.
    pub inst: u64,
    /// Base cost of `fork(2)`: trap + task struct + bookkeeping.
    pub fork_base: u64,
    /// Per-resident-page cost of duplicating the page table on fork.
    pub fork_per_page: u64,
    /// Cost of one copy-on-write fault after a fork.
    pub cow_fault: u64,
    /// Base cost of process teardown (`exit` + kernel reaping).
    pub teardown_base: u64,
    /// Per-resident-page teardown cost.
    pub teardown_per_page: u64,
    /// `exec`/image-load cost per byte of binary image.
    pub exec_per_byte_div: u64,
    /// Base cost of `exec` (ELF parsing, mmap setup).
    pub exec_base: u64,
    /// Forkserver control-pipe round trip per test case.
    pub forkserver_pipe: u64,
    /// Fixed overhead of one persistent-loop iteration (both naive
    /// persistent and ClosureX pay this).
    pub persistent_loop: u64,
    /// ClosureX: bytes of global-section restore per cycle (memcpy-speed).
    pub restore_bytes_per_cycle: u64,
    /// ClosureX: cycles to free one leaked heap chunk.
    pub restore_per_chunk: u64,
    /// ClosureX: cycles to close one stray file handle.
    pub restore_per_fd: u64,
    /// ClosureX: cycles to rewind (fseek) one initialization-time handle.
    pub restore_per_init_fd_rewind: u64,
    /// ClosureX: fixed restore overhead per iteration (setjmp + sweep setup).
    pub restore_base: u64,
    /// Hostcall surcharges (on top of `inst`).
    pub host_malloc: u64,
    /// `free` surcharge.
    pub host_free: u64,
    /// `fopen` surcharge.
    pub host_fopen: u64,
    /// `fclose` surcharge.
    pub host_fclose: u64,
    /// Per-byte divisor for bulk memory/file hostcalls (`memcpy`, `fread`):
    /// cost = base + len / this.
    pub host_bulk_div: u64,
    /// Extra cycles a `closurex_*` wrapper pays over the raw call
    /// (hash-map insert/remove — the paper's non-zero instrumentation cost).
    pub closurex_wrapper: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            inst: 1,
            fork_base: 3000,
            fork_per_page: 6,
            cow_fault: 160,
            teardown_base: 1200,
            teardown_per_page: 2,
            exec_per_byte_div: 16,
            exec_base: 20_000,
            forkserver_pipe: 350,
            persistent_loop: 12,
            restore_bytes_per_cycle: 16,
            restore_per_chunk: 28,
            restore_per_fd: 40,
            restore_per_init_fd_rewind: 12,
            restore_base: 60,
            host_malloc: 24,
            host_free: 18,
            host_fopen: 90,
            host_fclose: 45,
            host_bulk_div: 8,
            closurex_wrapper: 6,
        }
    }
}

impl CostModel {
    /// Cost of a `fork` given the parent's resident page count.
    pub fn fork(&self, resident_pages: u64) -> u64 {
        self.fork_base + self.fork_per_page * resident_pages
    }

    /// Cost of tearing a process down.
    pub fn teardown(&self, resident_pages: u64) -> u64 {
        self.teardown_base + self.teardown_per_page * resident_pages
    }

    /// Cost of `exec`ing an image of `image_bytes` bytes.
    pub fn exec(&self, image_bytes: u64) -> u64 {
        self.exec_base + image_bytes / self.exec_per_byte_div.max(1)
    }

    /// Cost of a ClosureX end-of-iteration restore.
    pub fn restore(
        &self,
        global_bytes: u64,
        leaked_chunks: u64,
        stray_fds: u64,
        init_fd_rewinds: u64,
    ) -> u64 {
        self.restore_base
            + global_bytes / self.restore_bytes_per_cycle.max(1)
            + leaked_chunks * self.restore_per_chunk
            + stray_fds * self.restore_per_fd
            + init_fd_rewinds * self.restore_per_init_fd_rewind
    }

    /// Cost of a bulk operation over `len` bytes. Charged once per
    /// hostcall on the interpreter's hot path.
    #[inline]
    pub fn bulk(&self, base: u64, len: u64) -> u64 {
        base + len / self.host_bulk_div.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_scales_with_pages() {
        let c = CostModel::default();
        assert!(c.fork(1000) > c.fork(10));
        assert_eq!(c.fork(0), c.fork_base);
    }

    #[test]
    fn restore_is_cheaper_than_fork_for_typical_footprints() {
        // The core premise of the paper: restoring test-case-specific state
        // beats duplicating a whole process. A typical target dirties a few
        // KiB of globals, leaks a handful of chunks, and has hundreds of
        // resident pages.
        let c = CostModel::default();
        let fork_plus_teardown = c.fork(500) + c.teardown(500) + c.forkserver_pipe;
        let restore = c.restore(4096, 8, 2, 1) + c.persistent_loop;
        assert!(
            restore * 3 < fork_plus_teardown,
            "restore={restore} fork={fork_plus_teardown}"
        );
    }

    #[test]
    fn exec_dominated_by_image_size_for_big_binaries() {
        let c = CostModel::default();
        let small = c.exec(100 * 1024);
        let big = c.exec(12 * 1024 * 1024);
        assert!(big > 5 * small);
    }

    #[test]
    fn bulk_cost_linear() {
        let c = CostModel::default();
        assert_eq!(c.bulk(10, 0), 10);
        assert_eq!(c.bulk(10, 80), 20);
    }
}
