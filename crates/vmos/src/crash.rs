//! Crash taxonomy.
//!
//! The kinds mirror the bug classes the paper reports in Table 7 (null
//! pointer dereference, division by zero, unaddressable access, invalid
//! read/write, negative-size memcpy, out-of-bounds array access) plus the
//! resource-exhaustion *false crashes* that motivate ClosureX (§3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a simulated process died.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CrashKind {
    /// Load/store through an address in the null page.
    NullPtrDeref,
    /// Integer division or remainder by zero (or `i64::MIN / -1`).
    DivisionByZero,
    /// Access to memory no object owns: freed heap chunk, allocator gap, or
    /// a wholly unmapped region.
    UnaddressableAccess,
    /// Read outside any valid object in a mapped region (e.g. past the end
    /// of a global).
    InvalidRead,
    /// Write outside any valid object, or into read-only data.
    InvalidWrite,
    /// `memcpy`/`memset` with a negative (or absurdly large) size.
    NegativeSizeMemcpy,
    /// Out-of-bounds array access detected at the heap-chunk boundary.
    OutOfBoundsAccess,
    /// Double `free` of a heap pointer.
    DoubleFree,
    /// `free` of a pointer that was never allocated.
    InvalidFree,
    /// The process ran out of file descriptors (`RLIMIT_NOFILE`).
    ///
    /// Only naive persistent fuzzing produces this: leaked handles
    /// accumulate across test cases — a classic *false crash* (§3).
    FdExhaustion,
    /// The heap limit was exceeded (accumulated leaks — a *false crash*).
    OutOfMemory,
    /// Call-stack depth or stack-bytes limit exceeded.
    StackOverflow,
    /// `abort()` was called.
    Abort,
    /// An `unreachable` terminator was executed.
    UnreachableExecuted,
    /// `longjmp` to a dead or never-initialized `jmp_buf`.
    BadLongjmp,
}

impl CrashKind {
    /// Table 7-style display name.
    pub fn bug_type_name(self) -> &'static str {
        match self {
            CrashKind::NullPtrDeref => "Null Ptr Deref.",
            CrashKind::DivisionByZero => "Division by Zero",
            CrashKind::UnaddressableAccess => "Unaddressable Access",
            CrashKind::InvalidRead => "Invalid Read",
            CrashKind::InvalidWrite => "Invalid Write",
            CrashKind::NegativeSizeMemcpy => "Memcpy with negative size",
            CrashKind::OutOfBoundsAccess => "Array out of bounds access",
            CrashKind::DoubleFree => "Double Free",
            CrashKind::InvalidFree => "Invalid Free",
            CrashKind::FdExhaustion => "FD Exhaustion (false crash)",
            CrashKind::OutOfMemory => "Out of Memory (false crash)",
            CrashKind::StackOverflow => "Stack Overflow",
            CrashKind::Abort => "Abort",
            CrashKind::UnreachableExecuted => "Unreachable Executed",
            CrashKind::BadLongjmp => "Bad longjmp",
        }
    }

    /// True for crashes caused by cross-test-case state accumulation rather
    /// than by the current input — the false crashes of paper §3.
    pub fn is_resource_exhaustion(self) -> bool {
        matches!(self, CrashKind::FdExhaustion | CrashKind::OutOfMemory)
    }
}

impl fmt::Display for CrashKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bug_type_name())
    }
}

/// A crash report with its location — the deduplication key fuzzers use.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Crash {
    /// What went wrong.
    pub kind: CrashKind,
    /// Function the faulting instruction lives in.
    pub function: String,
    /// Basic-block index of the faulting instruction.
    pub block: u32,
    /// Free-form details (address, size, operands).
    pub detail: String,
}

impl Crash {
    /// Stable identity used to deduplicate crashes: kind + site.
    pub fn site_key(&self) -> (CrashKind, String, u32) {
        (self.kind, self.function.clone(), self.block)
    }
}

impl fmt::Display for Crash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in {}:bb{} ({})",
            self.kind, self.function, self.block, self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_table7() {
        assert_eq!(CrashKind::NullPtrDeref.bug_type_name(), "Null Ptr Deref.");
        assert_eq!(
            CrashKind::NegativeSizeMemcpy.bug_type_name(),
            "Memcpy with negative size"
        );
        assert_eq!(
            CrashKind::OutOfBoundsAccess.bug_type_name(),
            "Array out of bounds access"
        );
    }

    #[test]
    fn resource_exhaustion_classification() {
        assert!(CrashKind::FdExhaustion.is_resource_exhaustion());
        assert!(CrashKind::OutOfMemory.is_resource_exhaustion());
        assert!(!CrashKind::NullPtrDeref.is_resource_exhaustion());
    }

    #[test]
    fn site_key_ignores_detail() {
        let a = Crash {
            kind: CrashKind::NullPtrDeref,
            function: "parse".into(),
            block: 3,
            detail: "addr=0x10".into(),
        };
        let b = Crash {
            detail: "addr=0x20".into(),
            ..a.clone()
        };
        assert_eq!(a.site_key(), b.site_key());
    }
}
