//! Global-variable memory layout.
//!
//! Globals are laid out section-by-section (`.rodata`, `.data`, `.bss`,
//! `closure_global_section`) so that the ClosureX harness can ask for the
//! contiguous `closure_global_section` range — the analog of the paper's
//! `CLOSURE_GLOBAL_SECTION_ADDR` / `CLOSURE_GLOBAL_SECTION_SIZE`
//! environment variables populated via `readelf`.

use fir::{GlobalId, Module, Section};

use crate::mem::PageTable;

/// Base virtual address of the globals region.
pub const GLOBAL_BASE: u64 = 0x1000_0000;
/// Per-global alignment.
pub const GLOBAL_ALIGN: u64 = 16;

/// One laid-out global.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalSlot {
    /// The module's global id.
    pub gid: GlobalId,
    /// Symbol name.
    pub name: String,
    /// Start address.
    pub start: u64,
    /// Size in bytes.
    pub size: u64,
    /// Whether stores are legal.
    pub writable: bool,
    /// The section it was placed in.
    pub section: Section,
}

impl GlobalSlot {
    /// One past the last byte.
    pub fn end(&self) -> u64 {
        self.start + self.size
    }
}

/// The loaded-globals map of one process image.
#[derive(Debug, Clone, Default)]
pub struct GlobalMap {
    slots: Vec<GlobalSlot>, // sorted by start
    sections: Vec<(Section, u64, u64)>,
    end: u64,
}

impl GlobalMap {
    /// Compute the layout for a module (deterministic).
    pub fn layout(module: &Module) -> Self {
        let mut slots = Vec::new();
        let mut sections = Vec::new();
        let mut cursor = GLOBAL_BASE;
        for section in [
            Section::Rodata,
            Section::Data,
            Section::Bss,
            Section::ClosureGlobal,
        ] {
            let sec_start = cursor;
            for (i, g) in module.globals.iter().enumerate() {
                if g.section != section {
                    continue;
                }
                slots.push(GlobalSlot {
                    gid: GlobalId(i as u32),
                    name: g.name.clone(),
                    start: cursor,
                    size: g.size,
                    writable: section.writable(),
                    section,
                });
                cursor += g.size.div_ceil(GLOBAL_ALIGN) * GLOBAL_ALIGN;
            }
            if cursor > sec_start {
                sections.push((section, sec_start, cursor - sec_start));
            }
        }
        GlobalMap {
            slots,
            sections,
            end: cursor,
        }
    }

    /// Copy every global's initial image into memory.
    pub fn load_into(&self, module: &Module, mem: &mut PageTable) {
        for slot in &self.slots {
            let g = &module.globals[slot.gid.0 as usize];
            mem.write(slot.start, &g.image());
        }
    }

    /// One past the end of the globals region.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// True if `addr` is inside the globals region.
    pub fn contains(&self, addr: u64) -> bool {
        (GLOBAL_BASE..self.end).contains(&addr)
    }

    /// The slot covering `addr`, if any.
    pub fn find(&self, addr: u64) -> Option<&GlobalSlot> {
        let idx = self.slots.partition_point(|s| s.start <= addr);
        let slot = self.slots.get(idx.checked_sub(1)?)?;
        (addr < slot.end()).then_some(slot)
    }

    /// Address of a global by id.
    pub fn addr_of(&self, gid: GlobalId) -> Option<u64> {
        self.slots.iter().find(|s| s.gid == gid).map(|s| s.start)
    }

    /// Address of a global by name.
    pub fn addr_of_name(&self, name: &str) -> Option<u64> {
        self.slots.iter().find(|s| s.name == name).map(|s| s.start)
    }

    /// `(start, size)` of a section, if non-empty — the
    /// `CLOSURE_GLOBAL_SECTION_ADDR/SIZE` analog.
    pub fn section_range(&self, section: Section) -> Option<(u64, u64)> {
        self.sections
            .iter()
            .find(|(s, _, _)| *s == section)
            .map(|(_, a, l)| (*a, *l))
    }

    /// All slots, sorted by address.
    pub fn slots(&self) -> &[GlobalSlot] {
        &self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::ModuleBuilder;
    use fir::Global;

    fn module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        mb.global(Global::constant("ro", vec![1, 2, 3, 4]));
        mb.global(Global::with_init("counter", 7i64.to_le_bytes().to_vec()));
        mb.global(Global::zeroed("scratch", 100));
        let mut g = Global::zeroed("moved", 24);
        g.section = Section::ClosureGlobal;
        mb.global(g);
        mb.finish()
    }

    #[test]
    fn sections_are_contiguous_and_ordered() {
        let m = module();
        let gm = GlobalMap::layout(&m);
        let ro = gm.section_range(Section::Rodata).unwrap();
        let da = gm.section_range(Section::Data).unwrap();
        let bs = gm.section_range(Section::Bss).unwrap();
        let cg = gm.section_range(Section::ClosureGlobal).unwrap();
        assert!(ro.0 < da.0 && da.0 < bs.0 && bs.0 < cg.0);
        assert_eq!(cg.1, 32, "24 rounded to 16-alignment blocks");
    }

    #[test]
    fn find_resolves_interior_addresses() {
        let m = module();
        let gm = GlobalMap::layout(&m);
        let a = gm.addr_of_name("scratch").unwrap();
        assert_eq!(gm.find(a + 50).unwrap().name, "scratch");
        assert_eq!(gm.find(a + 99).unwrap().name, "scratch");
        assert!(gm.find(a + 100).is_none() || gm.find(a + 100).unwrap().name != "scratch");
    }

    #[test]
    fn writability_follows_section() {
        let m = module();
        let gm = GlobalMap::layout(&m);
        let ro = gm.addr_of_name("ro").unwrap();
        assert!(!gm.find(ro).unwrap().writable);
        let c = gm.addr_of_name("counter").unwrap();
        assert!(gm.find(c).unwrap().writable);
    }

    #[test]
    fn load_into_writes_initializers() {
        let m = module();
        let gm = GlobalMap::layout(&m);
        let mut mem = PageTable::new();
        gm.load_into(&m, &mut mem);
        let c = gm.addr_of_name("counter").unwrap();
        assert_eq!(mem.read_uint(c, 8), 7);
        let ro = gm.addr_of_name("ro").unwrap();
        assert_eq!(
            mem.read_uint(ro, 4) as u32,
            u32::from_le_bytes([1, 2, 3, 4])
        );
    }

    #[test]
    fn addresses_outside_region_not_found() {
        let m = module();
        let gm = GlobalMap::layout(&m);
        assert!(gm.find(GLOBAL_BASE - 1).is_none());
        assert!(gm.find(gm.end()).is_none());
        assert!(!gm.contains(gm.end()));
    }
}
