//! Per-process file-descriptor (FILE*) table with an `RLIMIT_NOFILE`
//! analog.
//!
//! Handles are encoded as addresses in a dedicated non-memory region so a
//! leaked/garbage handle passed to `fread` is cleanly distinguishable from a
//! heap pointer. Naive persistent fuzzing leaks handles across test cases
//! until [`FdError::Exhausted`] — one of the paper's motivating false-crash
//! modes.

/// Base "address" of encoded FILE handles.
pub const FD_HANDLE_BASE: u64 = 0x9000_0000;
/// Stride between consecutive handles.
pub const FD_HANDLE_STRIDE: u64 = 16;

/// An open file: path plus seek position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenFile {
    /// Path in the [`crate::fs::SimFs`].
    pub path: String,
    /// Current read offset.
    pub pos: u64,
}

/// Errors from table operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdError {
    /// The per-process descriptor limit was hit.
    Exhausted,
    /// Operation on a handle that is not open.
    BadHandle,
}

/// The per-process descriptor table.
#[derive(Debug, Clone)]
pub struct FdTable {
    entries: Vec<Option<OpenFile>>,
    limit: usize,
}

impl FdTable {
    /// Table with the given `RLIMIT_NOFILE` analog.
    pub fn new(limit: usize) -> Self {
        FdTable {
            entries: Vec::new(),
            limit,
        }
    }

    /// The descriptor limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Number of currently open handles.
    pub fn open_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Open a file, returning its encoded handle.
    ///
    /// # Errors
    /// [`FdError::Exhausted`] when the limit is reached.
    pub fn open(&mut self, path: impl Into<String>) -> Result<u64, FdError> {
        if self.open_count() >= self.limit {
            return Err(FdError::Exhausted);
        }
        let file = OpenFile {
            path: path.into(),
            pos: 0,
        };
        for (i, slot) in self.entries.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(file);
                return Ok(Self::encode(i));
            }
        }
        self.entries.push(Some(file));
        Ok(Self::encode(self.entries.len() - 1))
    }

    /// Close a handle.
    ///
    /// # Errors
    /// [`FdError::BadHandle`] if the handle is not open.
    pub fn close(&mut self, handle: u64) -> Result<(), FdError> {
        let idx = Self::decode(handle).ok_or(FdError::BadHandle)?;
        match self.entries.get_mut(idx) {
            Some(slot @ Some(_)) => {
                *slot = None;
                Ok(())
            }
            _ => Err(FdError::BadHandle),
        }
    }

    /// Access an open file.
    pub fn get_mut(&mut self, handle: u64) -> Option<&mut OpenFile> {
        let idx = Self::decode(handle)?;
        self.entries.get_mut(idx)?.as_mut()
    }

    /// Access an open file immutably.
    pub fn get(&self, handle: u64) -> Option<&OpenFile> {
        let idx = Self::decode(handle)?;
        self.entries.get(idx)?.as_ref()
    }

    /// All currently open handles (the ClosureX fd sweep input).
    pub fn open_handles(&self) -> Vec<u64> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_some())
            .map(|(i, _)| Self::encode(i))
            .collect()
    }

    /// True if `addr` lies in the encoded-handle region.
    pub fn is_handle_addr(addr: u64) -> bool {
        (FD_HANDLE_BASE..FD_HANDLE_BASE + (1 << 24)).contains(&addr)
    }

    fn encode(idx: usize) -> u64 {
        FD_HANDLE_BASE + idx as u64 * FD_HANDLE_STRIDE
    }

    fn decode(handle: u64) -> Option<usize> {
        if handle < FD_HANDLE_BASE || !(handle - FD_HANDLE_BASE).is_multiple_of(FD_HANDLE_STRIDE) {
            return None;
        }
        Some(((handle - FD_HANDLE_BASE) / FD_HANDLE_STRIDE) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_reuse() {
        let mut t = FdTable::new(4);
        let a = t.open("/x").unwrap();
        let b = t.open("/y").unwrap();
        assert_ne!(a, b);
        assert_eq!(t.open_count(), 2);
        t.close(a).unwrap();
        let c = t.open("/z").unwrap();
        assert_eq!(a, c, "slot reused");
    }

    #[test]
    fn exhaustion_at_limit() {
        let mut t = FdTable::new(2);
        t.open("/1").unwrap();
        t.open("/2").unwrap();
        assert_eq!(t.open("/3"), Err(FdError::Exhausted));
        // false-crash scenario: leaked handles never closed
    }

    #[test]
    fn bad_handle_errors() {
        let mut t = FdTable::new(2);
        assert_eq!(t.close(FD_HANDLE_BASE), Err(FdError::BadHandle));
        assert_eq!(t.close(0x1234), Err(FdError::BadHandle));
        assert!(t.get(FD_HANDLE_BASE + 3).is_none(), "misaligned handle");
    }

    #[test]
    fn seek_position_persists() {
        let mut t = FdTable::new(2);
        let h = t.open("/f").unwrap();
        t.get_mut(h).unwrap().pos = 40;
        assert_eq!(t.get(h).unwrap().pos, 40);
    }

    #[test]
    fn handle_region_detection() {
        assert!(FdTable::is_handle_addr(FD_HANDLE_BASE));
        assert!(!FdTable::is_handle_addr(0x4000_0000));
    }

    #[test]
    fn open_handles_lists_live_only() {
        let mut t = FdTable::new(8);
        let a = t.open("/a").unwrap();
        let b = t.open("/b").unwrap();
        t.close(a).unwrap();
        assert_eq!(t.open_handles(), vec![b]);
    }
}
