//! Pre-decoded FIR bytecode: the host-throughput execution engine.
//!
//! The reference interpreter ([`crate::interp::Machine::run`]) re-walks the
//! `fir` AST on every instruction: nested `functions[f].blocks[b].insts[i]`
//! indexing, callee resolution by *string name* at every call site, and
//! hostcall dispatch through a string match. None of that work depends on
//! run-time state, so this module does it **once per module**: each
//! function is lowered into a flat, dense `Vec<DOp>` with
//!
//! * block targets pre-resolved to flat program counters,
//! * callees pre-classified (intrinsic / module function / host call /
//!   unknown) with module callees bound to [`FunctionId`]s and host calls
//!   bound to [`HostId`]s,
//! * load/store widths and `alloca` rounding pre-computed.
//!
//! Lowering is strictly 1:1 — one `DOp` per instruction plus one per block
//! terminator — so a flat pc and the reference engine's `(block, ip)`
//! coordinates are interconvertible: `pc = block_start[block] + ip`. That
//! equivalence is what lets the decoded loop share the `Process` frame
//! representation (frames store source coordinates) with the reference
//! engine, `setjmp`/`longjmp` included, and is the backbone of the
//! determinism invariant: the decoded engine performs the *same* sequence
//! of state transitions, cycle charges, and crash reports as the reference
//! interpreter — only faster in host time. `tests/engine_equivalence.rs`
//! enforces this end-to-end.
//!
//! Images are immutable and cached per module fingerprint (see
//! [`DecodedImage::cached`]), so every executor in a campaign — including
//! respawned and restored processes — shares one decode.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use fir::{BinOp, BlockId, CmpPred, FunctionId, GlobalId, Inst, Module, Operand, Terminator};

use crate::hostcalls::{self, HostId};

/// One pre-decoded operation. Branch operands are flat pcs into the owning
/// function's `ops`; register/immediate operands keep the (Copy) `fir`
/// representation since reading them is already a single array index.
#[derive(Debug, Clone, PartialEq)]
pub enum DOp {
    /// `dst = value`
    Const { dst: u32, value: i64 },
    /// `dst = src`
    Mov { dst: u32, src: Operand },
    /// `dst = op lhs, rhs`
    Bin {
        op: BinOp,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = cmp pred lhs, rhs`
    Cmp {
        pred: CmpPred,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = cond ? if_true : if_false`
    Select {
        dst: u32,
        cond: Operand,
        if_true: Operand,
        if_false: Operand,
    },
    /// `dst = load bytes, [addr]` — width pre-resolved to a byte count.
    Load { dst: u32, addr: Operand, bytes: u64 },
    /// `store bytes value, [addr]`
    Store {
        addr: Operand,
        value: Operand,
        bytes: u64,
    },
    /// `dst = &global`
    AddrOf { dst: u32, global: GlobalId },
    /// `dst = alloca size` with the 16-byte rounding pre-computed
    /// (`size` is kept for the crash message).
    Alloca { dst: u32, size: u32, rounded: u64 },
    /// `__cov_edge(id)` — the coverage probe intrinsic.
    CovEdge { id: Operand },
    /// `setjmp(buf)`.
    Setjmp { dst: Option<fir::Reg>, buf: Operand },
    /// `longjmp(buf, val)` — missing `val` defaults to `Imm(1)` exactly
    /// like the reference's `argv.get(1).unwrap_or(&1)`.
    Longjmp { buf: Operand, val: Operand },
    /// Call to a module-defined function, pre-bound by id.
    CallFn {
        dst: Option<fir::Reg>,
        callee: FunctionId,
        args: Box<[Operand]>,
    },
    /// Call to the simulated libc, pre-bound to a [`HostId`].
    CallHost {
        dst: Option<fir::Reg>,
        host: HostId,
        args: Box<[Operand]>,
    },
    /// Call to a name nothing resolves — executing it is the
    /// unresolved-symbol crash.
    CallUnknown { name: Box<str> },
    /// Return, optionally with a value.
    Ret(Option<Operand>),
    /// Unconditional jump to a flat pc.
    Br(u32),
    /// Conditional jump on `cond != 0`.
    CondBr {
        cond: Operand,
        if_true: u32,
        if_false: u32,
    },
    /// Multi-way dispatch; first matching case wins, like the reference.
    Switch {
        value: Operand,
        cases: Box<[(i64, u32)]>,
        default: u32,
    },
    /// Executing this is an `UnreachableExecuted` crash.
    Unreachable,
}

/// One lowered function.
#[derive(Debug, Clone)]
pub struct DFunc {
    /// Symbol name (crash sites and hostcall sites report it).
    pub name: String,
    /// Number of parameters.
    pub num_params: u32,
    /// Register file size.
    pub num_regs: u32,
    /// Flat op stream: for each block, its instructions then its
    /// terminator.
    pub ops: Vec<DOp>,
    /// `block_start[b]` = flat pc of block `b`'s first op.
    pub block_start: Vec<u32>,
    /// `block_of[pc]` = source block of the op at `pc` (crash sites,
    /// `setjmp` records, frame sync).
    pub block_of: Vec<u32>,
}

impl DFunc {
    /// Convert a flat pc back to the reference engine's `(block, ip)`
    /// coordinates.
    #[inline]
    pub fn coords(&self, pc: u32) -> (u32, usize) {
        let block = self.block_of[pc as usize];
        (block, (pc - self.block_start[block as usize]) as usize)
    }

    /// Convert reference `(block, ip)` coordinates to a flat pc.
    #[inline]
    pub fn flat_pc(&self, block: u32, ip: usize) -> u32 {
        self.block_start[block as usize] + ip as u32
    }
}

/// A fully lowered module image, shared (behind `Arc`) by every executor
/// running the module.
#[derive(Debug, Clone)]
pub struct DecodedImage {
    /// Lowered functions, indexed by [`FunctionId`].
    pub funcs: Vec<DFunc>,
    /// Fingerprint of the module this image was lowered from.
    pub fingerprint: u64,
}

impl DecodedImage {
    /// Lower every function of `module`.
    pub fn new(module: &Module) -> Self {
        DecodedImage {
            funcs: module.functions.iter().map(|f| lower(module, f)).collect(),
            fingerprint: module.fingerprint(),
        }
    }

    /// Lower `module`, or return the image another executor already
    /// lowered for a structurally identical module. The cache is global
    /// and keyed by [`Module::fingerprint`], so a campaign's respawn /
    /// restore churn — and parallel bench trials over the same target —
    /// decode each module exactly once per process.
    pub fn cached(module: &Module) -> Arc<DecodedImage> {
        let mut map = Self::cache().lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            map.entry(module.fingerprint())
                .or_insert_with(|| Arc::new(DecodedImage::new(module))),
        )
    }

    /// Is an image for `fingerprint` already in the process-wide cache?
    /// Checkpoint resume uses this to report whether the decoded image was
    /// ready before replay began.
    pub fn cache_contains(fingerprint: u64) -> bool {
        Self::cache()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(&fingerprint)
    }

    /// Ensure `module`'s decoded image is in the process-wide cache,
    /// lowering it now if absent. Returns `true` when the image was
    /// already present (a warm hit) and `false` when this call paid for
    /// the lowering — resume paths call this eagerly so no campaign step
    /// ever re-lowers lazily.
    pub fn warm(module: &Module) -> bool {
        let hit = Self::cache_contains(module.fingerprint());
        if !hit {
            let _ = Self::cached(module);
        }
        hit
    }

    fn cache() -> &'static Mutex<HashMap<u64, Arc<DecodedImage>>> {
        static CACHE: OnceLock<Mutex<HashMap<u64, Arc<DecodedImage>>>> = OnceLock::new();
        CACHE.get_or_init(|| Mutex::new(HashMap::new()))
    }
}

/// Lower one function. The classification of call sites mirrors the
/// reference interpreter's run-time precedence exactly: `__cov_edge`, then
/// `setjmp`, then `longjmp`, then module functions (first name match),
/// then host calls, and finally the unresolved-symbol crash.
fn lower(module: &Module, f: &fir::Function) -> DFunc {
    let mut block_start = Vec::with_capacity(f.blocks.len());
    let mut pc: u32 = 0;
    for b in &f.blocks {
        block_start.push(pc);
        pc += b.insts.len() as u32 + 1; // +1 for the terminator
    }
    let total = pc as usize;

    let mut ops = Vec::with_capacity(total);
    let mut block_of = Vec::with_capacity(total);
    for (bi, b) in f.blocks.iter().enumerate() {
        for inst in &b.insts {
            ops.push(lower_inst(module, inst));
            block_of.push(bi as u32);
        }
        ops.push(lower_term(&b.term, &block_start));
        block_of.push(bi as u32);
    }
    debug_assert_eq!(ops.len(), total);

    DFunc {
        name: f.name.clone(),
        num_params: f.num_params,
        num_regs: f.num_regs,
        ops,
        block_start,
        block_of,
    }
}

fn lower_inst(module: &Module, inst: &Inst) -> DOp {
    match inst {
        Inst::Const { dst, value } => DOp::Const {
            dst: dst.0,
            value: *value,
        },
        Inst::Mov { dst, src } => DOp::Mov {
            dst: dst.0,
            src: *src,
        },
        Inst::Bin { op, dst, lhs, rhs } => DOp::Bin {
            op: *op,
            dst: dst.0,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Cmp {
            pred,
            dst,
            lhs,
            rhs,
        } => DOp::Cmp {
            pred: *pred,
            dst: dst.0,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Select {
            dst,
            cond,
            if_true,
            if_false,
        } => DOp::Select {
            dst: dst.0,
            cond: *cond,
            if_true: *if_true,
            if_false: *if_false,
        },
        Inst::Load { dst, addr, width } => DOp::Load {
            dst: dst.0,
            addr: *addr,
            bytes: width.bytes(),
        },
        Inst::Store { addr, value, width } => DOp::Store {
            addr: *addr,
            value: *value,
            bytes: width.bytes(),
        },
        Inst::AddrOf { dst, global } => DOp::AddrOf {
            dst: dst.0,
            global: *global,
        },
        Inst::Alloca { dst, size } => DOp::Alloca {
            dst: dst.0,
            size: *size,
            rounded: u64::from(*size).div_ceil(16) * 16,
        },
        Inst::Call { dst, callee, args } => lower_call(module, *dst, callee, args),
    }
}

fn lower_call(module: &Module, dst: Option<fir::Reg>, callee: &str, args: &[Operand]) -> DOp {
    let arg_or = |i: usize, default: i64| args.get(i).copied().unwrap_or(Operand::Imm(default));
    match callee {
        "__cov_edge" => DOp::CovEdge { id: arg_or(0, 0) },
        "setjmp" => DOp::Setjmp {
            dst,
            buf: arg_or(0, 0),
        },
        "longjmp" => DOp::Longjmp {
            buf: arg_or(0, 0),
            val: arg_or(1, 1),
        },
        _ => {
            if let Some(fid) = module.function_id(callee) {
                DOp::CallFn {
                    dst,
                    callee: fid,
                    args: args.into(),
                }
            } else if let Some(host) = hostcalls::resolve(callee) {
                DOp::CallHost {
                    dst,
                    host,
                    args: args.into(),
                }
            } else {
                DOp::CallUnknown {
                    name: callee.into(),
                }
            }
        }
    }
}

fn lower_term(term: &Terminator, block_start: &[u32]) -> DOp {
    let target = |b: &BlockId| block_start[b.0 as usize];
    match term {
        Terminator::Ret(v) => DOp::Ret(*v),
        Terminator::Br(b) => DOp::Br(target(b)),
        Terminator::CondBr {
            cond,
            if_true,
            if_false,
        } => DOp::CondBr {
            cond: *cond,
            if_true: target(if_true),
            if_false: target(if_false),
        },
        Terminator::Switch {
            value,
            cases,
            default,
        } => DOp::Switch {
            value: *value,
            cases: cases.iter().map(|(v, b)| (*v, target(b))).collect(),
            default: target(default),
        },
        Terminator::Unreachable => DOp::Unreachable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::ModuleBuilder;

    fn sample_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let mut g = mb.function_with_params("helper", 1);
        let d = g.add(Operand::Reg(g.param(0)), Operand::Imm(1));
        g.ret(Some(Operand::Reg(d)));
        g.finish();
        let mut f = mb.function_with_params("main", 1);
        let r = f.call("helper", vec![Operand::Reg(f.param(0))]);
        let t = f.new_block();
        let e = f.new_block();
        f.cond_br(Operand::Reg(r), t, e);
        f.switch_to(t);
        f.call_void("puts", vec![Operand::Imm(0)]);
        f.ret(Some(Operand::Imm(1)));
        f.switch_to(e);
        f.call_void("no_such_symbol", vec![]);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        mb.finish()
    }

    #[test]
    fn lowering_is_one_to_one_with_source() {
        let m = sample_module();
        let img = DecodedImage::new(&m);
        for (fi, f) in m.functions.iter().enumerate() {
            let df = &img.funcs[fi];
            let expect: usize = f.blocks.iter().map(|b| b.insts.len() + 1).sum();
            assert_eq!(df.ops.len(), expect);
            assert_eq!(df.block_of.len(), expect);
            assert_eq!(df.block_start.len(), f.blocks.len());
            // Round-trip every pc through (block, ip) coordinates.
            for pc in 0..df.ops.len() as u32 {
                let (b, ip) = df.coords(pc);
                assert_eq!(df.flat_pc(b, ip), pc);
                assert!(ip <= f.blocks[b as usize].insts.len());
            }
        }
    }

    #[test]
    fn calls_are_classified_like_the_reference_precedence() {
        let m = sample_module();
        let img = DecodedImage::new(&m);
        let main = &img.funcs[m.function_id("main").unwrap().0 as usize];
        assert!(main
            .ops
            .iter()
            .any(|op| matches!(op, DOp::CallFn { callee, .. } if *callee == m.function_id("helper").unwrap())));
        assert!(main.ops.iter().any(|op| matches!(
            op,
            DOp::CallHost { host, .. } if host.fun == hostcalls::HostFn::Puts
        )));
        assert!(main
            .ops
            .iter()
            .any(|op| matches!(op, DOp::CallUnknown { name } if &**name == "no_such_symbol")));
    }

    #[test]
    fn module_functions_shadow_hostcalls() {
        // A module defining its own `malloc` must win over the host table,
        // exactly like the reference interpreter's resolution order.
        let mut mb = ModuleBuilder::new("m");
        let mut g = mb.function_with_params("malloc", 1);
        g.ret(Some(Operand::Imm(0)));
        g.finish();
        let mut f = mb.function("main");
        let _ = f.call("malloc", vec![Operand::Imm(8)]);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let img = DecodedImage::new(&m);
        let main = &img.funcs[m.function_id("main").unwrap().0 as usize];
        assert!(main
            .ops
            .iter()
            .any(|op| matches!(op, DOp::CallFn { .. })));
    }

    #[test]
    fn cache_returns_same_image_for_equal_modules() {
        let m1 = sample_module();
        let m2 = sample_module();
        let i1 = DecodedImage::cached(&m1);
        let i2 = DecodedImage::cached(&m2);
        assert!(Arc::ptr_eq(&i1, &i2), "structurally equal modules share");
        assert_eq!(i1.fingerprint, m1.fingerprint());

        let mut m3 = sample_module();
        m3.function_mut("helper").unwrap().num_regs += 1;
        let i3 = DecodedImage::cached(&m3);
        assert!(!Arc::ptr_eq(&i1, &i3), "different module, different image");
    }

    #[test]
    fn warm_populates_the_cache_and_reports_hits() {
        let mut m = sample_module();
        // A module no other test lowers, so the first warm is a miss.
        m.function_mut("helper").unwrap().num_regs += 7;
        let fp = m.fingerprint();
        assert!(!DecodedImage::cache_contains(fp));
        assert!(!DecodedImage::warm(&m), "first warm pays for the lowering");
        assert!(DecodedImage::cache_contains(fp));
        assert!(DecodedImage::warm(&m), "second warm is a cache hit");
    }
}
