//! Copy-on-write paged memory.
//!
//! Pages are reference-counted; [`PageTable::fork`] clones only the page
//! *table* (Arc bumps), and the first write to a shared page after a fork
//! copies it — exactly the mechanism whose cost the paper's forkserver
//! baseline pays per test case.

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// Page size in bytes (4 KiB, like Linux).
pub const PAGE_SIZE: u64 = 4096;

type Page = Arc<[u8; PAGE_SIZE as usize]>;

fn zero_page() -> Page {
    Arc::new([0u8; PAGE_SIZE as usize])
}

/// Deterministic FxHash-style hasher for page indices. Replaces the
/// default SipHash `RandomState` — cheaper per lookup on the load/store
/// hot path, and with no per-process random seed, so the table's behavior
/// is a pure function of its inputs.
#[derive(Debug, Default, Clone)]
pub struct PageHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for PageHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(FX_SEED);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(FX_SEED);
    }
}

type PageMap = HashMap<u64, Page, BuildHasherDefault<PageHasher>>;

/// A sparse, copy-on-write page table.
///
/// Unmapped pages read as zeros and are materialized on first write.
/// *Validity* of an access (is this address inside an object?) is not the
/// page table's job — [`crate::process::Process::check_access`] performs
/// region checks before touching memory.
///
/// # The read mini-TLB and CoW determinism
///
/// Reads keep a one-entry direct-mapped cache of the last page touched
/// (`tlb`), skipping the hash lookup on the common sequential-access
/// pattern. Because the cache holds an extra `Arc` reference, it could in
/// principle perturb the `strong_count > 1` copy-on-write test that the
/// teardown cycle charges depend on. Two rules make that impossible:
///
/// * a table's TLB only ever caches a page its *own* map currently holds —
///   [`PageTable::write`] invalidates the TLB entry for a page before
///   replacing the map entry, so the TLB can never outlive its map entry;
/// * [`PageTable::write`] drops its own TLB reference *before* inspecting
///   `strong_count`, so the count it sees is "maps holding this page, plus
///   foreign TLBs whose maps also hold it" — which crosses the `> 1`
///   threshold exactly when "maps holding this page" does.
///
/// Hence every CoW-fault decision, and therefore every simulated cycle
/// count, is identical to the pre-TLB table.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    pages: PageMap,
    /// Last page served by [`PageTable::read`]: `(page index, page)`.
    tlb: RefCell<Option<(u64, Page)>>,
    /// CoW faults taken since the last [`PageTable::reset_fault_count`].
    cow_faults: u64,
}

impl PageTable {
    /// Create an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident (materialized) pages.
    pub fn resident_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// CoW faults taken since the last reset.
    pub fn cow_faults(&self) -> u64 {
        self.cow_faults
    }

    /// Zero the CoW fault counter (called right after a fork is charged).
    pub fn reset_fault_count(&mut self) {
        self.cow_faults = 0;
    }

    /// Restore the CoW fault counter to a checkpointed value (resume path).
    pub fn set_cow_faults(&mut self, n: u64) {
        self.cow_faults = n;
    }

    /// Page indices whose backing differs from `parent`'s: pages this table
    /// privatized — or materialized outright — since it was forked/cloned
    /// from `parent`. Sorted, so the result is deterministic.
    pub fn private_pages_vs(&self, parent: &PageTable) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .pages
            .iter()
            .filter(|(idx, page)| match parent.pages.get(idx) {
                Some(pp) => !Arc::ptr_eq(page, pp),
                None => true,
            })
            .map(|(idx, _)| *idx)
            .collect();
        out.sort_unstable();
        out
    }

    /// Unshare (or materialize) `page_idx` without counting a CoW fault.
    /// The resume path uses this to rebuild a checkpointed process's
    /// page-ownership state: the fault was already taken before the kill
    /// and travels in the restored counter, so counting it again here
    /// would double-charge the eventual teardown.
    pub fn privatize(&mut self, page_idx: u64) {
        {
            let mut tlb = self.tlb.borrow_mut();
            if matches!(*tlb, Some((ci, _)) if ci == page_idx) {
                *tlb = None;
            }
        }
        let entry = self.pages.entry(page_idx).or_insert_with(zero_page);
        if Arc::strong_count(entry) > 1 {
            *entry = Arc::new(**entry);
        }
    }

    /// Duplicate the table the way `fork(2)` does: share all pages.
    /// The child starts with a cold TLB.
    pub fn fork(&self) -> PageTable {
        PageTable {
            pages: self.pages.clone(),
            tlb: RefCell::new(None),
            cow_faults: 0,
        }
    }

    /// Read `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        let page_idx = addr / PAGE_SIZE;
        let in_page = (addr % PAGE_SIZE) as usize;
        if in_page + buf.len() <= PAGE_SIZE as usize {
            // Single-page fast path through the mini-TLB.
            if let Some((ci, p)) = self.tlb.borrow().as_ref() {
                if *ci == page_idx {
                    buf.copy_from_slice(&p[in_page..in_page + buf.len()]);
                    return;
                }
            }
            match self.pages.get(&page_idx) {
                Some(p) => {
                    buf.copy_from_slice(&p[in_page..in_page + buf.len()]);
                    *self.tlb.borrow_mut() = Some((page_idx, Arc::clone(p)));
                }
                None => buf.fill(0),
            }
            return;
        }
        let mut a = addr;
        let mut off = 0;
        while off < buf.len() {
            let page_idx = a / PAGE_SIZE;
            let in_page = (a % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(buf.len() - off);
            match self.pages.get(&page_idx) {
                Some(p) => buf[off..off + n].copy_from_slice(&p[in_page..in_page + n]),
                None => buf[off..off + n].fill(0),
            }
            a += n as u64;
            off += n;
        }
    }

    /// Write `buf` starting at `addr`, taking CoW faults as needed.
    pub fn write(&mut self, addr: u64, buf: &[u8]) {
        let mut a = addr;
        let mut off = 0;
        while off < buf.len() {
            let page_idx = a / PAGE_SIZE;
            let in_page = (a % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(buf.len() - off);
            // Drop our own TLB reference to this page *before* the CoW
            // strong-count test — see the type-level comment.
            {
                let mut tlb = self.tlb.borrow_mut();
                if matches!(*tlb, Some((ci, _)) if ci == page_idx) {
                    *tlb = None;
                }
            }
            let entry = self.pages.entry(page_idx).or_insert_with(zero_page);
            if Arc::strong_count(entry) > 1 {
                // Copy-on-write fault: this page is shared with another
                // process (post-fork); duplicate before writing.
                *entry = Arc::new(**entry);
                self.cow_faults += 1;
            }
            let page = Arc::get_mut(entry).expect("just un-shared");
            page[in_page..in_page + n].copy_from_slice(&buf[off..off + n]);
            a += n as u64;
            off += n;
        }
    }

    /// Read a little-endian unsigned integer of `width` bytes (1/2/4/8).
    pub fn read_uint(&self, addr: u64, width: u64) -> u64 {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf[..width as usize]);
        u64::from_le_bytes(buf)
    }

    /// Write the low `width` bytes of `value`, little-endian.
    pub fn write_uint(&mut self, addr: u64, value: u64, width: u64) {
        let bytes = value.to_le_bytes();
        self.write(addr, &bytes[..width as usize]);
    }

    /// Read a NUL-terminated string (capped at `max` bytes).
    ///
    /// Works in page-sized runs — one table lookup per page, then a memchr
    /// for the NUL inside the run — instead of one lookup per byte. An
    /// unmapped page reads as zeros, i.e. an immediate terminator.
    pub fn read_cstr(&self, addr: u64, max: usize) -> Vec<u8> {
        let mut out = Vec::new();
        let mut a = addr;
        while out.len() < max {
            let page_idx = a / PAGE_SIZE;
            let in_page = (a % PAGE_SIZE) as usize;
            let run = ((PAGE_SIZE as usize) - in_page).min(max - out.len());
            let Some(p) = self.pages.get(&page_idx) else {
                return out;
            };
            let chunk = &p[in_page..in_page + run];
            match chunk.iter().position(|&b| b == 0) {
                Some(n) => {
                    out.extend_from_slice(&chunk[..n]);
                    return out;
                }
                None => out.extend_from_slice(chunk),
            }
            a += run as u64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero() {
        let pt = PageTable::new();
        let mut buf = [0xAAu8; 16];
        pt.read(0x5000, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn write_read_roundtrip_across_page_boundary() {
        let mut pt = PageTable::new();
        let addr = PAGE_SIZE - 3; // straddles two pages
        let data: Vec<u8> = (0..10).collect();
        pt.write(addr, &data);
        let mut back = [0u8; 10];
        pt.read(addr, &mut back);
        assert_eq!(&back[..], &data[..]);
        assert_eq!(pt.resident_pages(), 2);
    }

    #[test]
    fn uint_roundtrip_all_widths() {
        let mut pt = PageTable::new();
        for (w, v) in [(1, 0xAB), (2, 0xBEEF), (4, 0xDEADBEEF), (8, u64::MAX - 5)] {
            pt.write_uint(0x100, v, w);
            assert_eq!(pt.read_uint(0x100, w), v & mask(w));
        }
        fn mask(w: u64) -> u64 {
            if w == 8 {
                u64::MAX
            } else {
                (1u64 << (w * 8)) - 1
            }
        }
    }

    #[test]
    fn fork_shares_then_cow_on_write() {
        let mut parent = PageTable::new();
        parent.write_uint(0x1000, 42, 8);
        parent.write_uint(0x3000, 7, 8);
        let mut child = parent.fork();
        assert_eq!(child.cow_faults(), 0);
        assert_eq!(child.read_uint(0x1000, 8), 42);

        // Child writes: must not be visible in parent, must count a fault.
        child.write_uint(0x1000, 99, 8);
        assert_eq!(child.cow_faults(), 1);
        assert_eq!(parent.read_uint(0x1000, 8), 42);
        assert_eq!(child.read_uint(0x1000, 8), 99);

        // Untouched page still shared and equal.
        assert_eq!(parent.read_uint(0x3000, 8), child.read_uint(0x3000, 8));
    }

    #[test]
    fn parent_write_after_fork_also_faults() {
        let mut parent = PageTable::new();
        parent.write_uint(0x1000, 1, 8);
        let child = parent.fork();
        parent.reset_fault_count();
        parent.write_uint(0x1008, 2, 8);
        assert_eq!(parent.cow_faults(), 1);
        assert_eq!(child.read_uint(0x1008, 8), 0);
    }

    #[test]
    fn second_write_to_same_page_does_not_fault_again() {
        let mut parent = PageTable::new();
        parent.write_uint(0x1000, 1, 8);
        let mut child = parent.fork();
        child.write_uint(0x1000, 2, 8);
        child.write_uint(0x1010, 3, 8);
        assert_eq!(child.cow_faults(), 1);
    }

    #[test]
    fn cstr_reading() {
        let mut pt = PageTable::new();
        pt.write(0x200, b"hello\0world");
        assert_eq!(pt.read_cstr(0x200, 64), b"hello");
        assert_eq!(pt.read_cstr(0x200, 3), b"hel"); // cap respected
    }

    #[test]
    fn cstr_spans_pages_and_stops_at_unmapped() {
        let mut pt = PageTable::new();
        // String crossing a page boundary, NUL on the second page.
        let start = PAGE_SIZE - 4;
        pt.write(start, b"abcdefgh\0tail");
        assert_eq!(pt.read_cstr(start, 64), b"abcdefgh");
        // Cap lands exactly on the boundary.
        assert_eq!(pt.read_cstr(start, 4), b"abcd");
        // No NUL before an unmapped page: the zero page terminates.
        let mut q = PageTable::new();
        let tail = PAGE_SIZE - 2;
        q.write(tail, b"xy"); // fills to end of page 0; page 1 unmapped
        assert_eq!(q.read_cstr(tail, 64), b"xy");
        // Entirely unmapped → empty.
        assert_eq!(q.read_cstr(0x9000, 64), b"");
    }

    #[test]
    fn tlb_does_not_perturb_cow_fault_decisions() {
        let mut parent = PageTable::new();
        parent.write_uint(0x1000, 42, 8);
        // Warm the parent's TLB on the page it will write next: without the
        // invalidate-before-count rule this self-reference would fake a
        // shared page and charge a spurious fault.
        assert_eq!(parent.read_uint(0x1000, 8), 42);
        parent.reset_fault_count();
        parent.write_uint(0x1000, 43, 8);
        assert_eq!(parent.cow_faults(), 0, "exclusive page must not fault");

        // Shared page still faults exactly once even with both TLBs warm.
        let mut child = parent.fork();
        assert_eq!(child.read_uint(0x1000, 8), 43);
        assert_eq!(parent.read_uint(0x1000, 8), 43);
        child.write_uint(0x1000, 99, 8);
        assert_eq!(child.cow_faults(), 1);
        child.write_uint(0x1008, 7, 8);
        assert_eq!(child.cow_faults(), 1, "page already private");
        assert_eq!(parent.read_uint(0x1000, 8), 43);
        assert_eq!(child.read_uint(0x1000, 8), 99);
    }

    #[test]
    fn tlb_reads_see_writes_through_same_table() {
        let mut pt = PageTable::new();
        pt.write_uint(0x2000, 1, 8);
        assert_eq!(pt.read_uint(0x2000, 8), 1); // TLB now warm
        pt.write_uint(0x2000, 2, 8); // invalidates TLB entry
        assert_eq!(pt.read_uint(0x2000, 8), 2, "no stale TLB read");
    }
}
