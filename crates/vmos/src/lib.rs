//! # vmos — the simulated operating system and FIR interpreter
//!
//! The ClosureX paper evaluates process-management mechanisms on a real
//! Linux kernel. This crate is the reproduction's substitute substrate: a
//! deterministic, cycle-accounted virtual machine that executes [`fir`]
//! modules inside simulated [`process::Process`]es managed by a simulated
//! [`os::Os`].
//!
//! It provides everything the paper's execution-mechanism continuum needs:
//!
//! * **copy-on-write paged memory** ([`mem`]) so `fork()` has realistic
//!   page-table-copy + CoW-fault costs,
//! * a **heap allocator with error detection** ([`heap`]) — use-after-free,
//!   double-free, out-of-bounds and leak enumeration (the Valgrind stand-in),
//! * a **file-descriptor table** with an `RLIMIT_NOFILE` analog ([`fd`]),
//! * a **simulated libc** ([`hostcalls`]) including `malloc`-family,
//!   `fopen`-family, `exit`, `setjmp`/`longjmp`, and the ClosureX runtime
//!   hooks installed by the compiler passes,
//! * an **interpreter** ([`interp`]) with instruction-level cycle accounting
//!   and AFL-style edge-coverage collection ([`cov`]),
//! * a **cost model** ([`cost`]) for `fork`/`exec`/teardown/restore charges,
//! * a **fault-injection plane** ([`fault`]) — seeded, deterministic
//!   malloc-NULL / fopen-fail / fork-fail / fd-leak / restore-bit-flip
//!   injection for resilience evaluation (disabled by default),
//! * a **binary wire codec** ([`wire`]) — bounds-checked, checksummed
//!   encode/decode primitives used by the campaign checkpoint files
//!   (the `serde` shim is one-way, JSON-out only).

pub mod cost;
pub mod cov;
pub mod crash;
pub mod decoded;
pub mod engine;
pub mod fault;
pub mod fd;
pub mod fs;
pub mod heap;
pub mod hostcalls;
pub mod interp;
pub mod layout;
pub mod mem;
pub mod os;
pub mod process;
pub mod wire;

#[cfg(test)]
mod proptests;

pub use cost::CostModel;
pub use cov::{CovMap, MAP_SIZE};
pub use crash::{Crash, CrashKind};
pub use decoded::{
    decode_counters, reset_decode_counters, DecodeCounters, DecodedImage, OptStats, WarmSource,
};
pub use engine::{
    decode_opt, reference_engine, set_decode_opt, set_reference_engine, DecodeOptGuard,
    ReferenceEngineGuard,
};
pub use fault::{
    DiskFault, DiskFaultKind, DiskFaultPlan, FaultKind, FaultPlan, FaultPlane, NetFault,
    NetFaultKind, NetFaultPlan, OrchFault, OrchFaultKind, OrchFaultPlan, ProcFault,
    ProcFaultKind, ProcFaultPlan,
};
pub use interp::{CallOutcome, CallResult, HostCtx, Machine};
pub use os::{Os, OsError};
pub use process::Process;
pub use wire::{
    read_frame, write_frame, FrameError, Reader, WireError, Writer, FRAME_HEADER_LEN, FRAME_MAGIC,
    FRAME_PREFIX_LEN, MAX_FRAME_LEN,
};
