//! The simulated kernel: owns the filesystem and the cost model, and
//! implements the process-management primitives whose overheads the paper's
//! execution-mechanism continuum compares.

use fir::Module;

use crate::cost::CostModel;
use crate::fault::{FaultKind, FaultPlane};
use crate::fs::SimFs;
use crate::process::Process;

/// Process-management failure surfaced by the fallible spawn/fork entry
/// points (today always fault-injected resource exhaustion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsError {
    /// `fork(2)` refused — simulated EAGAIN (process table full).
    ForkFailed,
    /// `fork`+`exec` refused at the fork step.
    SpawnFailed,
}

impl std::fmt::Display for OsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsError::ForkFailed => write!(f, "fork failed: resource temporarily unavailable"),
            OsError::SpawnFailed => write!(f, "spawn failed: resource temporarily unavailable"),
        }
    }
}

impl std::error::Error for OsError {}

/// Default heap limit per process (a scaled-down 3.5 GB Azure instance).
pub const DEFAULT_HEAP_LIMIT: u64 = 64 << 20;
/// Default `RLIMIT_NOFILE` analog.
pub const DEFAULT_FD_LIMIT: usize = 64;

/// The simulated OS.
#[derive(Debug, Clone)]
pub struct Os {
    /// Shared filesystem.
    pub fs: SimFs,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Per-process heap limit in bytes.
    pub heap_limit: u64,
    /// Per-process descriptor limit.
    pub fd_limit: usize,
    next_pid: u32,
    /// Total cycles spent on process management (fork/exec/teardown).
    pub mgmt_cycles: u64,
    /// Fault-injection plane (defaults to disabled: no behavior change).
    pub fault: FaultPlane,
}

impl Default for Os {
    fn default() -> Self {
        Self::new()
    }
}

impl Os {
    /// A fresh OS with default limits and cost model.
    pub fn new() -> Self {
        Os {
            fs: SimFs::new(),
            cost: CostModel::default(),
            heap_limit: DEFAULT_HEAP_LIMIT,
            fd_limit: DEFAULT_FD_LIMIT,
            next_pid: 1,
            mgmt_cycles: 0,
            fault: FaultPlane::disabled(),
        }
    }

    /// Advance the pid counter without creating processes. Used by the
    /// correctness checker to vary the ASLR/PRNG seeds of otherwise
    /// identical fresh runs (paper §6.1.4's repeated ground-truth runs).
    pub fn skip_pids(&mut self, n: u32) {
        self.next_pid = self.next_pid.wrapping_add(n);
    }

    /// `fork(2)` + `exec(2)`: create a process and load `module` into it.
    /// Returns the process and the cycles charged (exec cost scales with
    /// image size).
    pub fn spawn(&mut self, module: &Module) -> (Process, u64) {
        let pid = self.next_pid;
        self.next_pid += 1;
        let p = Process::load(module, self.heap_limit, self.fd_limit, pid);
        let cycles = self.cost.exec(fir::image::image_size(module)) + self.cost.fork(0);
        self.mgmt_cycles += cycles;
        (p, cycles)
    }

    /// `fork(2)`: duplicate a process copy-on-write. Returns the child and
    /// the cycles charged (scales with the parent's resident pages).
    pub fn fork(&mut self, parent: &Process) -> (Process, u64) {
        // Build the child around `mem.fork()` directly rather than cloning
        // the parent wholesale and overwriting `mem` — the page table is
        // the largest field, and the discarded clone was pure waste on the
        // forkserver's per-test-case path.
        let mut child = Process {
            mem: parent.mem.fork(),
            heap: parent.heap.clone(),
            fds: parent.fds.clone(),
            globals: parent.globals.clone(),
            frames: parent.frames.clone(),
            sp: parent.sp,
            cov_state: parent.cov_state,
            rt: parent.rt.clone(),
            jmpbufs: parent.jmpbufs.clone(),
            rng_state: parent.rng_state,
            stdout: parent.stdout.clone(),
            pid: parent.pid,
        };
        child.pid = self.next_pid;
        self.next_pid += 1;
        let cycles = self.cost.fork(parent.mem.resident_pages());
        self.mgmt_cycles += cycles;
        (child, cycles)
    }

    /// [`Os::spawn`], but consults the fault plane first: under an active
    /// plan the fork step can refuse with [`OsError::SpawnFailed`]. A failed
    /// attempt still charges the fork cost (the kernel did the work of
    /// discovering the failure).
    ///
    /// # Errors
    /// [`OsError::SpawnFailed`] when the fault plane injects a fork failure.
    pub fn try_spawn(&mut self, module: &Module) -> Result<(Process, u64), OsError> {
        if self.fault.roll(FaultKind::ForkFail) {
            let cycles = self.cost.fork(0);
            self.mgmt_cycles += cycles;
            return Err(OsError::SpawnFailed);
        }
        Ok(self.spawn(module))
    }

    /// [`Os::fork`], but consults the fault plane first.
    ///
    /// # Errors
    /// [`OsError::ForkFailed`] when the fault plane injects a fork failure.
    pub fn try_fork(&mut self, parent: &Process) -> Result<(Process, u64), OsError> {
        if self.fault.roll(FaultKind::ForkFail) {
            let cycles = self.cost.fork(0);
            self.mgmt_cycles += cycles;
            return Err(OsError::ForkFailed);
        }
        Ok(self.fork(parent))
    }

    /// Tear a process down (`exit` + kernel reaping). Returns cycles charged,
    /// including the copy-on-write faults the child accumulated.
    pub fn teardown(&mut self, p: Process) -> u64 {
        let cycles =
            self.cost.teardown(p.mem.resident_pages()) + p.mem.cow_faults() * self.cost.cow_fault;
        self.mgmt_cycles += cycles;
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::ModuleBuilder;
    use fir::Global;

    fn module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        mb.global(Global::zeroed("g", 4096));
        let mut f = mb.function("main");
        f.ret(Some(fir::Operand::Imm(0)));
        f.finish();
        mb.finish()
    }

    #[test]
    fn spawn_assigns_unique_pids_and_charges_exec() {
        let mut os = Os::new();
        let m = module();
        let (p1, c1) = os.spawn(&m);
        let (p2, _) = os.spawn(&m);
        assert_ne!(p1.pid, p2.pid);
        assert!(c1 >= os.cost.exec_base);
        assert!(os.mgmt_cycles >= c1);
    }

    #[test]
    fn fork_is_cheaper_than_spawn_and_isolates_memory() {
        let mut os = Os::new();
        let m = module();
        let (mut parent, spawn_cost) = os.spawn(&m);
        let g = parent.globals.addr_of_name("g").unwrap();
        parent.mem.write_uint(g, 5, 8);
        let (mut child, fork_cost) = os.fork(&parent);
        assert!(fork_cost < spawn_cost);
        child.mem.write_uint(g, 77, 8);
        assert_eq!(parent.mem.read_uint(g, 8), 5, "parent unaffected");
        assert_eq!(child.mem.read_uint(g, 8), 77);
    }

    #[test]
    fn try_fork_and_spawn_fail_under_certain_fault_plan() {
        use crate::fault::{FaultPlan, FaultPlane};
        let mut os = Os::new();
        let m = module();
        let (parent, _) = os.spawn(&m);
        os.fault = FaultPlane::new(FaultPlan {
            fork_fail: 1.0,
            ..FaultPlan::none()
        });
        let before = os.mgmt_cycles;
        assert_eq!(os.try_fork(&parent).unwrap_err(), OsError::ForkFailed);
        assert_eq!(os.try_spawn(&m).unwrap_err(), OsError::SpawnFailed);
        assert!(os.mgmt_cycles > before, "failed attempts still cost cycles");
        os.fault = FaultPlane::disabled();
        assert!(os.try_fork(&parent).is_ok());
        assert!(os.try_spawn(&m).is_ok());
    }

    #[test]
    fn teardown_charges_cow_faults() {
        let mut os = Os::new();
        let m = module();
        let (mut parent, _) = os.spawn(&m);
        let g = parent.globals.addr_of_name("g").unwrap();
        parent.mem.write_uint(g, 5, 8);
        let (mut child, _) = os.fork(&parent);
        let plain = os.cost.teardown(child.mem.resident_pages());
        child.mem.write_uint(g, 1, 8); // one CoW fault
        let charged = os.teardown(child);
        assert_eq!(charged, plain + os.cost.cow_fault);
    }
}
