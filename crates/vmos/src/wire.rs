//! Minimal binary wire codec for checkpoint files.
//!
//! The offline `serde` shim only *serializes* (to JSON, for reports); the
//! campaign checkpoint subsystem needs a true round trip plus hostile-input
//! tolerance: a truncated or bit-flipped file must decode to an error,
//! never a panic. This module provides bounds-checked little-endian
//! primitives ([`Writer`]/[`Reader`]), the FNV-1a digest checkpoints are
//! checksummed with, and codecs for the `vmos` types campaign state embeds
//! ([`crate::Crash`], [`crate::cov::VirginMap`]).
//!
//! Framing conventions used by every consumer:
//!
//! * integers are little-endian, fixed width;
//! * byte strings are a `u64` length followed by the raw bytes, and the
//!   length is validated against the bytes actually remaining, so a
//!   corrupted length field reads as [`WireError::Truncated`] rather than
//!   an allocation bomb;
//! * enums are a `u8` tag; unknown tags are [`WireError::Malformed`].

use crate::cov::{VirginMap, MAP_SIZE};
use crate::crash::{Crash, CrashKind};

/// Decoding failure. Decoders return this for any malformed input; they
/// must never panic, whatever the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did (or a length field claimed
    /// more bytes than remain).
    Truncated,
    /// Structurally invalid data: unknown enum tag, bad UTF-8, wrong
    /// section size.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire data truncated"),
            WireError::Malformed(what) => write!(f, "malformed wire data: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over `bytes` — the digest checkpoint payloads are sealed with.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Bounds-checked decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reader over `buf`, starting at the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed — decoders should check this
    /// at the end so trailing garbage is rejected, not ignored.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool. Only 0/1 are valid; any other byte is malformed —
    /// corruption must not decode silently.
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool tag")),
        }
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a `u64` and narrow it to `usize`, checking it fits in the
    /// bytes that remain (so corrupt lengths cannot trigger huge
    /// allocations).
    pub fn get_len(&mut self) -> Result<usize, WireError> {
        let v = self.get_u64()?;
        if v > self.remaining() as u64 {
            return Err(WireError::Truncated);
        }
        Ok(v as usize)
    }

    /// Read a `u64` narrowed to usize *without* the remaining-bytes bound
    /// (for counts of fixed-size records; callers must bound it).
    pub fn get_count(&mut self) -> Result<usize, WireError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| WireError::Malformed("count overflows usize"))
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.get_len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let b = self.get_bytes()?;
        String::from_utf8(b).map_err(|_| WireError::Malformed("utf-8 string"))
    }
}

/// Encode a list of virgin-map byte patches `(index, merged byte)` — the
/// coverage half of a shard merge record and of a journal delta. Each patch
/// is a `u32` map index plus the byte value; the count is a `u64` prefix.
pub fn put_byte_patches(w: &mut Writer, patches: &[(usize, u8)]) {
    w.put_usize(patches.len());
    for &(i, v) in patches {
        w.put_u32(i as u32);
        w.put_u8(v);
    }
}

/// Decode a patch list written by [`put_byte_patches`], validating every
/// index against [`MAP_SIZE`] so a corrupt record cannot index out of the
/// map.
///
/// # Errors
/// [`WireError`] on truncation or an out-of-range index.
pub fn get_byte_patches(r: &mut Reader<'_>) -> Result<Vec<(usize, u8)>, WireError> {
    let n = r.get_count()?;
    // Each patch is 5 bytes; bound the count by the bytes that remain so a
    // corrupt prefix cannot trigger a huge allocation.
    if n > r.remaining() / 5 {
        return Err(WireError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let i = r.get_u32()? as usize;
        if i >= MAP_SIZE {
            return Err(WireError::Malformed("patch index out of map"));
        }
        out.push((i, r.get_u8()?));
    }
    Ok(out)
}

impl CrashKind {
    /// Stable wire tag (checkpoint format v1; append-only).
    pub fn wire_tag(self) -> u8 {
        match self {
            CrashKind::NullPtrDeref => 0,
            CrashKind::DivisionByZero => 1,
            CrashKind::UnaddressableAccess => 2,
            CrashKind::InvalidRead => 3,
            CrashKind::InvalidWrite => 4,
            CrashKind::NegativeSizeMemcpy => 5,
            CrashKind::OutOfBoundsAccess => 6,
            CrashKind::DoubleFree => 7,
            CrashKind::InvalidFree => 8,
            CrashKind::FdExhaustion => 9,
            CrashKind::OutOfMemory => 10,
            CrashKind::StackOverflow => 11,
            CrashKind::Abort => 12,
            CrashKind::UnreachableExecuted => 13,
            CrashKind::BadLongjmp => 14,
        }
    }

    /// Inverse of [`CrashKind::wire_tag`].
    ///
    /// # Errors
    /// [`WireError::Malformed`] on an unknown tag.
    pub fn from_wire_tag(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0 => CrashKind::NullPtrDeref,
            1 => CrashKind::DivisionByZero,
            2 => CrashKind::UnaddressableAccess,
            3 => CrashKind::InvalidRead,
            4 => CrashKind::InvalidWrite,
            5 => CrashKind::NegativeSizeMemcpy,
            6 => CrashKind::OutOfBoundsAccess,
            7 => CrashKind::DoubleFree,
            8 => CrashKind::InvalidFree,
            9 => CrashKind::FdExhaustion,
            10 => CrashKind::OutOfMemory,
            11 => CrashKind::StackOverflow,
            12 => CrashKind::Abort,
            13 => CrashKind::UnreachableExecuted,
            14 => CrashKind::BadLongjmp,
            _ => return Err(WireError::Malformed("crash kind tag")),
        })
    }
}

impl Crash {
    /// Encode into `w` (checkpoint format v1).
    pub fn encode(&self, w: &mut Writer) {
        w.put_u8(self.kind.wire_tag());
        w.put_str(&self.function);
        w.put_u32(self.block);
        w.put_str(&self.detail);
    }

    /// Decode from `r`.
    ///
    /// # Errors
    /// [`WireError`] on truncated or malformed bytes.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Crash {
            kind: CrashKind::from_wire_tag(r.get_u8()?)?,
            function: r.get_str()?,
            block: r.get_u32()?,
            detail: r.get_str()?,
        })
    }
}

impl VirginMap {
    /// Encode the accumulated coverage map into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }

    /// Decode a map encoded by [`VirginMap::encode`].
    ///
    /// # Errors
    /// [`WireError`] when truncated or not exactly [`MAP_SIZE`] bytes.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = r.get_bytes()?;
        if bytes.len() != MAP_SIZE {
            return Err(WireError::Malformed("virgin map size"));
        }
        Ok(VirginMap::from_saved(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_bytes(b"hello");
        w.put_str("wörld");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "wörld");
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.put_bytes(&[1, 2, 3, 4, 5]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.get_bytes().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corrupt_length_cannot_allocate() {
        // A length field of u64::MAX must be rejected by the remaining-
        // bytes bound, not passed to Vec::with_capacity.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        w.put_u8(0);
        let bytes = w.into_bytes();
        assert_eq!(
            Reader::new(&bytes).get_bytes().unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn crash_kind_tags_round_trip() {
        for kind in [
            CrashKind::NullPtrDeref,
            CrashKind::DivisionByZero,
            CrashKind::UnaddressableAccess,
            CrashKind::InvalidRead,
            CrashKind::InvalidWrite,
            CrashKind::NegativeSizeMemcpy,
            CrashKind::OutOfBoundsAccess,
            CrashKind::DoubleFree,
            CrashKind::InvalidFree,
            CrashKind::FdExhaustion,
            CrashKind::OutOfMemory,
            CrashKind::StackOverflow,
            CrashKind::Abort,
            CrashKind::UnreachableExecuted,
            CrashKind::BadLongjmp,
        ] {
            assert_eq!(CrashKind::from_wire_tag(kind.wire_tag()).unwrap(), kind);
        }
        assert!(CrashKind::from_wire_tag(200).is_err());
    }

    #[test]
    fn crash_round_trips() {
        let c = Crash {
            kind: CrashKind::InvalidWrite,
            function: "parse_header".into(),
            block: 42,
            detail: "addr=0x1000 size=8".into(),
        };
        let mut w = Writer::new();
        c.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Crash::decode(&mut r).unwrap(), c);
        assert!(r.is_empty());
    }

    #[test]
    fn virgin_map_round_trips_with_edge_count() {
        let mut v = VirginMap::new();
        let mut run = crate::CovMap::new();
        run.hit(3);
        run.hit(700);
        v.merge(&run);
        let mut w = Writer::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let decoded = VirginMap::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(decoded.edges_found(), v.edges_found());
        assert_eq!(decoded.as_bytes(), v.as_bytes());
    }

    #[test]
    fn virgin_map_wrong_size_rejected() {
        let mut w = Writer::new();
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        assert!(VirginMap::decode(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn byte_patches_round_trip_and_reject_corruption() {
        let patches = vec![(0usize, 1u8), (65535, 0x80), (300, 0x24)];
        let mut w = Writer::new();
        put_byte_patches(&mut w, &patches);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(get_byte_patches(&mut r).unwrap(), patches);
        assert!(r.is_empty());

        // Truncation anywhere is an error, never a panic.
        for cut in 0..bytes.len() {
            assert!(get_byte_patches(&mut Reader::new(&bytes[..cut])).is_err());
        }
        // Out-of-map index is malformed.
        let mut w = Writer::new();
        w.put_usize(1);
        w.put_u32(MAP_SIZE as u32);
        w.put_u8(1);
        let bad = w.into_bytes();
        assert_eq!(
            get_byte_patches(&mut Reader::new(&bad)).unwrap_err(),
            WireError::Malformed("patch index out of map")
        );
        // A count claiming more patches than bytes remain cannot allocate.
        let mut w = Writer::new();
        w.put_u64(u64::MAX / 8);
        let bomb = w.into_bytes();
        assert_eq!(
            get_byte_patches(&mut Reader::new(&bomb)).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn fnv1a_matches_known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
