//! Minimal binary wire codec for checkpoint files.
//!
//! The offline `serde` shim only *serializes* (to JSON, for reports); the
//! campaign checkpoint subsystem needs a true round trip plus hostile-input
//! tolerance: a truncated or bit-flipped file must decode to an error,
//! never a panic. This module provides bounds-checked little-endian
//! primitives ([`Writer`]/[`Reader`]), the FNV-1a digest checkpoints are
//! checksummed with, and codecs for the `vmos` types campaign state embeds
//! ([`crate::Crash`], [`crate::cov::VirginMap`]).
//!
//! Framing conventions used by every consumer:
//!
//! * integers are little-endian, fixed width;
//! * byte strings are a `u64` length followed by the raw bytes, and the
//!   length is validated against the bytes actually remaining, so a
//!   corrupted length field reads as [`WireError::Truncated`] rather than
//!   an allocation bomb;
//! * enums are a `u8` tag; unknown tags are [`WireError::Malformed`].

use crate::cov::{VirginMap, MAP_SIZE};
use crate::crash::{Crash, CrashKind};

/// Decoding failure. Decoders return this for any malformed input; they
/// must never panic, whatever the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did (or a length field claimed
    /// more bytes than remain).
    Truncated,
    /// Structurally invalid data: unknown enum tag, bad UTF-8, wrong
    /// section size.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire data truncated"),
            WireError::Malformed(what) => write!(f, "malformed wire data: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a offset basis (the digest of the empty string).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold `bytes` into a running FNV-1a digest `h`.
fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a over `bytes` — the digest checkpoint payloads are sealed with.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV_OFFSET, bytes)
}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64` (two's-complement bit pattern).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Bounds-checked decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reader over `buf`, starting at the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed — decoders should check this
    /// at the end so trailing garbage is rejected, not ignored.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool. Only 0/1 are valid; any other byte is malformed —
    /// corruption must not decode silently.
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool tag")),
        }
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes(b.try_into().expect("2 bytes")))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a `u64` and narrow it to `usize`, checking it fits in the
    /// bytes that remain (so corrupt lengths cannot trigger huge
    /// allocations).
    pub fn get_len(&mut self) -> Result<usize, WireError> {
        let v = self.get_u64()?;
        if v > self.remaining() as u64 {
            return Err(WireError::Truncated);
        }
        Ok(v as usize)
    }

    /// Read a `u64` narrowed to usize *without* the remaining-bytes bound
    /// (for counts of fixed-size records; callers must bound it).
    pub fn get_count(&mut self) -> Result<usize, WireError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| WireError::Malformed("count overflows usize"))
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.get_len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let b = self.get_bytes()?;
        String::from_utf8(b).map_err(|_| WireError::Malformed("utf-8 string"))
    }
}

/// Encode a list of virgin-map byte patches `(index, merged byte)` — the
/// coverage half of a shard merge record and of a journal delta. Each patch
/// is a `u32` map index plus the byte value; the count is a `u64` prefix.
pub fn put_byte_patches(w: &mut Writer, patches: &[(usize, u8)]) {
    w.put_usize(patches.len());
    for &(i, v) in patches {
        w.put_u32(i as u32);
        w.put_u8(v);
    }
}

/// Decode a patch list written by [`put_byte_patches`], validating every
/// index against [`MAP_SIZE`] so a corrupt record cannot index out of the
/// map.
///
/// # Errors
/// [`WireError`] on truncation or an out-of-range index.
pub fn get_byte_patches(r: &mut Reader<'_>) -> Result<Vec<(usize, u8)>, WireError> {
    let n = r.get_count()?;
    // Each patch is 5 bytes; bound the count by the bytes that remain so a
    // corrupt prefix cannot trigger a huge allocation.
    if n > r.remaining() / 5 {
        return Err(WireError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let i = r.get_u32()? as usize;
        if i >= MAP_SIZE {
            return Err(WireError::Malformed("patch index out of map"));
        }
        out.push((i, r.get_u8()?));
    }
    Ok(out)
}

impl CrashKind {
    /// Stable wire tag (checkpoint format v1; append-only).
    pub fn wire_tag(self) -> u8 {
        match self {
            CrashKind::NullPtrDeref => 0,
            CrashKind::DivisionByZero => 1,
            CrashKind::UnaddressableAccess => 2,
            CrashKind::InvalidRead => 3,
            CrashKind::InvalidWrite => 4,
            CrashKind::NegativeSizeMemcpy => 5,
            CrashKind::OutOfBoundsAccess => 6,
            CrashKind::DoubleFree => 7,
            CrashKind::InvalidFree => 8,
            CrashKind::FdExhaustion => 9,
            CrashKind::OutOfMemory => 10,
            CrashKind::StackOverflow => 11,
            CrashKind::Abort => 12,
            CrashKind::UnreachableExecuted => 13,
            CrashKind::BadLongjmp => 14,
        }
    }

    /// Inverse of [`CrashKind::wire_tag`].
    ///
    /// # Errors
    /// [`WireError::Malformed`] on an unknown tag.
    pub fn from_wire_tag(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0 => CrashKind::NullPtrDeref,
            1 => CrashKind::DivisionByZero,
            2 => CrashKind::UnaddressableAccess,
            3 => CrashKind::InvalidRead,
            4 => CrashKind::InvalidWrite,
            5 => CrashKind::NegativeSizeMemcpy,
            6 => CrashKind::OutOfBoundsAccess,
            7 => CrashKind::DoubleFree,
            8 => CrashKind::InvalidFree,
            9 => CrashKind::FdExhaustion,
            10 => CrashKind::OutOfMemory,
            11 => CrashKind::StackOverflow,
            12 => CrashKind::Abort,
            13 => CrashKind::UnreachableExecuted,
            14 => CrashKind::BadLongjmp,
            _ => return Err(WireError::Malformed("crash kind tag")),
        })
    }
}

impl Crash {
    /// Encode into `w` (checkpoint format v1).
    pub fn encode(&self, w: &mut Writer) {
        w.put_u8(self.kind.wire_tag());
        w.put_str(&self.function);
        w.put_u32(self.block);
        w.put_str(&self.detail);
    }

    /// Decode from `r`.
    ///
    /// # Errors
    /// [`WireError`] on truncated or malformed bytes.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Crash {
            kind: CrashKind::from_wire_tag(r.get_u8()?)?,
            function: r.get_str()?,
            block: r.get_u32()?,
            detail: r.get_str()?,
        })
    }
}

impl VirginMap {
    /// Encode the accumulated coverage map into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }

    /// Decode a map encoded by [`VirginMap::encode`].
    ///
    /// # Errors
    /// [`WireError`] when truncated or not exactly [`MAP_SIZE`] bytes.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = r.get_bytes()?;
        if bytes.len() != MAP_SIZE {
            return Err(WireError::Malformed("virgin map size"));
        }
        Ok(VirginMap::from_saved(bytes))
    }
}

// ---------------------------------------------------------------------------
// Stream framing: the supervisor ⇄ worker wire protocol's transport layer.
// ---------------------------------------------------------------------------

/// Magic opening every frame on a supervisor ⇄ worker pipe.
pub const FRAME_MAGIC: [u8; 4] = *b"CXFR";

/// Frame header size: magic (4) + kind (1) + payload length (4, LE) +
/// FNV-1a checksum (8, LE).
pub const FRAME_HEADER_LEN: usize = 17;

/// The header's *length prefix* region: magic (4) + kind (1) + payload
/// length (4). A peer that closes the stream before these 9 bytes
/// complete never committed to a frame, so the reader reports a clean
/// disconnect ([`FrameError::Eof`]) rather than a torn frame — the
/// distinction supervisors use to tell "the peer went away" from "the
/// peer died mid-write" (see [`read_frame`]).
pub const FRAME_PREFIX_LEN: usize = 9;

/// Default ceiling on a frame's payload length. A corrupted or hostile
/// length field is rejected against this bound *before* any allocation
/// happens, so garbage on the pipe can never become an allocation bomb.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Why a frame could not be read. Every decode path returns one of these;
/// none panics, whatever the peer (or the corruption) sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The underlying pipe failed with a real I/O error.
    Io(std::io::ErrorKind),
    /// Clean end-of-stream exactly on a frame boundary — the peer closed
    /// the pipe. For a worker this is the supervisor-died signal: exit,
    /// don't spin.
    Eof,
    /// End-of-stream in the middle of a frame: the peer died mid-write.
    Truncated,
    /// The header did not start with [`FRAME_MAGIC`] — the stream is
    /// desynchronized or corrupt.
    BadMagic,
    /// The length field exceeds the reader's ceiling; rejected before
    /// allocating.
    Oversized {
        /// The length the header claimed.
        claimed: u64,
    },
    /// Header + payload failed checksum validation (bit rot or a torn
    /// write that still parsed structurally).
    ChecksumMismatch,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(kind) => write!(f, "frame i/o error: {kind:?}"),
            FrameError::Eof => write!(f, "pipe closed at frame boundary"),
            FrameError::Truncated => write!(f, "pipe closed mid-frame"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::Oversized { claimed } => {
                write!(f, "frame length {claimed} exceeds ceiling")
            }
            FrameError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Digest a frame's integrity-checked region: kind, length field, payload.
fn frame_checksum(kind: u8, payload: &[u8]) -> u64 {
    let mut h = fnv1a_update(FNV_OFFSET, &[kind]);
    h = fnv1a_update(h, &(payload.len() as u32).to_le_bytes());
    fnv1a_update(h, payload)
}

/// Fill `buf` from `r`, distinguishing a clean EOF before the first byte
/// (`Err(true)`) from one mid-buffer (`Err(false)` wrapped as Truncated by
/// the caller).
fn read_full(r: &mut impl std::io::Read, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    FrameError::Eof
                } else {
                    FrameError::Truncated
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e.kind())),
        }
    }
    Ok(())
}

/// Write one `kind`-tagged frame carrying `payload` to `w` and flush it.
///
/// # Errors
/// [`FrameError::Oversized`] if the payload exceeds [`MAX_FRAME_LEN`];
/// [`FrameError::Io`] on pipe failure.
pub fn write_frame(
    w: &mut impl std::io::Write,
    kind: u8,
    payload: &[u8],
) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            claimed: payload.len() as u64,
        });
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4] = kind;
    header[5..9].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[9..17].copy_from_slice(&frame_checksum(kind, payload).to_le_bytes());
    w.write_all(&header)
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| FrameError::Io(e.kind()))
}

/// Read one frame from `r`, returning `(kind, payload)`.
///
/// Validation order: magic, length ceiling (`max_len`, before any
/// allocation), payload presence, checksum. A clean EOF on the frame
/// boundary — or anywhere inside the first [`FRAME_PREFIX_LEN`] bytes,
/// before the peer has committed a frame length — is
/// [`FrameError::Eof`]: the peer disconnected, it did not tear a frame.
/// An EOF after the length prefix completed (checksum region or payload)
/// is [`FrameError::Truncated`]: a frame was promised and died mid-write.
/// Supervisors rely on this split to classify clean disconnects as
/// pipe-EOF instead of frame corruption.
///
/// # Errors
/// A typed [`FrameError`]; this function never panics on hostile input.
pub fn read_frame(
    r: &mut impl std::io::Read,
    max_len: usize,
) -> Result<(u8, Vec<u8>), FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // The length prefix first: an EOF in here is a disconnect, not a torn
    // frame — nothing was promised yet.
    match read_full(r, &mut header[..FRAME_PREFIX_LEN]) {
        Ok(()) => {}
        Err(FrameError::Truncated) => return Err(FrameError::Eof),
        Err(e) => return Err(e),
    }
    // From here on the peer owes us a full frame: any EOF is a tear.
    match read_full(r, &mut header[FRAME_PREFIX_LEN..]) {
        Ok(()) => {}
        Err(FrameError::Eof) => return Err(FrameError::Truncated),
        Err(e) => return Err(e),
    }
    if header[..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let kind = header[4];
    let len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes")) as usize;
    let want = u64::from_le_bytes(header[9..17].try_into().expect("8 bytes"));
    if len > max_len.min(MAX_FRAME_LEN) {
        return Err(FrameError::Oversized {
            claimed: len as u64,
        });
    }
    // Grow towards `len` instead of trusting it up front: even below the
    // ceiling, a lying length only costs what the pipe actually delivers.
    let mut payload = Vec::with_capacity(len.min(64 << 10));
    let mut taken = std::io::Read::take(r, len as u64);
    let got = {
        use std::io::Read as _;
        taken
            .read_to_end(&mut payload)
            .map_err(|e| FrameError::Io(e.kind()))?
    };
    if got < len {
        return Err(FrameError::Truncated);
    }
    if frame_checksum(kind, &payload) != want {
        return Err(FrameError::ChecksumMismatch);
    }
    Ok((kind, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_bytes(b"hello");
        w.put_str("wörld");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "wörld");
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.put_bytes(&[1, 2, 3, 4, 5]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.get_bytes().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corrupt_length_cannot_allocate() {
        // A length field of u64::MAX must be rejected by the remaining-
        // bytes bound, not passed to Vec::with_capacity.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        w.put_u8(0);
        let bytes = w.into_bytes();
        assert_eq!(
            Reader::new(&bytes).get_bytes().unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn crash_kind_tags_round_trip() {
        for kind in [
            CrashKind::NullPtrDeref,
            CrashKind::DivisionByZero,
            CrashKind::UnaddressableAccess,
            CrashKind::InvalidRead,
            CrashKind::InvalidWrite,
            CrashKind::NegativeSizeMemcpy,
            CrashKind::OutOfBoundsAccess,
            CrashKind::DoubleFree,
            CrashKind::InvalidFree,
            CrashKind::FdExhaustion,
            CrashKind::OutOfMemory,
            CrashKind::StackOverflow,
            CrashKind::Abort,
            CrashKind::UnreachableExecuted,
            CrashKind::BadLongjmp,
        ] {
            assert_eq!(CrashKind::from_wire_tag(kind.wire_tag()).unwrap(), kind);
        }
        assert!(CrashKind::from_wire_tag(200).is_err());
    }

    #[test]
    fn crash_round_trips() {
        let c = Crash {
            kind: CrashKind::InvalidWrite,
            function: "parse_header".into(),
            block: 42,
            detail: "addr=0x1000 size=8".into(),
        };
        let mut w = Writer::new();
        c.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Crash::decode(&mut r).unwrap(), c);
        assert!(r.is_empty());
    }

    #[test]
    fn virgin_map_round_trips_with_edge_count() {
        let mut v = VirginMap::new();
        let mut run = crate::CovMap::new();
        run.hit(3);
        run.hit(700);
        v.merge(&run);
        let mut w = Writer::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let decoded = VirginMap::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(decoded.edges_found(), v.edges_found());
        assert_eq!(decoded.as_bytes(), v.as_bytes());
    }

    #[test]
    fn virgin_map_wrong_size_rejected() {
        let mut w = Writer::new();
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        assert!(VirginMap::decode(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn byte_patches_round_trip_and_reject_corruption() {
        let patches = vec![(0usize, 1u8), (65535, 0x80), (300, 0x24)];
        let mut w = Writer::new();
        put_byte_patches(&mut w, &patches);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(get_byte_patches(&mut r).unwrap(), patches);
        assert!(r.is_empty());

        // Truncation anywhere is an error, never a panic.
        for cut in 0..bytes.len() {
            assert!(get_byte_patches(&mut Reader::new(&bytes[..cut])).is_err());
        }
        // Out-of-map index is malformed.
        let mut w = Writer::new();
        w.put_usize(1);
        w.put_u32(MAP_SIZE as u32);
        w.put_u8(1);
        let bad = w.into_bytes();
        assert_eq!(
            get_byte_patches(&mut Reader::new(&bad)).unwrap_err(),
            WireError::Malformed("patch index out of map")
        );
        // A count claiming more patches than bytes remain cannot allocate.
        let mut w = Writer::new();
        w.put_u64(u64::MAX / 8);
        let bomb = w.into_bytes();
        assert_eq!(
            get_byte_patches(&mut Reader::new(&bomb)).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn fnv1a_matches_known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    fn frame_bytes(kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind, payload).unwrap();
        buf
    }

    #[test]
    fn frames_round_trip() {
        for payload in [&b""[..], b"x", b"hello frames", &[0u8; 4096]] {
            let buf = frame_bytes(0x2A, payload);
            assert_eq!(buf.len(), FRAME_HEADER_LEN + payload.len());
            let mut r = &buf[..];
            let (kind, got) = read_frame(&mut r, MAX_FRAME_LEN).unwrap();
            assert_eq!(kind, 0x2A);
            assert_eq!(got, payload);
            assert!(r.is_empty(), "frame must consume exactly its bytes");
        }
    }

    #[test]
    fn back_to_back_frames_stay_in_sync() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"first").unwrap();
        write_frame(&mut buf, 2, b"second").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap(), (1, b"first".to_vec()));
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap(), (2, b"second".to_vec()));
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap_err(), FrameError::Eof);
    }

    #[test]
    fn clean_eof_differs_from_torn_frame() {
        let buf = frame_bytes(9, b"payload");
        let mut empty: &[u8] = &[];
        assert_eq!(read_frame(&mut empty, MAX_FRAME_LEN).unwrap_err(), FrameError::Eof);
        for cut in 1..buf.len() {
            let mut torn = &buf[..cut];
            // Before the 9-byte length prefix completes, no frame was ever
            // promised: the peer disconnected. From the checksum region on,
            // the frame is torn.
            let want = if cut < FRAME_PREFIX_LEN {
                FrameError::Eof
            } else {
                FrameError::Truncated
            };
            assert_eq!(
                read_frame(&mut torn, MAX_FRAME_LEN).unwrap_err(),
                want,
                "cut at {cut}"
            );
        }
    }

    /// Regression: a peer that dies mid-length-prefix used to surface as
    /// `Truncated`, which supervisors classify as frame corruption. It
    /// must read as a clean disconnect (`Eof` → `PipeEof` upstream) —
    /// the peer never committed a frame.
    #[test]
    fn eof_mid_length_prefix_is_a_clean_disconnect() {
        let buf = frame_bytes(3, b"never finished");
        // Cut inside the length field itself (bytes 5..9 of the header).
        for cut in 5..FRAME_PREFIX_LEN {
            let mut torn = &buf[..cut];
            assert_eq!(
                read_frame(&mut torn, MAX_FRAME_LEN).unwrap_err(),
                FrameError::Eof,
                "EOF mid-length-prefix (cut {cut}) must classify as disconnect"
            );
        }
        // One byte past the prefix the peer has committed: now it's a tear.
        let mut torn = &buf[..FRAME_PREFIX_LEN];
        assert_eq!(
            read_frame(&mut torn, MAX_FRAME_LEN).unwrap_err(),
            FrameError::Truncated
        );
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let buf = frame_bytes(7, b"integrity matters");
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut evil = buf.clone();
                evil[byte] ^= 1 << bit;
                let mut r = &evil[..];
                assert!(
                    read_frame(&mut r, MAX_FRAME_LEN).is_err(),
                    "flip at byte {byte} bit {bit} must not decode"
                );
            }
        }
    }

    #[test]
    fn hostile_length_rejected_before_allocating() {
        // Hand-build a header claiming a u32::MAX-byte payload with a valid
        // magic; the ceiling check must fire before any allocation.
        let mut evil = Vec::from(FRAME_MAGIC);
        evil.push(0);
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        evil.extend_from_slice(&0u64.to_le_bytes());
        let mut r = &evil[..];
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_LEN).unwrap_err(),
            FrameError::Oversized {
                claimed: u64::from(u32::MAX)
            }
        );
        // A caller-tightened ceiling applies too.
        let ok = frame_bytes(1, &[0u8; 128]);
        let mut r = &ok[..];
        assert_eq!(
            read_frame(&mut r, 64).unwrap_err(),
            FrameError::Oversized { claimed: 128 }
        );
    }

    #[test]
    fn oversized_writes_are_refused() {
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        let mut sink = Vec::new();
        assert_eq!(
            write_frame(&mut sink, 0, &huge).unwrap_err(),
            FrameError::Oversized {
                claimed: huge.len() as u64
            }
        );
        assert!(sink.is_empty(), "nothing may reach the pipe");
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut buf = frame_bytes(3, b"ok");
        buf[0] = b'X';
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap_err(), FrameError::BadMagic);
    }

    mod frame_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Arbitrary garbage never panics the decoder and never
            /// round-trips as a valid frame by accident (the 4-byte magic
            /// plus 64-bit checksum make a false positive vanishingly
            /// unlikely; with these generators it must simply not happen).
            #[test]
            fn garbage_never_decodes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
                let mut r = &bytes[..];
                prop_assert!(read_frame(&mut r, MAX_FRAME_LEN).is_err());
            }

            /// Every well-formed frame round-trips through the stream codec.
            #[test]
            fn frames_round_trip(
                kind in any::<u8>(),
                payload in prop::collection::vec(any::<u8>(), 0..512),
            ) {
                let buf = frame_bytes(kind, &payload);
                let mut r = &buf[..];
                let decoded = read_frame(&mut r, MAX_FRAME_LEN);
                prop_assert_eq!(decoded.unwrap(), (kind, payload));
            }

            /// Torn frames (any strict prefix) are typed, never Ok and
            /// never a panic: a cut inside the length prefix is a clean
            /// disconnect, a cut after it is Truncated.
            #[test]
            fn torn_frames_are_typed(
                payload in prop::collection::vec(any::<u8>(), 1..128),
                cut_seed in any::<u64>(),
            ) {
                let buf = frame_bytes(1, &payload);
                let cut = 1 + (cut_seed as usize % (buf.len() - 1));
                let mut r = &buf[..cut];
                let want = if cut < FRAME_PREFIX_LEN {
                    FrameError::Eof
                } else {
                    FrameError::Truncated
                };
                prop_assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap_err(), want);
            }

            /// A single flipped bit anywhere in a frame yields a typed
            /// error — corruption cannot decode silently.
            #[test]
            fn bit_flips_never_decode(
                payload in prop::collection::vec(any::<u8>(), 0..128),
                pos_seed in any::<u64>(),
                bit in 0u8..8,
            ) {
                let mut buf = frame_bytes(5, &payload);
                let byte = pos_seed as usize % buf.len();
                buf[byte] ^= 1 << bit;
                let mut r = &buf[..];
                prop_assert!(read_frame(&mut r, MAX_FRAME_LEN).is_err());
            }
        }
    }
}
