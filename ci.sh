#!/bin/sh
# Repo CI gate: build, test, lint. Run from the repository root.
set -eux

cargo build --release
cargo test -q
cargo clippy -- -D warnings
# Checkpoint/resume correctness gate: kill-and-resume must be byte-identical.
cargo run --release -p bench --bin checkpoint_eval -- --smoke
