#!/bin/sh
# Repo CI gate: build, test, lint. Run from the repository root.
set -eux

cargo build --release
cargo test -q
cargo clippy -- -D warnings
# Optimizer escape hatch: with the pre-decode FIR optimizer compiled out
# (`no-fir-opt`), the three-way reference/decoded/decoded+opt equivalence
# gate must still hold — the unoptimized decoded lowering is the fallback
# story, so it gets its own pass of the gate.
cargo test -q --features no-fir-opt --test engine_equivalence
# Checkpoint/resume correctness gate: kill-and-resume must be byte-identical.
cargo run --release -p bench --bin checkpoint_eval -- --smoke
# Engine determinism + throughput gate: the decoded engine must match the
# reference engine bit-for-bit, and aggregate decoded execs/sec must stay
# within 20% of the blessed floor in results/BENCH_floor.json.
cargo run --release -p bench --bin exec_throughput -- --smoke
# Sharding correctness + scaling gate: shards in {1,2,4} must produce
# bit-identical campaigns (including a sharded kill/resume round-trip), and
# host-normalized scaling efficiency must stay within 40% of the blessed
# floor in results/BENCH_shard_floor.json.
cargo run --release -p bench --bin shard_eval -- --smoke
# Lane-supervision gate: an injected worker panic / lane hang / barrier
# timeout at any (lane, epoch) must be contained and recovered
# bit-identically to the unfaulted run, repeated failures must degrade to
# a retired lane (not an abort), and mean recovery overhead must stay
# within 2x of the blessed floor in results/BENCH_supervision_floor.json.
cargo run --release -p bench --bin supervision_eval -- --smoke
# Process-isolation gate: lane-per-process campaigns must be bit-identical
# to the in-process engine, every injected worker death (abort, OOM kill,
# stall, corrupted frame) must be contained and recovered exactly, and
# non-stall recovery overhead must stay within 2x of the blessed floor in
# results/BENCH_proc_floor.json.
cargo run --release -p bench --bin proc_eval -- --smoke
# Storage fault-plane gate: every injected disk fault (ENOSPC, EIO, short
# write, crash-at-boundary, lost rename, bitrot) at every probed I/O
# boundary, on both isolation modes, must end in a sanctioned state —
# retried, degraded with a typed report, or killed and resumed
# bit-identically — and the clean-path checkpoint overhead must stay
# within 2x of the blessed ceiling in results/BENCH_storage_floor.json.
cargo run --release -p bench --bin storage_eval -- --smoke
# Multi-tenant service gate: a service hosting several campaigns, killed
# abruptly and restored, must resume every tenant bit-identically on both
# engines and worker shapes; a 100-campaign same-target restore must pay
# zero module lowerings (one sidecar load, the rest cache hits); and the
# per-campaign scheduling overhead must stay within 2x of the blessed
# ceiling in results/BENCH_service_floor.json.
cargo run --release -p bench --bin service_eval -- --smoke
# Network service-plane gate: every injected wire fault (drop, delay,
# duplicate, corrupt, disconnect, partial frame) in either direction at any
# early frame position, on both engines, must leave the remote campaign
# bit-identical to the in-process service; a server killed mid-campaign and
# restored must resume the same client session exactly; and the clean-path
# RPC overhead must stay within 2x of the blessed ceiling in
# results/BENCH_rpc_floor.json.
cargo run --release -p bench --bin rpc_eval -- --smoke
