#!/bin/sh
# Repo CI gate: build, test, lint. Run from the repository root.
set -eux

cargo build --release
cargo test -q
cargo clippy -- -D warnings
