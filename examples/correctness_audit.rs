//! The paper's §6.1.4 audit on one benchmark: every queue entry executed
//! under ClosureX (after heavy pollution) must match fresh-process ground
//! truth in dataflow and control flow.
//!
//! Run with: `cargo run --release --example correctness_audit`

use closurex::correctness::check_queue;

fn main() {
    let target = targets::by_name("gpmf-parser").expect("registered");
    let module = target.module();
    let queue = (target.seeds)();
    let report = check_queue(&module, &queue, 200, 0xA5A5, 2_000_000).expect("instrumentation");
    println!("target: {}\n", target.name);
    for (i, input) in report.inputs.iter().enumerate() {
        println!(
            "queue[{i}]: dataflow={} controlflow={} heap_clean={} masked_bytes={}",
            input.dataflow_ok, input.controlflow_ok, input.heap_clean, input.masked_bytes
        );
        for m in &input.mismatches {
            println!("    mismatch: {m}");
        }
    }
    println!(
        "\nverdict: {}",
        if report.all_ok() {
            "semantically equivalent to fresh-process execution (paper's result)"
        } else {
            "EQUIVALENCE VIOLATION"
        }
    );
    assert!(report.all_ok());
}
