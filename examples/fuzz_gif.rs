//! Fuzz the `giftext` benchmark with ClosureX and the AFL++ forkserver on
//! the same budget, and compare throughput and coverage — a single-target
//! slice of the paper's Tables 5 and 6.
//!
//! Run with: `cargo run --release --example fuzz_gif`

use aflrs::{Campaign, CampaignConfig, CampaignResult};
use closurex::executor::Executor;
use closurex::forkserver::ForkServerExecutor;
use closurex::harness::{ClosureXConfig, ClosureXExecutor};

fn run_campaign(ex: &mut dyn Executor, seeds: &[Vec<u8>], cfg: &CampaignConfig) -> CampaignResult {
    Campaign::new(seeds, cfg)
        .executor(ex)
        .run()
        .expect("campaign runs")
        .finished()
        .expect("no kill configured")
}

fn main() {
    let target = targets::by_name("giftext").expect("registered");
    let module = target.module();
    let seeds = (target.seeds)();
    let cfg = CampaignConfig {
        budget_cycles: 30_000_000,
        seed: 42,
        deterministic_stage: true,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    };

    let mut cx = ClosureXExecutor::new(&module, ClosureXConfig::default()).expect("instrument");
    let r_cx = run_campaign(&mut cx, &seeds, &cfg);

    let mut fk = ForkServerExecutor::new(&module).expect("instrument");
    let r_fk = run_campaign(&mut fk, &seeds, &cfg);

    println!("target: {} ({})\n", target.name, target.input_format);
    for r in [&r_cx, &r_fk] {
        println!(
            "{:<16} execs={:<6} edges={:<4} queue={:<3} mgmt-share={:.1}%",
            r.executor,
            r.execs,
            r.edges_found,
            r.queue_len,
            r.mgmt_fraction() * 100.0
        );
    }
    println!(
        "\nspeedup: {:.2}x (paper's giftext row: 4.79x on real hardware)",
        r_cx.execs as f64 / r_fk.execs as f64
    );
}
