//! Quickstart: compile a tiny target, instrument it with the ClosureX
//! passes, and fuzz it persistently — state restored every iteration.
//!
//! Run with: `cargo run --example quickstart`

use closurex::executor::Executor;
use closurex::harness::{ClosureXConfig, ClosureXExecutor};

fn main() {
    // 1. A C-like target with a stale-state hazard and a planted bug.
    let src = r#"
        global run_count;
        fn main() {
            run_count = run_count + 1;
            if (run_count > 1) { exit(99); }   // fires only if state leaks
            var f = fopen("/fuzz/input", 0);
            if (f == 0) { exit(1); }
            var buf[16];
            var n = fread(buf, 1, 16, f);
            fclose(f);
            if (n >= 3) {
                if (load8(buf) == 'b') {
                    if (load8(buf + 1) == 'u') {
                        if (load8(buf + 2) == 'g') {
                            return load64(0);   // null deref
                        }
                    }
                }
            }
            return 0;
        }
    "#;
    let module = minic::compile("quickstart", src).expect("compiles");

    // 2. Instrument + boot the persistent harness (paper §4).
    let mut ex = ClosureXExecutor::new(&module, ClosureXConfig::default()).expect("instrument");
    println!("instrumentation:");
    for r in ex.pass_reports() {
        println!("  {:<16} {}", r.pass, r.summary);
    }

    // 3. Run a few test cases by hand: run_count never accumulates.
    for input in [&b"hello"[..], b"world", b"hello"] {
        let out = ex.run(input);
        println!(
            "input {:?} -> {:?} ({} cycles)",
            String::from_utf8_lossy(input),
            out.status,
            out.total_cycles()
        );
    }

    // 4. Let the fuzzer find the planted 'bug' crash.
    let cfg = aflrs::CampaignConfig {
        budget_cycles: 60_000_000,
        seed: 7,
        deterministic_stage: true,
        stop_after_crashes: 1,
        ..aflrs::CampaignConfig::default()
    };
    let seeds = vec![b"aaa".to_vec()];
    let result = aflrs::Campaign::new(&seeds, &cfg)
        .executor(&mut ex)
        .run()
        .expect("campaign runs")
        .finished()
        .expect("no kill configured");
    println!(
        "\ncampaign: {} execs, {} edges, {} crash site(s)",
        result.execs,
        result.edges_found,
        result.crashes.len()
    );
    if let Some(c) = result.crashes.first() {
        println!(
            "first crash: {} with input {:?} after {} execs-worth of cycles",
            c.crash,
            String::from_utf8_lossy(&c.input),
            c.found_at_cycles
        );
    }
}
