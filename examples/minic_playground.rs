//! MinC → FIR playground: compile a program, print its IR, run the
//! ClosureX pass pipeline, and diff the call sites — then execute it.
//!
//! Run with: `cargo run --example minic_playground`

use vmos::{CovMap, HostCtx, Machine, Os};

fn main() {
    let src = r#"
        global total;
        const global GREETING = "sum:";
        fn add_squares(n) {
            var i = 1;
            var acc = 0;
            while (i <= n) { acc = acc + i * i; i = i + 1; }
            return acc;
        }
        fn main() {
            var p = malloc(32);
            total = add_squares(10);
            store64(p, total);
            free(p);
            puts(GREETING);
            print_int(total);
            return total;
        }
    "#;
    let mut module = minic::compile("playground", src).expect("compiles");
    println!(
        "== FIR before instrumentation ==\n{}",
        fir::printer::print_module(&module)
    );

    let reports = passes::pipelines::closurex_pipeline()
        .run(&mut module)
        .expect("passes run");
    println!("== pass reports ==");
    for r in &reports {
        println!("  {:<16} {}", r.pass, r.summary);
    }
    println!("\ncall sites after instrumentation: {:?}", {
        let mut h: Vec<_> = module.call_site_histogram().into_iter().collect();
        h.sort();
        h
    });

    let mut os = Os::new();
    let (mut p, _) = os.spawn(&module);
    let mut cov = CovMap::new();
    let mut ctx = HostCtx::new(&mut os, &mut cov);
    let out = Machine::new(&module).call(&mut p, &mut ctx, "target_main", &[0, 0], 1_000_000);
    println!(
        "\nexecution: {:?} in {} insts; stdout = {:?}",
        out.result,
        out.insts,
        String::from_utf8_lossy(&p.stdout)
    );
}
