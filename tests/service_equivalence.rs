//! Service-layer correctness gate: the multi-tenant campaign server is
//! *invisible* to campaign results. A service hosting several campaigns,
//! killed abruptly mid-epoch (simulated SIGKILL with torn journal tails)
//! and restarted over the same directory, must resume every tenant to a
//! `CampaignResult` bit-identical to the same campaign run uninterrupted
//! through the single-campaign builder — fair-share interleaving,
//! preemption at epoch barriers, and checkpoint I/O all charge nothing
//! observable.

use aflrs::{
    AdmissionError, Campaign, CampaignConfig, CampaignResult, CampaignSpec, Service,
    ServiceConfig, ServiceError,
};
use bench::{Mechanism, MechanismFactory, MechanismResolver};
use std::path::PathBuf;
use std::sync::Arc;

const BUDGET: u64 = 1_500_000;

fn cfg() -> CampaignConfig {
    CampaignConfig {
        budget_cycles: BUDGET,
        seed: 0xC0FFEE,
        deterministic_stage: true,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    }
}

fn fingerprint(r: &CampaignResult) -> String {
    format!("{:?}", r.sans_resume())
}

/// The `(mechanism tag, target name)` recipe [`MechanismResolver`]
/// understands.
fn factory_spec(target: &str) -> Vec<u8> {
    let mut w = vmos::Writer::new();
    w.put_u8(Mechanism::ClosureX.wire_tag());
    w.put_str(target);
    w.into_bytes()
}

/// Benign corpus spiked with bug witnesses, as in the sharding gate.
fn corpus(target: &str) -> Vec<Vec<u8>> {
    let t = targets::by_name(target).expect("bundled target");
    let mut seeds = (t.seeds)();
    seeds.extend((t.witnesses)().into_iter().map(|(_, input)| input));
    seeds
}

fn spec(name: &str, target: &str, shards: usize) -> CampaignSpec {
    let mut s = CampaignSpec::new(name, factory_spec(target), corpus(target), cfg());
    s.shards = shards;
    s
}

/// Ground truth: the same campaign through the single-campaign builder,
/// uninterrupted and un-checkpointed.
fn builder_reference(target: &str) -> CampaignResult {
    let t = targets::by_name(target).expect("bundled target");
    let factory = MechanismFactory::new(Mechanism::ClosureX, t);
    Campaign::new(&corpus(target), &cfg())
        .factory(&factory)
        .run()
        .expect("reference campaign runs")
        .finished()
        .expect("no kill configured")
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cx-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The tentpole gate: three tenants (two targets, mixed worker counts)
/// under one service; the whole service dies abruptly off any epoch
/// boundary; a restarted service resumes every tenant to the exact
/// uninterrupted result.
#[test]
fn service_churn_restore_is_bit_identical() {
    let want_gif = fingerprint(&builder_reference("giftext"));
    let want_gpmf = fingerprint(&builder_reference("gpmf-parser"));
    let tenants = [
        ("gif-narrow", "giftext", 1, &want_gif),
        ("gpmf", "gpmf-parser", 2, &want_gpmf),
        // Same target at a different worker count: sharding is a pure
        // throughput knob even under service scheduling.
        ("gif-wide", "giftext", 4, &want_gif),
    ];

    let dir = tmp("churn");
    let resolver: Arc<dyn aflrs::SpecResolver> = Arc::new(MechanismResolver);

    // Leg 1: every tenant dies mid-epoch (151 is off every barrier).
    let mut churn_cfg = ServiceConfig::new(&dir);
    churn_cfg.kill_after_execs = Some(151);
    {
        let service = Service::new(churn_cfg, Arc::clone(&resolver)).expect("service starts");
        let handles: Vec<_> = tenants
            .iter()
            .map(|(name, target, shards, _)| {
                service
                    .submit(spec(name, target, *shards))
                    .expect("admission")
            })
            .collect();
        for h in &handles {
            match h.await_result() {
                Err(ServiceError::Killed { execs }) => {
                    assert!(execs >= 151, "{}: kill switch must have fired", h.name());
                }
                other => panic!("{}: expected a killed campaign, got {other:?}", h.name()),
            }
        }
        // Graceful drop; the abrupt damage (torn journal tails) is
        // already on disk from the mid-epoch kills.
    }

    // Leg 2: restart over the same directory with the kill disarmed.
    let service =
        Service::restore(ServiceConfig::new(&dir), resolver).expect("service restores");
    for (name, _, _, want) in &tenants {
        let h = service.handle(name).expect("restored tenant");
        let r = h.await_result().expect("restored campaign finishes");
        assert_eq!(
            &fingerprint(&r),
            *want,
            "{name}: service churn + restore must reproduce the uninterrupted result"
        );
        let report = r.resume.as_ref().expect("restored result carries its resume report");
        assert!(report.records_applied > 0, "{name}: resume must replay a journal tail");
        assert!(
            report.decoded_image_ready,
            "{name}: resume must start from a warm decoded image, got {report:?}"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.finished, tenants.len());
    assert_eq!(stats.admitted, tenants.len() as u64);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn admission_control_rejects_and_leaves_no_trace() {
    let dir = tmp("admission");
    let resolver: Arc<dyn aflrs::SpecResolver> = Arc::new(MechanismResolver);
    let mut svc_cfg = ServiceConfig::new(&dir);
    svc_cfg.max_campaigns = 1;
    let service = Service::new(svc_cfg, resolver).expect("service starts");

    // Resolver rejection (checked after capacity, so probe it while the
    // service is still empty).
    match service.submit(CampaignSpec::new(
        "unresolvable",
        b"not a factory spec".to_vec(),
        corpus("giftext"),
        cfg(),
    )) {
        Err(AdmissionError::Resolver(_)) => {}
        other => panic!("unresolvable factory spec must be rejected, got {other:?}"),
    }

    let first = service.submit(spec("only", "giftext", 1)).expect("capacity 1 admits one");
    first.pause();

    match service.submit(spec("only", "giftext", 1)) {
        Err(AdmissionError::Duplicate(name)) => assert_eq!(name, "only"),
        other => panic!("duplicate name must be rejected, got {other:?}"),
    }
    match service.submit(spec("second", "giftext", 1)) {
        Err(AdmissionError::Full { capacity }) => assert_eq!(capacity, 1),
        other => panic!("over-capacity submit must be rejected, got {other:?}"),
    }
    match service.submit(spec("bad name!", "giftext", 1)) {
        Err(AdmissionError::InvalidSpec(_)) => {}
        other => panic!("bad tenant name must be rejected, got {other:?}"),
    }
    match service.submit(CampaignSpec::new("empty", factory_spec("giftext"), vec![], cfg())) {
        Err(AdmissionError::InvalidSpec(_)) => {}
        other => panic!("empty corpus must be rejected, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.rejected, 5);
    // Rejections leave no trace: only the admitted tenant's directory
    // exists, so a restore resurrects exactly one campaign.
    let dirs: Vec<_> = std::fs::read_dir(&dir)
        .expect("service dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(dirs, vec!["only".to_string()]);
    let _ = std::fs::remove_dir_all(dir);
}

/// Round-trip of the durable spec format through a live service: what
/// `restore` re-admits is exactly what `submit` persisted.
#[test]
fn spec_survives_restore_before_first_grant() {
    let dir = tmp("spec-roundtrip");
    let resolver: Arc<dyn aflrs::SpecResolver> = Arc::new(MechanismResolver);
    let submitted = spec("early", "gpmf-parser", 2);
    {
        let service =
            Service::new(ServiceConfig::new(&dir), Arc::clone(&resolver)).expect("service");
        let h = service.submit(submitted.clone()).expect("admission");
        // Pause immediately: the tenant may or may not have run a grant,
        // either way its spec is already durable.
        h.pause();
    }
    let service = Service::restore(ServiceConfig::new(&dir), resolver).expect("restore");
    let h = service.handle("early").expect("tenant restored from spec.bin alone");
    let r = h.await_result().expect("restored-from-spec campaign finishes");
    assert_eq!(
        fingerprint(&r),
        fingerprint(&builder_reference("gpmf-parser")),
        "a campaign restored before its first grant is just a fresh campaign"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// Health-driven rotation (satellite of the RPC PR): plateaued tenants
/// are cooled out of the fair-share race, but the rotation is pure
/// scheduling — every campaign still finishes bit-identical to its
/// uninterrupted single-campaign run, and the rotation counter proves the
/// mechanism actually fired.
#[test]
fn stall_rotation_cools_plateaued_tenants_without_changing_results() {
    let want = fingerprint(&builder_reference("giftext"));
    let dir = tmp("stall");
    let resolver: Arc<dyn aflrs::SpecResolver> = Arc::new(MechanismResolver);
    let mut svc_cfg = ServiceConfig::new(&dir);
    svc_cfg.workers = 1; // serialize grants: rotation must still be work-conserving
    svc_cfg.stall_threshold = Some(1);
    svc_cfg.stall_cooldown_grants = 3;
    let service = Service::new(svc_cfg, resolver).expect("service starts");
    let a = service.submit(spec("stall-a", "giftext", 1)).expect("admission");
    let b = service.submit(spec("stall-b", "giftext", 1)).expect("admission");
    for h in [&a, &b] {
        let r = h.await_result().expect("campaign finishes under rotation");
        assert_eq!(
            fingerprint(&r),
            want,
            "{}: stall rotation is scheduling-only, results are untouched",
            h.name()
        );
    }
    let stats = service.stats();
    assert!(
        stats.stall_rotations > 0,
        "coverage plateaus under a tiny budget, so rotation must fire: {stats:?}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// Terminal-retention archival (satellite of the RPC PR): a killed tenant
/// past the retention budget is rotated down to one sealed snapshot — and
/// must still restore to the bit-identical uninterrupted result from it.
#[test]
fn archival_seals_killed_tenants_and_keeps_them_resumable() {
    let want = fingerprint(&builder_reference("giftext"));
    let dir = tmp("archive");
    let resolver: Arc<dyn aflrs::SpecResolver> = Arc::new(MechanismResolver);

    // Leg 1: the tenant dies mid-epoch (151 is off every barrier) and,
    // being terminal past the zero-retention budget, is archived.
    let mut churn_cfg = ServiceConfig::new(&dir);
    churn_cfg.kill_after_execs = Some(151);
    churn_cfg.retain_terminal = Some(0);
    {
        let service = Service::new(churn_cfg, Arc::clone(&resolver)).expect("service starts");
        let h = service.submit(spec("sealed", "giftext", 2)).expect("admission");
        match h.await_result() {
            Err(ServiceError::Killed { execs }) => assert!(execs >= 151),
            other => panic!("expected a killed campaign, got {other:?}"),
        }
        // The sweep runs on the worker thread after the terminal park
        // parks; wait for the counter rather than racing it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let stats = service.stats();
            if stats.archived_tenants == 1 {
                assert_eq!(stats.archive_warnings, 0, "clean sweep: {stats:?}");
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "archival sweep must fire for a terminal tenant past the budget: {stats:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        // Drop additionally joins the workers, so the file sweep is done.
    }
    let snapshots: Vec<String> = std::fs::read_dir(dir.join("sealed"))
        .expect("tenant dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("shard-ckpt-"))
        .collect();
    assert_eq!(
        snapshots.len(),
        1,
        "archival keeps exactly the one sealed snapshot, got {snapshots:?}"
    );

    // Leg 2: restore from the sealed snapshot with the kill disarmed.
    let mut restore_cfg = ServiceConfig::new(&dir);
    restore_cfg.retain_terminal = Some(0);
    let service = Service::restore(restore_cfg, resolver).expect("service restores");
    let h = service.handle("sealed").expect("restored tenant");
    let r = h.await_result().expect("archived campaign resumes and finishes");
    assert_eq!(
        fingerprint(&r),
        want,
        "restore from the sealed snapshot must reproduce the uninterrupted result"
    );
    assert!(
        r.resume.expect("resume report").records_applied > 0,
        "the sealed snapshot's journal tail must be replayed"
    );
    let _ = std::fs::remove_dir_all(dir);
}

mod fair_share {
    use aflrs::service::fair_pick;
    use proptest::prelude::*;

    proptest! {
        /// Fair-share invariant: granting epoch budgets to the
        /// least-served runnable tenant keeps the spread of granted
        /// cycles bounded by one grant — no tenant can starve, no matter
        /// how uneven per-grant costs are or when tenants finish.
        #[test]
        fn interleaving_bounds_the_service_gap(
            // Per-tenant (grant cost, grants to completion).
            tenants in prop::collection::vec((1u64..=5000, 1u64..=12), 2..8),
        ) {
            let max_cost = tenants.iter().map(|(c, _)| *c).max().unwrap();
            let mut granted = vec![0u64; tenants.len()];
            let mut grants_left: Vec<u64> = tenants.iter().map(|(_, g)| *g).collect();
            loop {
                let runnable: Vec<(usize, u64)> = grants_left
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| **g > 0)
                    .map(|(id, _)| (id, granted[id]))
                    .collect();
                let Some(id) = fair_pick(&runnable) else { break };
                prop_assert!(
                    grants_left[id] > 0,
                    "fair_pick must only pick runnable tenants"
                );
                // The scheduler never lets a runnable tenant fall more
                // than one grant behind any other runnable tenant.
                let min_runnable = runnable.iter().map(|(_, c)| *c).min().unwrap();
                prop_assert_eq!(granted[id], min_runnable);
                granted[id] += tenants[id].0;
                grants_left[id] -= 1;
                let lead = runnable
                    .iter()
                    .map(|&(i, _)| granted[i])
                    .max()
                    .unwrap();
                prop_assert!(
                    lead - min_runnable <= max_cost,
                    "granted-cycle spread {lead}-{min_runnable} exceeds one grant ({max_cost})"
                );
            }
            prop_assert!(grants_left.iter().all(|&g| g == 0), "every tenant must drain");
        }
    }
}
