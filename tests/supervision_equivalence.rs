//! Golden supervision equivalence: an injected lane fault — a worker
//! panic or a wedged (hung) lane, at *any* `(lane, epoch)` position — no
//! longer aborts a sharded campaign. The supervisor contains the fault,
//! rebuilds the lane's executor from the factory, re-runs the epoch from
//! its barrier snapshot, and the recovered `CampaignResult` is
//! bit-identical to the unfaulted run everywhere outside the supervision
//! report (`CampaignResult::sans_supervision` is the comparison key —
//! a recovered run necessarily *reports* its recoveries).
//!
//! Checked at `shards ∈ {1, 2, 4}` on both execution engines, plus the
//! degradation ladder: a lane that fails past its retry budget is retired
//! with a typed `LaneDegradation` and its remaining budget folded into the
//! surviving lanes — the campaign still finishes.

use aflrs::{
    Campaign, CampaignConfig, CampaignResult, SupervisorConfig, DEFAULT_LANES,
    DEFAULT_SYNC_EPOCHS,
};
use closurex::executor::{Executor, ExecutorFactory};
use closurex::harness::{ClosureXConfig, ClosureXExecutor};
use closurex::resilience::HarnessError;
use vmos::{OrchFaultKind, OrchFaultPlan, ReferenceEngineGuard};

const BUDGET: u64 = 3_000_000;

fn cfg() -> CampaignConfig {
    CampaignConfig {
        budget_cycles: BUDGET,
        seed: 0xC0FFEE,
        deterministic_stage: true,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    }
}

/// Per-lane ClosureX executors over one compiled module.
struct CxFactory {
    module: fir::Module,
}

impl CxFactory {
    fn for_target(t: &targets::TargetSpec) -> Self {
        CxFactory { module: t.module() }
    }
}

impl ExecutorFactory for CxFactory {
    fn build(&self) -> Result<Box<dyn Executor + Send>, HarnessError> {
        ClosureXExecutor::new(&self.module, ClosureXConfig::default())
            .map(|ex| Box::new(ex) as Box<dyn Executor + Send>)
            .map_err(|e| HarnessError::BootFailed(e.to_string()))
    }
}

/// Everything a campaign reports, as one comparable string.
fn fingerprint(r: &CampaignResult) -> String {
    format!("{:?}", r.sans_resume())
}

fn corpus(t: &targets::TargetSpec, with_witnesses: bool) -> Vec<Vec<u8>> {
    let mut seeds = (t.seeds)();
    if with_witnesses {
        seeds.extend((t.witnesses)().into_iter().map(|(_, input)| input));
    }
    seeds
}

fn supervised(
    t: &targets::TargetSpec,
    shards: usize,
    with_witnesses: bool,
    reference: bool,
    sup: Option<SupervisorConfig>,
) -> CampaignResult {
    let _guard = reference.then(ReferenceEngineGuard::new);
    let factory = CxFactory::for_target(t);
    let seeds = corpus(t, with_witnesses);
    let mut c = Campaign::new(&seeds, &cfg()).factory(&factory).shards(shards);
    if let Some(sup) = sup {
        c = c.supervision(sup);
    }
    c.run()
        .expect("sharded campaign survives injected lane faults")
        .finished()
        .expect("no kill configured")
}

fn plan_for(lane: u64, epoch: u64, kind: OrchFaultKind) -> SupervisorConfig {
    SupervisorConfig {
        faults: OrchFaultPlan::at(lane, epoch, kind),
        ..SupervisorConfig::default()
    }
}

/// Inject `kind` at every `(lane, epoch)` grid position in turn and demand
/// recovery is exact at every worker count.
fn recovery_exact_on(name: &str, with_witnesses: bool, reference: bool, kind: OrchFaultKind) {
    let t = targets::by_name(name).expect("bundled target");
    let clean = supervised(t, 1, with_witnesses, reference, None);
    assert!(clean.execs > 50, "{name}: campaign must actually run");
    assert!(
        clean.resilience.supervision.is_quiet(),
        "{name}: an unfaulted run reports no supervision activity"
    );
    let want = fingerprint(&clean.sans_supervision());
    // The full grid at shards=1, a diagonal at the other worker counts
    // (the grid is O(lanes × epochs) campaigns; the diagonal still covers
    // every lane and every epoch).
    for lane in 0..DEFAULT_LANES as u64 {
        for epoch in 0..DEFAULT_SYNC_EPOCHS {
            let r = supervised(t, 1, with_witnesses, reference, Some(plan_for(lane, epoch, kind)));
            assert_eq!(
                fingerprint(&r.sans_supervision()),
                want,
                "{name}: {} at (lane {lane}, epoch {epoch}) must recover exactly",
                kind.name()
            );
            assert!(
                r.resilience.supervision.faults_contained() >= 1,
                "{name}: the injected fault must actually fire"
            );
            assert_eq!(r.resilience.supervision.recovered, 1);
            assert!(r.resilience.supervision.degradations.is_empty());
        }
    }
    for shards in [2, 4] {
        let lane = (shards as u64) % DEFAULT_LANES as u64;
        let epoch = (shards as u64) % DEFAULT_SYNC_EPOCHS;
        let r = supervised(
            t,
            shards,
            with_witnesses,
            reference,
            Some(plan_for(lane, epoch, kind)),
        );
        assert_eq!(
            fingerprint(&r.sans_supervision()),
            want,
            "{name}: {} recovery must stay exact at shards={shards}",
            kind.name()
        );
        assert!(r.resilience.supervision.faults_contained() >= 1);
    }
}

#[test]
fn giftext_panic_recovery_is_exact_everywhere() {
    recovery_exact_on("giftext", false, false, OrchFaultKind::WorkerPanic);
}

#[test]
fn giftext_hang_recovery_is_exact_everywhere() {
    recovery_exact_on("giftext", false, false, OrchFaultKind::LaneHang);
}

#[test]
fn gpmf_panic_recovery_is_exact_with_crashes() {
    let t = targets::by_name("gpmf-parser").expect("bundled target");
    let clean = supervised(t, 1, true, false, None);
    assert!(
        !clean.crashes.is_empty(),
        "gpmf has planted bugs; recovery over a crashing corpus must not be vacuous"
    );
    recovery_exact_on("gpmf-parser", true, false, OrchFaultKind::WorkerPanic);
}

#[test]
fn recovery_is_exact_on_reference_engine() {
    let t = targets::by_name("giftext").expect("bundled target");
    let clean = supervised(t, 1, false, true, None);
    let want = fingerprint(&clean.sans_supervision());
    for kind in [OrchFaultKind::WorkerPanic, OrchFaultKind::LaneHang] {
        let r = supervised(t, 2, false, true, Some(plan_for(1, 2, kind)));
        assert_eq!(
            fingerprint(&r.sans_supervision()),
            want,
            "reference engine: {} recovery must be exact",
            kind.name()
        );
        assert!(r.resilience.supervision.faults_contained() >= 1);
    }
}

#[test]
fn barrier_timeout_recovery_is_exact() {
    let t = targets::by_name("giftext").expect("bundled target");
    let clean = supervised(t, 2, false, false, None);
    let want = fingerprint(&clean.sans_supervision());
    let r = supervised(
        t,
        2,
        false,
        false,
        Some(plan_for(2, 1, OrchFaultKind::BarrierTimeout)),
    );
    assert_eq!(fingerprint(&r.sans_supervision()), want);
    assert_eq!(r.resilience.supervision.barrier_timeouts, 1);
    assert_eq!(r.resilience.supervision.recovered, 1);
}

#[test]
fn repeated_failures_degrade_the_lane_not_the_campaign() {
    let t = targets::by_name("giftext").expect("bundled target");
    // Fail lane 1 at epoch 0 more times than the retry budget allows: the
    // lane is retired, its budget folds into the survivors, and the
    // campaign still finishes with a typed degradation report.
    let mut faults = OrchFaultPlan::at(1, 0, OrchFaultKind::WorkerPanic);
    faults.targeted[0].fires = 10;
    let sup = SupervisorConfig {
        max_lane_retries: 2,
        faults,
        ..SupervisorConfig::default()
    };
    let r = supervised(t, 2, false, false, Some(sup));
    let s = &r.resilience.supervision;
    assert_eq!(s.degradations.len(), 1, "exactly one lane retired");
    let d = &s.degradations[0];
    assert_eq!((d.lane, d.epoch), (1, 0));
    assert_eq!(d.attempts, 3, "initial failure + two rebuild retries");
    assert_eq!(d.last_fault, "panic");
    assert!(d.reclaimed_cycles > 0, "unspent budget was folded forward");
    assert!(s.lane_panics >= 3);
    assert!(
        r.execs > 50,
        "the surviving lanes keep fuzzing after the degradation"
    );
}
