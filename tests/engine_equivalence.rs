//! Golden equivalence: the decoded-bytecode engine — with and without the
//! decode-time optimizer — must be observably indistinguishable from the
//! reference AST-walking interpreter.
//!
//! "Observable" means everything a campaign can see or persist: execution
//! counts, the simulated cycle clock, the accumulated coverage hash, crash
//! sites, and the bytes of checkpoint snapshots (`ckpt-*`) and journals
//! (`journal-*`). Two targets are exercised: `giftext` (bug-free, deep
//! format loop) and `gpmf-parser` (planted bugs, so real crash sites flow
//! through both engines).
//!
//! The gate is **three-way**:
//!
//! * **reference** — the original tree-walking interpreter, selected
//!   per-thread with [`vmos::ReferenceEngineGuard`];
//! * **plain decoded** — the decoded engine on the unoptimized 1:1
//!   streams, pinned with [`vmos::DecodeOptGuard`];
//! * **optimized decoded** — the default: superinstruction fusion, block
//!   linearization, operand pre-resolution and decode-time inlining.
//!
//! Building the workspace with `--features slow-interp` forces every leg
//! onto the reference path; `--features no-fir-opt` compiles the
//! optimizer out so the "optimized" leg degrades to the plain streams.
//! The tests must pass identically under both features — that is the
//! point: no switch position may change a single observable bit.

use aflrs::{Campaign, CampaignConfig, CampaignOutcome, CampaignResult, CheckpointConfig};
use closurex::harness::{ClosureXConfig, ClosureXExecutor};
use vmos::{DecodeOptGuard, ReferenceEngineGuard};

const BUDGET: u64 = 3_000_000;

/// Which of the three engine configurations a campaign leg runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    Reference,
    DecodedPlain,
    DecodedOpt,
}

impl Engine {
    const ALL: [Engine; 3] = [Engine::Reference, Engine::DecodedPlain, Engine::DecodedOpt];

    fn name(self) -> &'static str {
        match self {
            Engine::Reference => "reference",
            Engine::DecodedPlain => "decoded-plain",
            Engine::DecodedOpt => "decoded-opt",
        }
    }

    /// Pin this engine on the current thread until the guards drop.
    fn pin(self) -> (Option<ReferenceEngineGuard>, Option<DecodeOptGuard>) {
        match self {
            Engine::Reference => (Some(ReferenceEngineGuard::new()), None),
            Engine::DecodedPlain => (None, Some(DecodeOptGuard::new())),
            Engine::DecodedOpt => (None, None),
        }
    }
}

fn cfg() -> CampaignConfig {
    CampaignConfig {
        budget_cycles: BUDGET,
        seed: 0xC0FFEE,
        deterministic_stage: true,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    }
}

fn campaign(target: &targets::TargetSpec, engine: Engine) -> CampaignResult {
    let _guards = engine.pin();
    let m = target.module();
    let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).expect("instrument");
    let seeds = (target.seeds)();
    Campaign::new(&seeds, &cfg())
        .executor(&mut ex)
        .run()
        .expect("plain campaign config is always valid")
        .finished()
        .expect("no kill configured")
}

fn assert_observables_equal(a: &CampaignResult, b: &CampaignResult, what: &str) {
    assert_eq!(a.execs, b.execs, "{what}: execs");
    assert_eq!(a.clock_cycles, b.clock_cycles, "{what}: simulated clock");
    assert_eq!(a.exec_cycles, b.exec_cycles, "{what}: exec cycles");
    assert_eq!(a.mgmt_cycles, b.mgmt_cycles, "{what}: mgmt cycles");
    assert_eq!(a.edges_found, b.edges_found, "{what}: edges");
    assert_eq!(a.coverage_hash, b.coverage_hash, "{what}: coverage hash");
    assert_eq!(a.queue_len, b.queue_len, "{what}: queue length");
    assert_eq!(a.hangs, b.hangs, "{what}: hangs");
    assert_eq!(a.queue_inputs, b.queue_inputs, "{what}: queue inputs");
    assert_eq!(
        format!("{:?}", a.crashes),
        format!("{:?}", b.crashes),
        "{what}: crash records (site, kind, input, discovery time)"
    );
}

/// Run all three legs on `target_name` and compare each decoded leg
/// against the reference leg.
fn equivalence_on(target_name: &str) -> CampaignResult {
    let t = targets::by_name(target_name).expect("bundled target");
    let reference = campaign(t, Engine::Reference);
    assert!(reference.execs > 50, "campaign must actually run");
    for engine in [Engine::DecodedPlain, Engine::DecodedOpt] {
        let leg = campaign(t, engine);
        assert_observables_equal(
            &leg,
            &reference,
            &format!("{target_name} [{}]", engine.name()),
        );
    }
    reference
}

#[test]
fn giftext_campaign_is_bit_identical_across_engines() {
    equivalence_on("giftext");
}

#[test]
fn gpmf_campaign_with_crashes_is_bit_identical_across_engines() {
    let reference = equivalence_on("gpmf-parser");
    assert!(
        !reference.crashes.is_empty(),
        "gpmf has planted bugs; the crash-site comparison must not be vacuous"
    );
}

/// The thread-locals must not leak between legs: after a pinned campaign
/// the default engine (decoded + optimizer) is back in force.
#[test]
fn engine_pins_do_not_leak_across_legs() {
    let t = targets::by_name("giftext").expect("bundled target");
    let _ = campaign(t, Engine::Reference);
    assert!(!vmos::reference_engine() || cfg!(feature = "slow-interp"));
    let _ = campaign(t, Engine::DecodedPlain);
    assert!(vmos::decode_opt() || cfg!(feature = "no-fir-opt"));
}

/// Collect `(file name, bytes)` of every checkpoint artifact in `dir`,
/// sorted by name.
fn checkpoint_files(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("checkpoint dir")
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("cx-equiv-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn checkpoint_bytes_are_identical_across_engines() {
    let t = targets::by_name("giftext").expect("bundled target");
    let m = t.module();
    let mut dirs = Vec::new();
    for engine in Engine::ALL {
        let _guards = engine.pin();
        let dir = temp_dir(engine.name());
        let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).expect("instrument");
        let ck = CheckpointConfig {
            snapshot_every_execs: 50,
            keep_snapshots: 1000, // keep everything: compare the full history
            ..CheckpointConfig::new(&dir)
        };
        let seeds = (t.seeds)();
        let out = Campaign::new(&seeds, &cfg())
            .executor(&mut ex)
            .checkpoint(ck)
            .run()
            .expect("checkpointed campaign");
        assert!(matches!(out, CampaignOutcome::Finished(_)));
        dirs.push(dir);
    }
    let reference = checkpoint_files(&dirs[0]);
    let names = |fs: &[(String, Vec<u8>)]| fs.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>();
    assert!(
        reference.iter().any(|(n, _)| n.starts_with("ckpt-"))
            && reference.iter().any(|(n, _)| n.starts_with("journal-")),
        "comparison must cover both snapshots and journals"
    );
    for (engine, dir) in Engine::ALL.iter().zip(&dirs).skip(1) {
        let leg = checkpoint_files(dir);
        assert_eq!(
            names(&leg),
            names(&reference),
            "same artifact set [{}]",
            engine.name()
        );
        for ((name, la), (_, ra)) in leg.iter().zip(reference.iter()) {
            assert_eq!(
                la,
                ra,
                "checkpoint artifact {name} must be byte-identical [{}]",
                engine.name()
            );
        }
    }
    for d in dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// Kill a campaign mid-flight on `engine`, resume it, and require the
/// stitched-together run to match an uninterrupted reference run bit for
/// bit.
fn kill_resume_round_trip(engine: Engine) {
    let t = targets::by_name("gpmf-parser").expect("bundled target");
    let m = t.module();
    let seeds = (t.seeds)();

    // Ground truth: one uninterrupted run on the reference engine.
    let reference = campaign(t, Engine::Reference);

    let _guards = engine.pin();
    // Kill mid-campaign (off the snapshot grid), then resume.
    let dir = temp_dir(&format!("resume-{}", engine.name()));
    let mut ck = CheckpointConfig {
        snapshot_every_execs: 40,
        ..CheckpointConfig::new(&dir)
    };
    ck.kill_after_execs = Some(97);
    let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).expect("instrument");
    let out = Campaign::new(&seeds, &cfg())
        .executor(&mut ex)
        .checkpoint(ck.clone())
        .run()
        .expect("first leg");
    let CampaignOutcome::Killed { execs } = out else {
        panic!("kill_after_execs must fire before the budget runs out");
    };
    assert!(execs >= 97);

    ck.kill_after_execs = None;
    let mut ex2 = ClosureXExecutor::new(&m, ClosureXConfig::default()).expect("instrument");
    let (out2, _info) = Campaign::new(&seeds, &cfg())
        .executor(&mut ex2)
        .checkpoint(ck)
        .resume()
        .expect("resume");
    let CampaignOutcome::Finished(resumed) = out2 else {
        panic!("resumed campaign must finish");
    };
    assert_observables_equal(
        &resumed,
        &reference,
        &format!("kill/resume round-trip [{}]", engine.name()),
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn kill_and_resume_on_decoded_engine_matches_uninterrupted_reference() {
    kill_resume_round_trip(Engine::DecodedPlain);
}

#[test]
fn kill_and_resume_on_optimized_engine_matches_uninterrupted_reference() {
    kill_resume_round_trip(Engine::DecodedOpt);
}

/// Cross-leg resume: a campaign killed on the **optimized** engine must
/// resume cleanly on the **plain** decoded engine (and vice versa) — the
/// checkpoint format carries no optimizer state, and the decoded-image
/// cache key's optimizer discriminant keeps the streams from aliasing.
#[test]
fn resume_crosses_engine_legs_without_divergence() {
    let t = targets::by_name("giftext").expect("bundled target");
    let m = t.module();
    let seeds = (t.seeds)();
    let reference = campaign(t, Engine::Reference);

    let dir = temp_dir("cross-resume");
    let mut ck = CheckpointConfig {
        snapshot_every_execs: 40,
        ..CheckpointConfig::new(&dir)
    };
    ck.kill_after_execs = Some(97);
    {
        let _guards = Engine::DecodedOpt.pin();
        let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).expect("instrument");
        let out = Campaign::new(&seeds, &cfg())
            .executor(&mut ex)
            .checkpoint(ck.clone())
            .run()
            .expect("first leg");
        assert!(matches!(out, CampaignOutcome::Killed { .. }));
    }
    ck.kill_after_execs = None;
    let _guards = Engine::DecodedPlain.pin();
    let mut ex2 = ClosureXExecutor::new(&m, ClosureXConfig::default()).expect("instrument");
    let (out2, _info) = Campaign::new(&seeds, &cfg())
        .executor(&mut ex2)
        .checkpoint(ck)
        .resume()
        .expect("resume");
    let CampaignOutcome::Finished(resumed) = out2 else {
        panic!("resumed campaign must finish");
    };
    assert_observables_equal(&resumed, &reference, "cross-engine kill/resume");
    let _ = std::fs::remove_dir_all(dir);
}
