//! Golden equivalence: the decoded-bytecode engine must be observably
//! indistinguishable from the reference AST-walking interpreter.
//!
//! "Observable" means everything a campaign can see or persist: execution
//! counts, the simulated cycle clock, the accumulated coverage hash, crash
//! sites, and the bytes of checkpoint snapshots (`ckpt-*`) and journals
//! (`journal-*`). Two targets are exercised: `giftext` (bug-free, deep
//! format loop) and `gpmf-parser` (planted bugs, so real crash sites flow
//! through both engines).
//!
//! The reference path here is selected per-thread with
//! [`vmos::ReferenceEngineGuard`]; building the whole workspace with
//! `--features slow-interp` pins every thread to the same reference code
//! and must make this test trivially pass (both sides then run the
//! reference engine).

use aflrs::{
    Campaign, CampaignConfig, CampaignOutcome, CampaignResult, CheckpointConfig,
};
use closurex::harness::{ClosureXConfig, ClosureXExecutor};
use vmos::ReferenceEngineGuard;

const BUDGET: u64 = 3_000_000;

fn cfg() -> CampaignConfig {
    CampaignConfig {
        budget_cycles: BUDGET,
        seed: 0xC0FFEE,
        deterministic_stage: true,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    }
}

fn campaign(target: &targets::TargetSpec, reference: bool) -> CampaignResult {
    let _guard = reference.then(ReferenceEngineGuard::new);
    let m = target.module();
    let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).expect("instrument");
    let seeds = (target.seeds)();
    Campaign::new(&seeds, &cfg())
        .executor(&mut ex)
        .run()
        .expect("plain campaign config is always valid")
        .finished()
        .expect("no kill configured")
}

fn assert_observables_equal(a: &CampaignResult, b: &CampaignResult, what: &str) {
    assert_eq!(a.execs, b.execs, "{what}: execs");
    assert_eq!(a.clock_cycles, b.clock_cycles, "{what}: simulated clock");
    assert_eq!(a.exec_cycles, b.exec_cycles, "{what}: exec cycles");
    assert_eq!(a.mgmt_cycles, b.mgmt_cycles, "{what}: mgmt cycles");
    assert_eq!(a.edges_found, b.edges_found, "{what}: edges");
    assert_eq!(a.coverage_hash, b.coverage_hash, "{what}: coverage hash");
    assert_eq!(a.queue_len, b.queue_len, "{what}: queue length");
    assert_eq!(a.hangs, b.hangs, "{what}: hangs");
    assert_eq!(a.queue_inputs, b.queue_inputs, "{what}: queue inputs");
    assert_eq!(
        format!("{:?}", a.crashes),
        format!("{:?}", b.crashes),
        "{what}: crash records (site, kind, input, discovery time)"
    );
}

fn equivalence_on(target_name: &str) {
    let t = targets::by_name(target_name).expect("bundled target");
    let decoded = campaign(t, false);
    let reference = campaign(t, true);
    assert!(decoded.execs > 50, "campaign must actually run");
    assert_observables_equal(&decoded, &reference, target_name);
}

#[test]
fn giftext_campaign_is_bit_identical_across_engines() {
    equivalence_on("giftext");
}

#[test]
fn gpmf_campaign_with_crashes_is_bit_identical_across_engines() {
    let t = targets::by_name("gpmf-parser").expect("bundled target");
    let decoded = campaign(t, false);
    let reference = campaign(t, true);
    assert_observables_equal(&decoded, &reference, "gpmf-parser");
    assert!(
        !decoded.crashes.is_empty(),
        "gpmf has planted bugs; the crash-site comparison must not be vacuous"
    );
}

/// Collect `(file name, bytes)` of every checkpoint artifact in `dir`,
/// sorted by name.
fn checkpoint_files(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("checkpoint dir")
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("cx-equiv-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn checkpoint_bytes_are_identical_across_engines() {
    let t = targets::by_name("giftext").expect("bundled target");
    let m = t.module();
    let mut dirs = Vec::new();
    for (tag, reference) in [("decoded", false), ("reference", true)] {
        let _guard = reference.then(ReferenceEngineGuard::new);
        let dir = temp_dir(tag);
        let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).expect("instrument");
        let ck = CheckpointConfig {
            snapshot_every_execs: 50,
            keep_snapshots: 1000, // keep everything: compare the full history
            ..CheckpointConfig::new(&dir)
        };
        let seeds = (t.seeds)();
        let out = Campaign::new(&seeds, &cfg())
            .executor(&mut ex)
            .checkpoint(ck)
            .run()
            .expect("checkpointed campaign");
        assert!(matches!(out, CampaignOutcome::Finished(_)));
        dirs.push(dir);
    }
    let decoded = checkpoint_files(&dirs[0]);
    let reference = checkpoint_files(&dirs[1]);
    let names = |fs: &[(String, Vec<u8>)]| fs.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>();
    assert_eq!(names(&decoded), names(&reference), "same artifact set");
    for ((name, da), (_, db)) in decoded.iter().zip(reference.iter()) {
        assert_eq!(da, db, "checkpoint artifact {name} must be byte-identical");
    }
    assert!(
        decoded.iter().any(|(n, _)| n.starts_with("ckpt-"))
            && decoded.iter().any(|(n, _)| n.starts_with("journal-")),
        "comparison must cover both snapshots and journals"
    );
    for d in dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn kill_and_resume_on_decoded_engine_matches_uninterrupted_reference() {
    let t = targets::by_name("gpmf-parser").expect("bundled target");
    let m = t.module();
    let seeds = (t.seeds)();

    // Ground truth: one uninterrupted run on the reference engine.
    let reference = campaign(t, true);

    // Decoded engine: kill mid-campaign (off the snapshot grid), resume.
    let dir = temp_dir("resume");
    let mut ck = CheckpointConfig {
        snapshot_every_execs: 40,
        ..CheckpointConfig::new(&dir)
    };
    ck.kill_after_execs = Some(97);
    let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).expect("instrument");
    let out = Campaign::new(&seeds, &cfg())
        .executor(&mut ex)
        .checkpoint(ck.clone())
        .run()
        .expect("first leg");
    let CampaignOutcome::Killed { execs } = out else {
        panic!("kill_after_execs must fire before the budget runs out");
    };
    assert!(execs >= 97);

    ck.kill_after_execs = None;
    let mut ex2 = ClosureXExecutor::new(&m, ClosureXConfig::default()).expect("instrument");
    let (out2, _info) = Campaign::new(&seeds, &cfg())
        .executor(&mut ex2)
        .checkpoint(ck)
        .resume()
        .expect("resume");
    let CampaignOutcome::Finished(resumed) = out2 else {
        panic!("resumed campaign must finish");
    };
    assert_observables_equal(&resumed, &reference, "kill/resume round-trip");
    let _ = std::fs::remove_dir_all(dir);
}
