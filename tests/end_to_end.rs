//! Workspace integration tests: the full stack — MinC → passes → VM →
//! executors → fuzzer — exercised across crate boundaries.

use aflrs::{Campaign, CampaignConfig, CampaignResult};
use closurex::correctness::check_queue;
use closurex::executor::{ExecStatus, Executor};
use closurex::forkserver::ForkServerExecutor;
use closurex::harness::{ClosureXConfig, ClosureXExecutor};
use closurex::naive::NaivePersistentExecutor;

/// One plain campaign through the unified builder.
fn run_campaign(ex: &mut dyn Executor, seeds: &[Vec<u8>], cfg: &CampaignConfig) -> CampaignResult {
    Campaign::new(seeds, cfg)
        .executor(ex)
        .run()
        .expect("plain campaign config is always valid")
        .finished()
        .expect("no kill configured")
}

/// The paper's core claim, end to end: on the same stateful target, naive
/// persistent mode diverges from fresh semantics, ClosureX does not, and
/// ClosureX is faster than the forkserver.
#[test]
fn correctness_and_speed_on_stateful_target() {
    let src = r#"
        global mode;
        global seen;
        fn main() {
            var f = fopen("/fuzz/input", 0);
            if (f == 0) { exit(1); }
            var buf[8];
            var n = fread(buf, 1, 8, f);
            fclose(f);
            if (n > 0) {
                if (load8(buf) == 'M') { mode = 1; }
            }
            seen = seen + 1;
            if (mode == 1) {
                if (n > 1) {
                    if (load8(buf + 1) == '!') { return load64(0); }
                }
            }
            return 0;
        }
    "#;
    let module = minic::compile("stateful", src).unwrap();

    // The "missed/false crash" input: crashes ONLY if mode was left set by
    // a previous 'M' input.
    let plain_bang = b"x!";
    let m_bang = b"M!";

    // Fresh semantics: "x!" never crashes, "M!" always does.
    let mut cx = ClosureXExecutor::new(&module, ClosureXConfig::default()).unwrap();
    let mut np = NaivePersistentExecutor::new(&module).unwrap();

    // Pollute both with an 'M' input first.
    cx.run(b"Mzz");
    np.run(b"Mzz");

    let cx_out = cx.run(plain_bang);
    assert_eq!(
        cx_out.status,
        ExecStatus::Exit(0),
        "ClosureX must not leak `mode` across test cases"
    );
    let np_out = np.run(plain_bang);
    assert!(
        np_out.status.crash().is_some(),
        "naive persistent mode produces the false crash"
    );

    // Real bug reproduces identically under ClosureX.
    assert!(cx.run(m_bang).status.crash().is_some());

    // And ClosureX outpaces the forkserver on the same budget.
    let cfg = CampaignConfig {
        budget_cycles: 8_000_000,
        seed: 3,
        deterministic_stage: false,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    };
    let mut cx2 = ClosureXExecutor::new(&module, ClosureXConfig::default()).unwrap();
    let fast = run_campaign(&mut cx2, &[b"seed".to_vec()], &cfg);
    let mut fk = ForkServerExecutor::new(&module).unwrap();
    let slow = run_campaign(&mut fk, &[b"seed".to_vec()], &cfg);
    assert!(
        fast.execs > slow.execs,
        "closurex {} vs forkserver {}",
        fast.execs,
        slow.execs
    );
}

/// Every bundled benchmark target survives a short ClosureX campaign with
/// zero resource-exhaustion false crashes and a clean heap afterwards.
#[test]
fn benchmarks_run_clean_under_closurex() {
    for t in targets::all() {
        let module = t.module();
        let mut ex = ClosureXExecutor::new(&module, ClosureXConfig::default()).unwrap();
        let cfg = CampaignConfig {
            budget_cycles: 3_000_000,
            seed: 1,
            deterministic_stage: false,
            stop_after_crashes: 0,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&mut ex, &(t.seeds)(), &cfg);
        assert_eq!(
            r.false_crashes(),
            0,
            "{}: ClosureX can never exhaust fds/heap",
            t.name
        );
        assert!(r.execs > 10, "{}: campaign must make progress", t.name);
    }
}

/// §6.1.4 equivalence holds for a seed queue on a bug-free benchmark.
#[test]
fn seed_queue_equivalence_on_zlib() {
    let t = targets::by_name("zlib").unwrap();
    let report = check_queue(&t.module(), &(t.seeds)(), 40, 9, 2_000_000).unwrap();
    assert!(report.all_ok(), "failures: {}", report.failures());
}

/// Witness inputs reproduce under ClosureX persistent mode exactly as in a
/// fresh process — bug reproducibility, the paper's §3 non-reproducibility
/// complaint inverted.
#[test]
fn witnesses_reproduce_under_persistent_closurex() {
    for name in ["c-blosc2", "gpmf-parser", "libbpf", "md4c"] {
        let t = targets::by_name(name).unwrap();
        let module = t.module();
        let mut ex = ClosureXExecutor::new(&module, ClosureXConfig::default()).unwrap();
        // Interleave benign seeds between witnesses to pollute state.
        for (bug_id, input) in (t.witnesses)() {
            for s in (t.seeds)() {
                ex.run(&s);
            }
            let out = ex.run(&input);
            let crash = out
                .status
                .crash()
                .unwrap_or_else(|| panic!("{name}: witness for {bug_id} must crash"));
            let bug = t
                .identify(crash)
                .unwrap_or_else(|| panic!("{name}: {bug_id} crash unidentified: {crash}"));
            assert_eq!(bug.id, bug_id, "{name}: wrong bug for witness");
        }
    }
}

/// The deferred-init option speeds up targets with hoistable startup work
/// without changing observable behavior.
#[test]
fn deferred_init_speeds_up_pcap() {
    let t = targets::by_name("libpcap").unwrap();
    let module = t.module();
    let seed = (t.seeds)()[0].clone();
    let mut plain = ClosureXExecutor::new(&module, ClosureXConfig::default()).unwrap();
    let mut deferred = ClosureXExecutor::new(
        &module,
        ClosureXConfig {
            deferred_init: true,
            warmup_input: seed.clone(),
            ..ClosureXConfig::default()
        },
    )
    .unwrap();
    let p = plain.run(&seed);
    let d = deferred.run(&seed);
    assert_eq!(p.status, d.status);
    assert!(
        d.insts < p.insts,
        "deferred {} must beat plain {}",
        d.insts,
        p.insts
    );
}
