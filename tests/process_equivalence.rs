//! Golden process-isolation equivalence: a sharded campaign run with
//! `Isolation::Process` — every lane in its own supervised child process,
//! speaking the checksum-framed pipe protocol — must be bit-identical to
//! the in-process engine on the same lane decomposition
//! (`CampaignResult::sans_supervision` is the comparison key), on both
//! execution engines, at any worker count. A worker SIGKILLed at *any*
//! `(lane, epoch)` grid position must recover to the exact uninterrupted
//! result, and a checkpointed campaign killed mid-run under either
//! isolation mode must resume under the *other* mode to the same result —
//! the checkpoint format is engine-neutral.
//!
//! This test is `harness = false`: the binary's `main` installs
//! [`aflrs::worker_main_hook`] first, because the supervisor spawns lane
//! workers by re-exec'ing the current executable — i.e. this test binary
//! doubles as its own worker.

use aflrs::{
    Campaign, CampaignConfig, CampaignOutcome, CampaignResult, CheckpointConfig, Isolation,
    SupervisorConfig,
};
use bench::{Mechanism, MechanismFactory};
use vmos::{ProcFaultKind, ProcFaultPlan, ReferenceEngineGuard};

const BUDGET: u64 = 3_000_000;
/// Explicit lane grid (both modes run the same schedule; smaller than the
/// campaign defaults so the SIGKILL grid stays tractable).
const LANES: usize = 4;
const EPOCHS: u64 = 4;

fn cfg() -> CampaignConfig {
    CampaignConfig {
        budget_cycles: BUDGET,
        seed: 0xC0FFEE,
        deterministic_stage: true,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    }
}

/// Everything a campaign reports, as one comparable string.
fn fingerprint(r: &CampaignResult) -> String {
    // The resume report describes how a run was revived, not what it
    // computed — strip it so resumed results compare against clean ones.
    format!("{:?}", r.sans_resume())
}

fn corpus(t: &targets::TargetSpec, with_witnesses: bool) -> Vec<Vec<u8>> {
    let mut seeds = (t.seeds)();
    if with_witnesses {
        seeds.extend((t.witnesses)().into_iter().map(|(_, input)| input));
    }
    seeds
}

fn run_mode(
    t: &targets::TargetSpec,
    iso: Isolation,
    shards: usize,
    with_witnesses: bool,
    reference: bool,
    sup: Option<SupervisorConfig>,
) -> CampaignResult {
    let _guard = reference.then(ReferenceEngineGuard::new);
    let factory = MechanismFactory::new(Mechanism::ClosureX, t);
    let seeds = corpus(t, with_witnesses);
    let mut c = Campaign::new(&seeds, &cfg())
        .factory(&factory)
        .lanes(LANES)
        .sync_epochs(EPOCHS)
        .shards(shards)
        .isolation(iso);
    if let Some(sup) = sup {
        c = c.supervision(sup);
    }
    c.run()
        .expect("campaign survives supervised process faults")
        .finished()
        .expect("no kill configured")
}

fn identity_on(name: &str, with_witnesses: bool, reference: bool) -> CampaignResult {
    let t = targets::by_name(name).expect("bundled target");
    let inproc = run_mode(t, Isolation::InProcess, 1, with_witnesses, reference, None);
    assert!(inproc.execs > 50, "{name}: campaign must actually run");
    let want = fingerprint(&inproc.sans_supervision());
    // Process mode at several worker counts (the knob is ignored there —
    // every lane is its own process — but the API must stay invariant).
    for shards in [1, 2, 4] {
        let r = run_mode(t, Isolation::Process, shards, with_witnesses, reference, None);
        assert_eq!(
            fingerprint(&r.sans_supervision()),
            want,
            "{name}: process isolation (shards={shards}) must be bit-identical to in-process"
        );
        assert!(
            r.resilience.supervision.is_quiet(),
            "{name}: an unfaulted process-mode run reports no supervision activity"
        );
    }
    inproc
}

fn process_matches_in_process_on_giftext() {
    identity_on("giftext", false, false);
}

fn process_matches_in_process_on_gpmf_with_crashes() {
    let r = identity_on("gpmf-parser", true, false);
    assert!(
        !r.crashes.is_empty(),
        "gpmf has planted bugs; the cross-process crash merge must not be vacuous"
    );
}

fn process_identity_holds_on_reference_engine() {
    // The engine choice crosses the process boundary via the Hello frame.
    identity_on("giftext", false, true);
}

fn sigkill_recovery_is_exact_everywhere() {
    let t = targets::by_name("giftext").expect("bundled target");
    let clean = run_mode(t, Isolation::Process, 1, false, false, None);
    let want = fingerprint(&clean.sans_supervision());
    for lane in 0..LANES as u64 {
        for epoch in 0..EPOCHS {
            let sup = SupervisorConfig {
                proc_faults: ProcFaultPlan::at(lane, epoch, ProcFaultKind::Kill),
                ..SupervisorConfig::default()
            };
            let r = run_mode(t, Isolation::Process, 1, false, false, Some(sup));
            assert_eq!(
                fingerprint(&r.sans_supervision()),
                want,
                "giftext: SIGKILL at (lane {lane}, epoch {epoch}) must recover exactly"
            );
            assert!(
                r.resilience.supervision.faults_contained() >= 1,
                "giftext: the SIGKILL must actually land"
            );
            assert_eq!(r.resilience.supervision.recovered, 1);
            assert!(r.resilience.supervision.degradations.is_empty());
        }
    }
}

fn repeated_aborts_degrade_the_lane_not_the_campaign() {
    let t = targets::by_name("giftext").expect("bundled target");
    let mut faults = ProcFaultPlan::at(2, 1, ProcFaultKind::Abort);
    faults.targeted[0].fires = 10;
    let sup = SupervisorConfig {
        max_lane_retries: 2,
        proc_faults: faults,
        ..SupervisorConfig::default()
    };
    let r = run_mode(t, Isolation::Process, 1, false, false, Some(sup));
    let s = &r.resilience.supervision;
    assert_eq!(s.degradations.len(), 1, "exactly one lane retired");
    let d = &s.degradations[0];
    assert_eq!((d.lane, d.epoch), (2, 1));
    assert_eq!(d.attempts, 3, "initial failure + two respawn retries");
    assert!(d.reclaimed_cycles > 0, "unspent budget was folded forward");
    assert!(
        r.execs > 50,
        "the surviving lanes keep fuzzing after the degradation"
    );
}

/// Kill a checkpointed campaign mid-run under one isolation mode and
/// resume it under another: every pairing must reproduce the
/// uninterrupted result — the on-disk checkpoint does not know or care
/// where lanes execute.
fn kill_and_resume_crosses_isolation_modes() {
    let t = targets::by_name("gpmf-parser").expect("bundled target");
    let factory = MechanismFactory::new(Mechanism::ClosureX, t);
    let seeds = corpus(t, true);
    let want = fingerprint(&run_mode(t, Isolation::InProcess, 1, true, false, None));

    for (leg1, leg2) in [
        (Isolation::Process, Isolation::Process),
        (Isolation::Process, Isolation::InProcess),
        (Isolation::InProcess, Isolation::Process),
    ] {
        let dir = std::env::temp_dir().join(format!(
            "cx-proc-resume-{}-{:?}-{:?}",
            std::process::id(),
            leg1,
            leg2
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut ck = CheckpointConfig::new(dir.clone());
        // Off any epoch boundary: the kill lands mid-epoch and resume
        // must replay the per-lane journals of the interrupted epoch.
        ck.kill_after_execs = Some(97);
        let out = Campaign::new(&seeds, &cfg())
            .factory(&factory)
            .lanes(LANES)
            .sync_epochs(EPOCHS)
            .shards(2)
            .isolation(leg1)
            .checkpoint(ck.clone())
            .run()
            .expect("first leg");
        let CampaignOutcome::Killed { execs } = out else {
            panic!("kill_after_execs must fire before the budget runs out ({leg1:?})");
        };
        assert!(execs >= 97);

        ck.kill_after_execs = None;
        let (resumed, info) = Campaign::new(&seeds, &cfg())
            .factory(&factory)
            .lanes(LANES)
            .sync_epochs(EPOCHS)
            .shards(4)
            .isolation(leg2)
            .checkpoint(ck)
            .resume()
            .expect("resume leg");
        let CampaignOutcome::Finished(resumed) = resumed else {
            panic!("resumed campaign must finish ({leg2:?})");
        };
        assert_eq!(
            fingerprint(&resumed.sans_supervision()),
            want,
            "kill under {leg1:?} / resume under {leg2:?} must reproduce the \
             uninterrupted result; resume info: {info:?}"
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}

fn main() {
    // Hidden worker entrypoint — must run before anything else: when the
    // supervisor under test re-execs this binary, the child serves the
    // lane protocol and exits here.
    aflrs::worker_main_hook(bench::factory_from_spec);

    let tests: &[(&str, fn())] = &[
        (
            "process_matches_in_process_on_giftext",
            process_matches_in_process_on_giftext,
        ),
        (
            "process_matches_in_process_on_gpmf_with_crashes",
            process_matches_in_process_on_gpmf_with_crashes,
        ),
        (
            "process_identity_holds_on_reference_engine",
            process_identity_holds_on_reference_engine,
        ),
        (
            "sigkill_recovery_is_exact_everywhere",
            sigkill_recovery_is_exact_everywhere,
        ),
        (
            "repeated_aborts_degrade_the_lane_not_the_campaign",
            repeated_aborts_degrade_the_lane_not_the_campaign,
        ),
        (
            "kill_and_resume_crosses_isolation_modes",
            kill_and_resume_crosses_isolation_modes,
        ),
    ];

    println!("\nrunning {} tests", tests.len());
    let mut failed = 0usize;
    for (name, f) in tests {
        use std::io::Write as _;
        print!("test {name} ... ");
        let _ = std::io::stdout().flush();
        match std::panic::catch_unwind(f) {
            Ok(()) => println!("ok"),
            Err(_) => {
                println!("FAILED");
                failed += 1;
            }
        }
    }
    println!(
        "\ntest result: {}. {} passed; {failed} failed\n",
        if failed == 0 { "ok" } else { "FAILED" },
        tests.len() - failed
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
