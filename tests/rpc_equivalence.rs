//! RPC-plane correctness gate: the network front end is *invisible* to
//! campaign results. Everything a client observes over the faulted wire —
//! admission outcomes, status, and above all the final [`CampaignResult`]
//! — must be bit-identical to the same campaign driven through the
//! in-process [`Service`] API (transport counters excluded, trivially:
//! they live outside the result), across
//!
//! * the full deterministic [`NetFaultPlan`] grid — every fault kind ×
//!   both directions × every early frame position, on both engines
//!   (optimized decoded lowering and the plain decoded streams),
//! * a server crash ([`RpcServer::kill`]) with service churn and restore,
//!   the client resuming its session against the successor server,
//! * retried `Submit`s landing as duplicates (admission-level idempotency
//!   when the reply journal can no longer answer), and
//! * the recovery ladder's last rung: degraded-local execution through
//!   the very same `execute_op` path the server runs.

use aflrs::{
    Campaign, CampaignConfig, CampaignResult, CampaignSpec, Degraded, MemNet,
    RemoteAdmissionError, RemoteError, RemoteOptions, RemoteService, RpcServer, ServedBy,
    ServerOptions, Service, ServiceConfig, ServiceError,
};
use bench::{Mechanism, MechanismFactory, MechanismResolver};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use vmos::{NetFaultKind, NetFaultPlan};

/// Tiny budget: the grid runs dozens of campaigns; transport faults do
/// not touch the campaign, so a short run discriminates just as well.
const BUDGET: u64 = 150_000;

fn cfg_with(budget: u64) -> CampaignConfig {
    CampaignConfig {
        budget_cycles: budget,
        seed: 0xC0FFEE,
        deterministic_stage: true,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    }
}

fn cfg() -> CampaignConfig {
    cfg_with(BUDGET)
}

fn fingerprint(r: &CampaignResult) -> String {
    format!("{:?}", r.sans_resume())
}

fn factory_spec(target: &str) -> Vec<u8> {
    let mut w = vmos::Writer::new();
    w.put_u8(Mechanism::ClosureX.wire_tag());
    w.put_str(target);
    w.into_bytes()
}

fn corpus(target: &str) -> Vec<Vec<u8>> {
    let t = targets::by_name(target).expect("bundled target");
    let mut seeds = (t.seeds)();
    seeds.extend((t.witnesses)().into_iter().map(|(_, input)| input));
    seeds
}

fn spec(name: &str, decode_opt: bool) -> CampaignSpec {
    let mut s = CampaignSpec::new(name, factory_spec("giftext"), corpus("giftext"), cfg());
    s.shards = 1;
    s.decode_opt = decode_opt;
    s
}

/// Ground truth per engine: the same campaign through a *local* (no RPC)
/// service over its own directory.
fn service_reference(decode_opt: bool) -> String {
    let dir = tmp(if decode_opt { "ref-opt" } else { "ref-plain" });
    let resolver: Arc<dyn aflrs::SpecResolver> = Arc::new(MechanismResolver);
    let service = Service::new(ServiceConfig::new(&dir), resolver).expect("service starts");
    let h = service.submit(spec("grid", decode_opt)).expect("admission");
    let fp = fingerprint(&h.await_result().expect("local campaign finishes"));
    drop(service);
    let _ = std::fs::remove_dir_all(dir);
    fp
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cx-rpc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn client_opts(plan: NetFaultPlan) -> RemoteOptions {
    RemoteOptions {
        fault_plan: plan,
        // Short timeouts: a dropped frame should cost milliseconds, not
        // the default interactive-scale patience — the grid campaigns
        // finish in well under a second, so even a dropped Await retries
        // into a journal replay quickly.
        read_timeout: Duration::from_millis(50),
        await_timeout: Duration::from_secs(2),
        ..RemoteOptions::default()
    }
}

/// Which counter proves a given fault kind actually fired.
fn fired(kind: NetFaultKind, c: &aflrs::RpcCounters) -> u64 {
    match kind {
        NetFaultKind::Drop => c.frames_dropped,
        NetFaultKind::Delay => c.frames_delayed,
        NetFaultKind::Duplicate => c.frames_duplicated,
        NetFaultKind::Corrupt => c.frames_corrupted,
        NetFaultKind::Disconnect => c.disconnects_injected,
        NetFaultKind::PartialFrame => c.partial_frames,
    }
}

const GRID_KINDS: [NetFaultKind; 6] = [
    NetFaultKind::Drop,
    NetFaultKind::Delay,
    NetFaultKind::Duplicate,
    NetFaultKind::Corrupt,
    NetFaultKind::Disconnect,
    NetFaultKind::PartialFrame,
];

/// The tentpole gate: every fault kind, on each direction, at each of the
/// first three frame positions of the client's first connection (hello /
/// submit / await on the way out; hello-ok / submit-reply / result on the
/// way back). The remote result must be bit-identical to the in-process
/// service run, on both engines, and the targeted fault must demonstrably
/// have fired.
#[test]
fn fault_grid_is_bit_identical_on_both_engines() {
    for decode_opt in [true, false] {
        let want = service_reference(decode_opt);
        for kind in GRID_KINDS {
            for direction in [0u8, 1u8] {
                for frame in 0u64..3 {
                    let tag = format!(
                        "{}-d{direction}-f{frame}-{}",
                        kind.name(),
                        if decode_opt { "opt" } else { "plain" }
                    );
                    let dir = tmp(&tag);
                    let resolver: Arc<dyn aflrs::SpecResolver> = Arc::new(MechanismResolver);
                    let service = Arc::new(
                        Service::new(ServiceConfig::new(&dir), resolver).expect("service"),
                    );
                    let net = MemNet::new();
                    // One targeted plan, shared by value with both
                    // endpoints; each endpoint only injects on its own
                    // direction, so exactly one side fires it.
                    let plan = NetFaultPlan::at(0, direction, frame, kind);
                    let server = RpcServer::start(
                        Arc::clone(&service),
                        &net,
                        ServerOptions {
                            fault_plan: plan.clone(),
                            ..ServerOptions::default()
                        },
                    );
                    let client =
                        RemoteService::connect(&net, client_opts(plan)).expect("client connects");
                    let h = client.submit(spec("grid", decode_opt)).expect("admission");
                    let r = h.await_result().expect("remote campaign finishes");
                    assert_eq!(
                        fingerprint(&r),
                        want,
                        "{tag}: the faulted wire must not alter the result"
                    );
                    let hit = fired(kind, &client.counters()) + fired(kind, &server.counters());
                    assert!(hit > 0, "{tag}: the targeted fault never fired");
                    server.stop();
                    drop(service);
                    let _ = std::fs::remove_dir_all(dir);
                }
            }
        }
    }
}

/// Sustained random loss on both directions: the retry ladder grinds
/// through it and the result is still bit-identical.
#[test]
fn lossy_wire_converges_to_the_clean_result() {
    let want = service_reference(true);
    let dir = tmp("lossy");
    let resolver: Arc<dyn aflrs::SpecResolver> = Arc::new(MechanismResolver);
    let service = Arc::new(Service::new(ServiceConfig::new(&dir), resolver).expect("service"));
    let net = MemNet::new();
    let plan = NetFaultPlan::uniform_lossy(0xBAD_CAB1E, 0.12);
    let server = RpcServer::start(
        Arc::clone(&service),
        &net,
        ServerOptions {
            fault_plan: plan.clone(),
            ..ServerOptions::default()
        },
    );
    let mut opts = client_opts(plan);
    opts.max_attempts = 32;
    let client = RemoteService::connect(&net, opts).expect("client connects");
    let h = client.submit(spec("lossy", true)).expect("admission");
    let r = h.await_result().expect("remote campaign finishes through the loss");
    assert_eq!(fingerprint(&r), want, "loss is retried away, never absorbed");
    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}

/// Server crash + service churn: the campaign dies mid-epoch (torn
/// journal tails), the RPC server is killed abruptly, and a successor
/// server over the restored service answers the *same client* — session
/// resumed, result bit-identical to the uninterrupted run.
#[test]
fn server_kill_and_restore_resumes_the_session() {
    // A budget big enough that the 151-exec kill switch fires mid-run.
    let churn_budget = 1_500_000;
    // Uninterrupted ground truth through the single-campaign builder.
    let t = targets::by_name("giftext").expect("bundled target");
    let factory = MechanismFactory::new(Mechanism::ClosureX, t);
    let want = fingerprint(
        &Campaign::new(&corpus("giftext"), &cfg_with(churn_budget))
            .factory(&factory)
            .run()
            .expect("reference campaign runs")
            .finished()
            .expect("no kill configured"),
    );

    let dir = tmp("churn");
    let resolver: Arc<dyn aflrs::SpecResolver> = Arc::new(MechanismResolver);
    let net = MemNet::new();

    // Leg 1: armed kill switch; the tenant dies mid-epoch (151 is off
    // every barrier) and the client sees the typed Killed error over RPC.
    let mut churn_cfg = ServiceConfig::new(&dir);
    churn_cfg.kill_after_execs = Some(151);
    let service1 = Arc::new(
        Service::new(churn_cfg, Arc::clone(&resolver)).expect("service starts"),
    );
    let server1 = RpcServer::start(Arc::clone(&service1), &net, ServerOptions::default());
    let mut opts = client_opts(NetFaultPlan::none());
    opts.await_timeout = Duration::from_secs(30); // the churn campaign is real work
    let client = RemoteService::connect(&net, opts).expect("client connects");
    let session = client.session();
    assert_ne!(session, 0, "a live handshake assigns a session");
    let mut churn_spec =
        CampaignSpec::new("churn", factory_spec("giftext"), corpus("giftext"), cfg_with(churn_budget));
    churn_spec.shards = 2;
    let h = client.submit(churn_spec).expect("admission");
    match h.await_result() {
        Err(RemoteError::Service(ServiceError::Killed { execs })) => {
            assert!(execs >= 151, "kill switch must have fired");
        }
        other => panic!("expected the killed campaign over the wire, got {other:?}"),
    }

    // Abrupt server death + graceful service drain: durable state is
    // spec.bin, the shard checkpoints with torn tails, and the RPC reply
    // journal.
    server1.kill();
    drop(service1);

    // Leg 2: successor server over the restored service, same MemNet,
    // same client value. The next call reconnects, resumes the session,
    // and the resumed campaign finishes bit-identically.
    let service2 = Arc::new(
        Service::restore(ServiceConfig::new(&dir), resolver).expect("service restores"),
    );
    let server2 = RpcServer::start(Arc::clone(&service2), &net, ServerOptions::default());
    let h = client
        .handle("churn")
        .expect("transport recovers")
        .expect("tenant survived the churn");
    let r = h.await_result().expect("restored campaign finishes");
    assert_eq!(
        fingerprint(&r),
        want,
        "server kill + service churn + restore must reproduce the uninterrupted result"
    );
    assert!(
        r.resume.expect("restored result carries its resume report").records_applied > 0,
        "resume must replay a journal tail"
    );
    assert_eq!(client.session(), session, "the session survives the server");
    assert!(
        client.counters().sessions_resumed > 0,
        "the successor server must resume, not reassign, the session"
    );
    server2.stop();
    let _ = std::fs::remove_dir_all(dir);
}

/// Admission-level idempotency: when the reply journal can no longer
/// answer a retried Submit (here: a different client session entirely),
/// an identical spec dedupes into success while a conflicting spec is
/// still refused as a duplicate.
#[test]
fn duplicate_submits_dedupe_only_on_identical_specs() {
    let dir = tmp("dedup");
    let resolver: Arc<dyn aflrs::SpecResolver> = Arc::new(MechanismResolver);
    let service = Arc::new(Service::new(ServiceConfig::new(&dir), resolver).expect("service"));
    let net = MemNet::new();
    let server = RpcServer::start(Arc::clone(&service), &net, ServerOptions::default());

    let a = RemoteService::connect(&net, client_opts(NetFaultPlan::none())).expect("client a");
    let b = RemoteService::connect(&net, client_opts(NetFaultPlan::none())).expect("client b");
    assert_ne!(a.session(), b.session(), "distinct sessions");

    let s = spec("dedup", true);
    a.submit(s.clone()).expect("first admission");
    // The same bytes again, from a session whose journal has never seen
    // the request: admitted-as-duplicate collapses to success.
    b.submit(s.clone()).expect("identical spec dedupes to success");
    assert!(
        server.counters().dup_submits_deduped > 0,
        "the dedup path, not a fresh admission, must have served it"
    );
    // Same name, different campaign: a real conflict, refused.
    let mut conflicting = spec("dedup", false);
    conflicting.cfg.seed ^= 1;
    match b.submit(conflicting) {
        Err(RemoteError::Admission(RemoteAdmissionError::Duplicate(name))) => {
            assert_eq!(name, "dedup");
        }
        other => panic!("conflicting spec must stay refused, got {other:?}"),
    }
    let r = a
        .handle("dedup")
        .expect("transport up")
        .expect("tenant exists")
        .await_result()
        .expect("campaign finishes");
    // The tenant name never reaches the result: the deduped campaign is
    // bit-identical to the reference run under any name.
    assert_eq!(fingerprint(&r), service_reference(true));
    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}

/// The ladder's last rung: no server at all, a local fallback configured.
/// Every verb works, served degraded, and the result is bit-identical —
/// it runs through the same `execute_op` the server would have used.
#[test]
fn degraded_local_fallback_is_bit_identical() {
    let want = service_reference(true);
    let dir = tmp("degraded");
    let resolver: Arc<dyn aflrs::SpecResolver> = Arc::new(MechanismResolver);
    let fallback =
        Arc::new(Service::new(ServiceConfig::new(&dir), resolver).expect("service"));
    let net = MemNet::new(); // nobody listens
    let opts = RemoteOptions {
        max_attempts: 2,
        fallback: Some(Arc::clone(&fallback)),
        ..client_opts(NetFaultPlan::none())
    };
    let client = RemoteService::connect(&net, opts).expect("degraded connect succeeds");
    assert_eq!(client.served_by(), ServedBy::Degraded(Degraded::Local));
    assert_eq!(client.session(), 0, "no server ever assigned a session");
    let h = client.submit(spec("grid", true)).expect("degraded admission");
    assert!(h.status().is_ok());
    let r = h.await_result().expect("degraded campaign finishes");
    assert_eq!(
        fingerprint(&r),
        want,
        "the degraded rung serves the identical result"
    );
    let c = client.counters();
    assert!(c.degraded_calls >= 3, "every verb was served degraded: {c:?}");
    let _ = std::fs::remove_dir_all(dir);
}
