//! Golden sharding equivalence: the worker count of a sharded campaign is
//! a pure throughput knob. On a fixed lane decomposition, `shards ∈ {1,
//! 2, 4}` must produce the *identical* `CampaignResult` — coverage hash,
//! queue inputs, crash records, cycle accounting, resilience counters —
//! on both the decoded-bytecode engine and the AST-walking reference, and
//! a sharded checkpointed campaign killed mid-run must resume to the same
//! result.
//!
//! Two targets are exercised: `giftext` (bug-free, deep format loop) and
//! `gpmf-parser` (planted bugs, so the crash-dedup merge at epoch
//! barriers is not vacuous).

use aflrs::{Campaign, CampaignConfig, CampaignOutcome, CampaignResult, CheckpointConfig};
use closurex::executor::{Executor, ExecutorFactory};
use closurex::harness::{ClosureXConfig, ClosureXExecutor};
use closurex::resilience::HarnessError;
use vmos::ReferenceEngineGuard;

const BUDGET: u64 = 3_000_000;

fn cfg() -> CampaignConfig {
    cfg_with(BUDGET)
}

fn cfg_with(budget: u64) -> CampaignConfig {
    CampaignConfig {
        budget_cycles: budget,
        seed: 0xC0FFEE,
        deterministic_stage: true,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    }
}

/// Per-lane ClosureX executors over one compiled module.
struct CxFactory {
    module: fir::Module,
}

impl CxFactory {
    fn for_target(t: &targets::TargetSpec) -> Self {
        CxFactory { module: t.module() }
    }
}

impl ExecutorFactory for CxFactory {
    fn build(&self) -> Result<Box<dyn Executor + Send>, HarnessError> {
        ClosureXExecutor::new(&self.module, ClosureXConfig::default())
            .map(|ex| Box::new(ex) as Box<dyn Executor + Send>)
            .map_err(|e| HarnessError::BootFailed(e.to_string()))
    }
}

/// Everything a campaign reports, as one comparable string.
fn fingerprint(r: &CampaignResult) -> String {
    format!("{:?}", r.sans_resume())
}

/// The target's benign corpus, optionally spiked with its bug witnesses.
/// Witness seeds put real crash sites in front of multiple lanes, so the
/// crash-dedup merge at epoch barriers has actual work to do.
fn corpus(t: &targets::TargetSpec, with_witnesses: bool) -> Vec<Vec<u8>> {
    let mut seeds = (t.seeds)();
    if with_witnesses {
        seeds.extend((t.witnesses)().into_iter().map(|(_, input)| input));
    }
    seeds
}

fn sharded(
    t: &targets::TargetSpec,
    shards: usize,
    with_witnesses: bool,
    reference: bool,
) -> CampaignResult {
    let _guard = reference.then(ReferenceEngineGuard::new);
    let factory = CxFactory::for_target(t);
    let seeds = corpus(t, with_witnesses);
    Campaign::new(&seeds, &cfg())
        .factory(&factory)
        .shards(shards)
        .run()
        .expect("sharded campaign runs")
        .finished()
        .expect("no kill configured")
}

fn worker_count_invariant_on(name: &str, with_witnesses: bool, reference: bool) -> CampaignResult {
    let t = targets::by_name(name).expect("bundled target");
    let baseline = sharded(t, 1, with_witnesses, reference);
    assert!(baseline.execs > 50, "{name}: campaign must actually run");
    let want = fingerprint(&baseline);
    for shards in [2, 4] {
        let r = sharded(t, shards, with_witnesses, reference);
        assert_eq!(
            fingerprint(&r),
            want,
            "{name}: shards={shards} must be bit-identical to shards=1"
        );
    }
    baseline
}

#[test]
fn giftext_sharding_is_worker_count_invariant() {
    worker_count_invariant_on("giftext", false, false);
}

#[test]
fn gpmf_sharding_with_crashes_is_worker_count_invariant() {
    let baseline = worker_count_invariant_on("gpmf-parser", true, false);
    assert!(
        !baseline.crashes.is_empty(),
        "gpmf has planted bugs; the crash-merge comparison must not be vacuous"
    );
}

#[test]
fn sharding_is_worker_count_invariant_on_reference_engine() {
    let decoded_gif = worker_count_invariant_on("giftext", false, false);
    let reference_gif = worker_count_invariant_on("giftext", false, true);
    // Cross-engine: the sharded schedule itself is engine-independent.
    assert_eq!(
        fingerprint(&decoded_gif),
        fingerprint(&reference_gif),
        "giftext: sharded result must not depend on the execution engine"
    );
    worker_count_invariant_on("gpmf-parser", true, true);
}

#[test]
fn sharded_kill_and_resume_reproduces_uninterrupted_result() {
    let t = targets::by_name("gpmf-parser").expect("bundled target");
    let factory = CxFactory::for_target(t);
    let seeds = corpus(t, true);

    // Ground truth: the uninterrupted sharded campaign (any worker count;
    // use 1 so a merge bug can't contaminate both sides identically).
    let want = fingerprint(&sharded(t, 1, true, false));

    let dir = std::env::temp_dir().join(format!("cx-shard-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut ck = CheckpointConfig::new(dir.clone());
    // Off any epoch boundary: the kill lands mid-epoch and resume must
    // replay the per-lane journals of the interrupted epoch.
    ck.kill_after_execs = Some(97);
    let out = Campaign::new(&seeds, &cfg())
        .factory(&factory)
        .shards(2)
        .checkpoint(ck.clone())
        .run()
        .expect("first sharded leg");
    let CampaignOutcome::Killed { execs } = out else {
        panic!("kill_after_execs must fire before the budget runs out");
    };
    assert!(execs >= 97);

    ck.kill_after_execs = None;
    let (resumed, info) = Campaign::new(&seeds, &cfg())
        .factory(&factory)
        .shards(4)
        .checkpoint(ck)
        .resume()
        .expect("sharded resume");
    let CampaignOutcome::Finished(resumed) = resumed else {
        panic!("resumed sharded campaign must finish");
    };
    assert_eq!(
        fingerprint(&resumed),
        want,
        "sharded kill/resume (even at a different worker count) must \
         reproduce the uninterrupted result; resume info: {info:?}"
    );
    let _ = std::fs::remove_dir_all(dir);
}
