//! Workspace umbrella crate for the ClosureX reproduction.
//!
//! The real API surface lives in the member crates:
//!
//! * [`fir`] — the IR,
//! * [`minic`] — the MinC frontend,
//! * [`passes`] — the ClosureX compiler passes,
//! * [`vmos`] — the simulated OS + interpreter,
//! * [`closurex`] — the harness and execution mechanisms,
//! * [`aflrs`] — the coverage-guided fuzzer,
//! * [`targets`] — the ten benchmarks.
//!
//! This crate exists to host the runnable `examples/` and the cross-crate
//! integration tests in `tests/`.

pub use aflrs;
pub use closurex;
pub use fir;
pub use minic;
pub use passes;
pub use targets;
pub use vmos;
