//! Offline stand-in for `proptest` (the subset this workspace uses).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a miniature property-testing harness: seeded random generation through
//! composable [`strategy::Strategy`] values, the [`proptest!`] /
//! [`prop_oneof!`] / `prop_assert*!` macros, and per-test case counts via
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its seed, not a minimal
//!   counterexample;
//! * string strategies support the character-class regex subset
//!   (`[a-z]`, `[a-z0-9_]{0,10}`, `*`, `+`, `?`) rather than full regex;
//! * generation is deterministic per test-function name and case index, so
//!   failures reproduce run-to-run.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `Vec` strategy with element strategy `elem` and length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

/// Everything a property-test module needs, in one glob import.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert inside a `proptest!` body (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l != r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} == {:?})", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Define property tests: each `fn name(binding in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $pat = $crate::strategy::Strategy::new_value(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(x in 3u16..17, v in prop::collection::vec(any::<u8>(), 1..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
        }

        #[test]
        fn oneof_and_map(
            y in prop_oneof![
                (0u8..4).prop_map(|v| v as i32),
                Just(100i32),
            ],
        ) {
            prop_assert!(y == 100 || (0..4).contains(&y));
        }

        #[test]
        fn regex_strings(s in "[a-z][a-z0-9_]{0,10}") {
            prop_assert!(!s.is_empty() && s.len() <= 11, "bad len: {s:?}");
            let mut cs = s.chars();
            prop_assert!(cs.next().is_some_and(|c| c.is_ascii_lowercase()));
            prop_assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        let s = 0u64..1000;
        assert_eq!(
            crate::strategy::Strategy::new_value(&s, &mut a),
            crate::strategy::Strategy::new_value(&s, &mut b)
        );
    }
}
