//! Test-runner plumbing: per-test configuration, the case RNG, and the
//! error type `prop_assert*!` returns.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test function runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The per-case RNG handed to strategies. Seeded from the test-function
/// name and case index so failures reproduce deterministically.
#[derive(Debug, Clone)]
pub struct TestRng {
    /// Underlying generator (public so strategies can draw directly).
    pub rng: SmallRng,
}

impl TestRng {
    /// RNG for case `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a over the name
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: SmallRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))),
        }
    }
}
