//! The [`Strategy`] trait and the combinators this workspace uses:
//! integer ranges, `Just`, tuples, `prop_map`, uniform unions
//! (`prop_oneof!`), `any::<T>()`, and character-class string patterns.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe mirror of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.dyn_new_value(rng)
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` engine).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Union over `arms`, chosen uniformly.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.rng.gen_range(0..self.arms.len());
        self.arms[i].new_value(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one value uniformly over the domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen()
    }
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Result of [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---- character-class string patterns ---------------------------------

/// One parsed atom of the pattern: the choosable characters plus a
/// repetition range.
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Parse the regex subset: literal chars and `[...]` classes, each with an
/// optional `{m,n}` / `{n}` / `*` / `+` / `?` quantifier.
fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = if chars[i] == '[' {
            let mut set = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    set.extend((lo..=hi).filter(|c| c.is_ascii()));
                    i += 3;
                } else {
                    set.push(chars[i]);
                    i += 1;
                }
            }
            i += 1; // closing ']'
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or(chars.len());
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (m.trim().parse().unwrap_or(0), n.trim().parse().unwrap_or(8)),
                    None => {
                        let n = body.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        if !choices.is_empty() {
            atoms.push(Atom { choices, min, max });
        }
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = rng.rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(atom.choices[rng.rng.gen_range(0..atom.choices.len())]);
            }
        }
        out
    }
}
