//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the tiny slice of `rand` it actually uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_range`, and `gen_bool`. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, fast, and good enough for fuzzing mutation
//! schedules (it is not, and does not claim to be, cryptographic).

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types `gen_range` can sample uniformly. The blanket
/// [`SampleRange`] impls below go through this trait so that a range of
/// unsuffixed literals (`0..3`) infers its type from the call site, as
/// with real `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`hi_inclusive` widens it to `[lo, hi]`).
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        hi_inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                hi_inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128
                    + u128::from(hi_inclusive);
                assert!(span > 0, "cannot sample empty range");
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with `rng.gen_range(..)`.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty, matching `rand`'s contract.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// High-level convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform value over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family real `rand` 0.8 backs `SmallRng`
    /// with on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl SmallRng {
        /// Export the full generator state (checkpoint support; not part
        /// of real `rand`'s API). Feeding the array back through
        /// [`SmallRng::from_state`] resumes the exact stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state exported by
        /// [`SmallRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i16 = r.gen_range(1..=35);
            assert!((1..=35).contains(&w));
            let n: i16 = r.gen_range(-35..-1);
            assert!((-35..-1).contains(&n));
        }
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = SmallRng::seed_from_u64(11);
        for _ in 0..5 {
            let _: u64 = a.gen();
        }
        let mut b = SmallRng::from_state(a.state());
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb, "restored state must continue the same stream");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.2)).count();
        assert!((1500..2500).contains(&hits), "p=0.2 gave {hits}/10000");
    }
}
