//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline `serde` shim.
//!
//! No `syn`/`quote` (the build environment has no crates.io access), so the
//! derive input is parsed directly from the `proc_macro` token stream. The
//! supported shapes are exactly those used in this workspace:
//!
//! * named-field structs,
//! * tuple structs (newtype included),
//! * enums with unit, tuple, and named-field variants (no generics).
//!
//! `Serialize` lowers to the shim's `serde::Value`; enums use serde's
//! externally-tagged representation. `Deserialize` emits a marker impl only.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named struct with field names.
    Struct(Vec<String>),
    /// Tuple struct with field count.
    Tuple(usize),
    /// Enum: (variant name, fields).
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Split a field-list token sequence on commas, honoring `<...>` nesting
/// (groups are already single trees in `proc_macro`, so only angle brackets
/// need manual depth tracking).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// First identifier of a field segment after attributes and visibility —
/// the field name for named fields.
fn field_name(segment: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    while i < segment.len() {
        match &segment[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attr: `#` + group
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = segment.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            TokenTree::Ident(id) => return Some(id.to_string()),
            _ => i += 1,
        }
    }
    None
}

fn parse_fields_named(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    split_top_level(&tokens)
        .iter()
        .filter_map(|seg| field_name(seg))
        .collect()
}

fn parse_fields_tuple(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    split_top_level(&tokens)
        .iter()
        .filter(|seg| !seg.is_empty())
        .count()
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    for seg in split_top_level(&tokens) {
        let mut name = None;
        let mut shape = VariantShape::Unit;
        let mut i = 0;
        while i < seg.len() {
            match &seg[i] {
                TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
                TokenTree::Ident(id) if name.is_none() => {
                    name = Some(id.to_string());
                    i += 1;
                }
                TokenTree::Group(g) if name.is_some() => {
                    shape = match g.delimiter() {
                        Delimiter::Brace => VariantShape::Named(parse_fields_named(g.stream())),
                        Delimiter::Parenthesis => {
                            VariantShape::Tuple(parse_fields_tuple(g.stream()))
                        }
                        _ => VariantShape::Unit,
                    };
                    i += 1;
                }
                // `= discriminant` and anything else after the name: skip.
                _ => i += 1,
            }
        }
        if let Some(n) = name {
            variants.push((n, shape));
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (type {name})");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_fields_named(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(parse_fields_tuple(g.stream()))
            }
            _ => Shape::Tuple(0), // unit struct
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: malformed enum {name}: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };
    Parsed { name, shape }
}

/// Derive `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Parsed { name, shape } = parse_input(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, vs)| match vs {
                    VariantShape::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"
                    ),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let inner = if *n == 1 {
                            items[0].clone()
                        } else {
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), {inner})]),",
                            binds = binds.join(", ")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {fields} }} => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(vec![{entries}]))]),",
                            fields = fields.join(", "),
                            entries = entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n  fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
    );
    out.parse()
        .expect("serde shim derive: generated impl parses")
}

/// Derive the `serde::Deserialize` marker (shim: no parsing support).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Parsed { name, .. } = parse_input(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde shim derive: generated impl parses")
}
