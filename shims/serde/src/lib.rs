//! Offline stand-in for `serde` (the subset this workspace uses).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a miniature data model: [`Serialize`] lowers values into a self-describing
//! [`Value`] tree that the local `serde_json` shim renders as JSON.
//! [`Deserialize`] exists only so `#[derive(Deserialize)]` compiles — nothing
//! in the workspace parses serialized data back.
//!
//! The derive macros (re-exported from the local `serde_derive` proc-macro
//! crate) understand plain named structs, tuple structs, and enums with
//! unit / tuple / named-field variants — the shapes that actually occur in
//! this repository. Field attributes (`#[serde(...)]`) are not supported.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the `serde_json::Value` analog).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with field order preserved.
    Object(Vec<(String, Value)>),
}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Produce the serialized form.
    fn to_value(&self) -> Value;
}

/// Marker trait so `#[derive(Deserialize)]` compiles; nothing in this
/// workspace deserializes, so it carries no methods.
pub trait Deserialize {}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(u64::from(*self)) }
        }
        impl Deserialize for $t {}
    )*};
}
impl_ser_uint!(u8, u16, u32, u64);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(i64::from(*self)) }
        }
        impl Deserialize for $t {}
    )*};
}
impl_ser_int!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}
impl Deserialize for isize {}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output (HashMap iteration order is not).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<K, V: Deserialize, S> Deserialize for HashMap<K, V, S> {}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
impl<K, V: Deserialize> Deserialize for BTreeMap<K, V> {}

macro_rules! impl_ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
    };
}
impl_ser_tuple!(A: 0);
impl_ser_tuple!(A: 0, B: 1);
impl_ser_tuple!(A: 0, B: 1, C: 2);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower() {
        assert_eq!(5u32.to_value(), Value::U64(5));
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }

    #[test]
    fn containers_lower() {
        let v = vec![1u8, 2, 3].to_value();
        assert_eq!(
            v,
            Value::Array(vec![Value::U64(1), Value::U64(2), Value::U64(3)])
        );
        let mut m = HashMap::new();
        m.insert("b".to_string(), 1u8);
        m.insert("a".to_string(), 2u8);
        assert_eq!(
            m.to_value(),
            Value::Object(vec![
                ("a".into(), Value::U64(2)),
                ("b".into(), Value::U64(1))
            ])
        );
    }
}
