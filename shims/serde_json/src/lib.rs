//! Offline stand-in for `serde_json`: renders the `serde` shim's
//! [`Value`] data model as JSON text. Only the encoding direction is
//! implemented — nothing in this workspace parses JSON back.

pub use serde::Value;

/// Serialization error (the shim's encoder is total, so this never occurs;
/// the type exists for API compatibility).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // Emit integral floats with a trailing .0 so they read back as floats.
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        // JSON has no NaN/Inf; serde_json emits null.
        "null".to_string()
    }
}

fn render(v: &Value, indent: usize, pretty: bool, out: &mut String) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => out.push_str(&fmt_f64(*n)),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                render(item, indent + 1, pretty, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(val, indent + 1, pretty, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serialize `value` as compact JSON.
///
/// # Errors
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), 0, false, &mut out);
    Ok(out)
}

/// Serialize `value` as human-readable, indented JSON.
///
/// # Errors
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), 0, true, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Str("x\"y".into())),
        ]);
        let mut s = String::new();
        render(&v, 0, false, &mut s);
        assert_eq!(s, r#"{"a":1,"b":[true,null],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_rendering_is_indented() {
        let s = to_string_pretty(&vec![1u8, 2]).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn floats() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
