//! Offline stand-in for `criterion` (the subset this workspace's benches
//! use). Each benchmark runs its closure for a bounded number of
//! wall-clock-timed iterations and prints a mean time per iteration —
//! no statistics, outlier analysis, or HTML reports.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { c: self }
    }
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id rendered from the benchmark's parameter value.
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Id from a function name plus parameter value.
    pub fn new<P: std::fmt::Display>(name: &str, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A named group of benchmarks sharing the parent driver's settings.
pub struct BenchmarkGroup<'a> {
    c: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) {
        let mut b = Bencher {
            sample_size: self.c.sample_size,
            measurement_time: self.c.measurement_time,
            warm_up_time: self.c.warm_up_time,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        b.report(&id.to_string());
    }

    /// Run one benchmark under `id`, handing `input` to the closure.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// End the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly within the warm-up + measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_end {
            black_box(routine());
        }
        // One timed batch per sample; stop early if the budget runs out.
        let start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("  {id}: no iterations run");
            return;
        }
        let per = self.elapsed / u32::try_from(self.iters).unwrap_or(u32::MAX);
        println!("  {id}: {per:?}/iter over {} iters", self.iters);
    }
}

/// Declare a benchmark group binding: configuration plus target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + 1));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        targets = trivial
    }

    #[test]
    fn group_runs() {
        benches();
    }
}
